//! `sta-repro` — a from-scratch Rust reproduction of the DATE 2011 paper
//! *"An efficient and scalable STA tool with direct path estimation and
//! exhaustive sensitization vector exploration for optimal delay
//! computation"* (Barceló, Gili, Bota, Segura).
//!
//! This umbrella crate re-exports the workspace's nine member crates under
//! short aliases for the examples, the integration tests and the CLI
//! binary. Library users should depend on the member crates directly:
//!
//! | alias | crate | role |
//! |---|---|---|
//! | [`netlist`] | `sta-netlist` | netlist model, `.bench`/Verilog I/O |
//! | [`cells`] | `sta-cells` | cell functions, sensitization vectors, CMOS topologies, technologies |
//! | [`esim`] | `sta-esim` | switch-level RC electrical simulator (golden reference) |
//! | [`charlib`] | `sta-charlib` | polynomial/LUT characterization, Liberty export, corners |
//! | [`logic`] | `sta-logic` | dual-value logic system, implication engine, toggle analysis |
//! | [`core_sta`] | `sta-core` | the paper's single-pass true-path STA engine |
//! | [`baseline`] | `sta-baseline` | commercial-style two-step comparison tool |
//! | [`circuits`] | `sta-circuits` | ISCAS-85 surrogates + technology mapper |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for measured-vs-paper results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sta_baseline as baseline;
pub use sta_cells as cells;
pub use sta_charlib as charlib;
pub use sta_circuits as circuits;
pub use sta_core as core_sta;
pub use sta_esim as esim;
pub use sta_logic as logic;
pub use sta_netlist as netlist;
