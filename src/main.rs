//! `sta-repro` — command-line front end for the sensitization-vector-aware
//! STA reproduction.
//!
//! ```text
//! sta-repro list                                  # catalog benchmarks
//! sta-repro analyze  <circuit> [--tech T] [--nworst N] [--threads W] [--no-kernels]
//! sta-repro baseline <circuit> [--tech T] [--k K] [--limit B]
//! sta-repro cell     <name>    [--tech T]         # vectors + delays
//! sta-repro liberty  [--tech T] [--out FILE]      # export .lib
//! ```

#![forbid(unsafe_code)]

use std::io::Write as _;

use sta_baseline::{run_baseline, BaselineConfig, Classification};
use sta_cells::{Corner, Edge, Library, Technology};
use sta_charlib::{characterize_cached, CharConfig, TimingLibrary};
use sta_circuits::catalog;
use sta_core::{CertificateSet, EnumerationConfig, PathEnumerator};
use sta_esim::cellsim::{cell_input_cap, simulate_arc, Drive};
use sta_lint::{lint_library, lint_netlist, verify_paths, LibLintConfig, LintReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            2
        }
    };
    std::process::exit(code);
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    let opts = Opts::parse(&args[1..]);
    match cmd.as_str() {
        "list" => cmd_list(),
        "analyze" => cmd_analyze(&opts),
        "slack" => cmd_slack(&opts),
        "baseline" => cmd_baseline(&opts),
        "cell" => cmd_cell(&opts),
        "liberty" => cmd_liberty(&opts),
        "lint" => cmd_lint(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try `sta-repro help`)")),
    }
}

fn print_usage() {
    println!(
        "sta-repro — sensitization-vector-aware STA (DATE'11 reproduction)\n\
         \n\
         commands:\n\
           list                                  list catalog benchmarks\n\
           analyze  <circuit> [--tech T] [--nworst N] [--threads W] [--no-kernels]   run the single-pass true-path STA\n\
                    (--no-kernels disables the corner-compiled delay kernels)\n\
           slack    <circuit> [--tech T] [--required PS]   structural slack report\n\
           baseline <circuit> [--tech T] [--k K] [--limit B]   run the two-step baseline\n\
           cell     <name>    [--tech T]         show a cell's vectors and measured delays\n\
           liberty  [--tech T] [--out FILE]      export the characterized library as .lib\n\
           lint     [circuits...] [--tech T] [--format human|json] [--deny warnings]\n\
                    [--verify-paths] [--nworst N] [--out FILE]\n\
                    statically verify netlists, the fitted library, and (with\n\
                    --verify-paths) replay every enumerated path certificate;\n\
                    no circuits = the whole catalog; exits non-zero on errors\n\
         \n\
         T is one of 130nm | 90nm | 65nm (default 90nm)."
    );
}

struct Opts {
    positional: Vec<String>,
    tech: Technology,
    nworst: Option<usize>,
    threads: usize,
    k: usize,
    limit: u64,
    out: Option<String>,
    required: Option<f64>,
    no_kernels: bool,
    format: OutputFormat,
    deny_warnings: bool,
    verify_paths: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum OutputFormat {
    Human,
    Json,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut opts = Opts {
            positional: Vec::new(),
            tech: Technology::n90(),
            nworst: None,
            threads: 1,
            k: 1000,
            limit: 1000,
            out: None,
            required: None,
            no_kernels: false,
            format: OutputFormat::Human,
            deny_warnings: false,
            verify_paths: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--tech" => {
                    if let Some(t) = it.next().and_then(|s| Technology::by_name(s)) {
                        opts.tech = t;
                    }
                }
                "--nworst" => opts.nworst = it.next().and_then(|s| s.parse().ok()),
                "--threads" => {
                    if let Some(w) = it.next().and_then(|s| s.parse().ok()) {
                        opts.threads = w;
                    }
                }
                "--k" => {
                    if let Some(k) = it.next().and_then(|s| s.parse().ok()) {
                        opts.k = k;
                    }
                }
                "--limit" => {
                    if let Some(l) = it.next().and_then(|s| s.parse().ok()) {
                        opts.limit = l;
                    }
                }
                "--out" => opts.out = it.next().cloned(),
                "--required" => opts.required = it.next().and_then(|s| s.parse().ok()),
                "--no-kernels" => opts.no_kernels = true,
                "--format" => {
                    if let Some(f) = it.next() {
                        opts.format = match f.as_str() {
                            "json" => OutputFormat::Json,
                            _ => OutputFormat::Human,
                        };
                    }
                }
                "--deny" => {
                    if it.next().map(String::as_str) == Some("warnings") {
                        opts.deny_warnings = true;
                    }
                }
                "--verify-paths" => opts.verify_paths = true,
                other => opts.positional.push(other.to_string()),
            }
        }
        opts
    }
}

fn load_timing(lib: &Library, tech: &Technology) -> Result<TimingLibrary, String> {
    eprintln!("characterizing / loading cache for {} ...", tech.name);
    characterize_cached(
        lib,
        tech,
        &CharConfig::standard(),
        std::path::Path::new(".char-cache"),
    )
    .map_err(|e| e.to_string())
}

fn cmd_list() -> Result<(), String> {
    println!("{:<8} {:>12}  description", "name", "ISCAS gates");
    for b in catalog::BENCHMARKS {
        println!("{:<8} {:>12}  {}", b.name, b.iscas_gates, b.description);
    }
    Ok(())
}

fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    let circuit = opts
        .positional
        .first()
        .ok_or("analyze needs a circuit name")?;
    let lib = Library::standard();
    let nl = catalog::mapped(circuit, &lib)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("unknown benchmark {circuit:?}"))?;
    let tlib = load_timing(&lib, &opts.tech)?;
    let mut cfg = EnumerationConfig::new(Corner::nominal(&opts.tech))
        .with_threads(opts.threads)
        .with_compiled_kernels(!opts.no_kernels);
    if let Some(n) = opts.nworst {
        cfg = cfg.with_n_worst(n);
    } else {
        cfg.max_paths = Some(500_000);
    }
    let t0 = std::time::Instant::now();
    let enumr = PathEnumerator::new(&nl, &lib, &tlib, cfg);
    if let Some(k) = enumr.kernel() {
        eprintln!(
            "compiled {} delay kernels ({} coefficients) for the corner",
            k.num_arcs(),
            k.num_coefficients()
        );
    }
    let (paths, stats) = enumr.run();
    println!(
        "{circuit} ({} cells): {} paths / {} input vectors in {:.2} s{}",
        nl.num_gates(),
        stats.paths,
        stats.input_vectors,
        t0.elapsed().as_secs_f64(),
        if stats.truncated { " (budget hit)" } else { "" }
    );
    println!(
        "  kernel evals: {} compiled / {} interpreted, model cache hits {}, \
         scratch high-water: {} side / {} path",
        stats.compiled_evals,
        stats.fallback_evals,
        stats.model_cache_hits,
        stats.scratch_side_hwm,
        stats.scratch_path_hwm
    );
    for (i, p) in paths.iter().take(opts.nworst.unwrap_or(10)).enumerate() {
        println!(
            "{:>3}. {:>9.1} ps  {} gates  {} -> {}",
            i + 1,
            p.worst_arrival(),
            p.arcs.len(),
            nl.net_label(p.source),
            nl.net_label(p.endpoint())
        );
    }
    Ok(())
}

fn cmd_slack(opts: &Opts) -> Result<(), String> {
    let circuit = opts
        .positional
        .first()
        .ok_or("slack needs a circuit name")?;
    let lib = Library::standard();
    let nl = catalog::mapped(circuit, &lib)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("unknown benchmark {circuit:?}"))?;
    let tlib = load_timing(&lib, &opts.tech)?;
    let corner = Corner::nominal(&opts.tech);
    // Default requirement: 90 % of the structural worst — guaranteed to
    // show the critical region.
    let probe = sta_core::slack_report(&nl, &tlib, corner, 60.0, 0.0);
    let structural_worst = probe.timing.worst_arrival(&nl);
    let required = opts.required.unwrap_or(structural_worst * 0.9);
    let report = sta_core::slack_report(&nl, &tlib, corner, 60.0, required);
    println!(
        "{circuit}: structural worst arrival {:.1} ps, requirement {:.1} ps — {}",
        structural_worst,
        required,
        if report.passes() { "PASS" } else { "FAIL" }
    );
    for (net, slack) in report.violations().into_iter().take(10) {
        println!("  {:>9.1} ps  {}", slack, nl.net_label(net));
    }
    Ok(())
}

fn cmd_baseline(opts: &Opts) -> Result<(), String> {
    let circuit = opts
        .positional
        .first()
        .ok_or("baseline needs a circuit name")?;
    let lib = Library::standard();
    let nl = catalog::mapped(circuit, &lib)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("unknown benchmark {circuit:?}"))?;
    let tlib = load_timing(&lib, &opts.tech)?;
    let t0 = std::time::Instant::now();
    let report = run_baseline(&nl, &lib, &tlib, &BaselineConfig::new(opts.k, opts.limit));
    println!(
        "{circuit}: explored {} structural paths in {:.2} s — true {}, false {}, abandoned {} (false ratio {:.1} %)",
        report.paths.len(),
        t0.elapsed().as_secs_f64(),
        report.num_true,
        report.num_false,
        report.num_backtrack_limited,
        report.false_path_ratio() * 100.0
    );
    for bp in report
        .paths
        .iter()
        .filter(|bp| bp.sens.classification == Classification::True)
        .take(10)
    {
        println!(
            "  {:>9.1} ps  {} gates  (vectors {:?})",
            bp.worst_delay(),
            bp.path.arcs.len(),
            bp.sens.chosen_vectors
        );
    }
    Ok(())
}

fn cmd_cell(opts: &Opts) -> Result<(), String> {
    let name = opts.positional.first().ok_or("cell needs a cell name")?;
    let lib = Library::standard();
    let cell = lib
        .cell_by_name(name)
        .ok_or_else(|| format!("unknown cell {name:?}"))?;
    println!(
        "{} : Z = {}   ({} transistors)",
        cell.name(),
        cell.expr().display(),
        cell.topology().transistor_count()
    );
    let corner = Corner::nominal(&opts.tech);
    let load = cell_input_cap(cell, &opts.tech);
    for pin in 0..cell.num_pins() {
        for v in cell.vectors_of(pin) {
            let mut cols = Vec::new();
            for edge in Edge::BOTH {
                match simulate_arc(
                    cell,
                    &opts.tech,
                    corner,
                    v,
                    edge,
                    Drive::Ramp { transition: 50.0 },
                    load,
                ) {
                    Ok(o) => cols.push(format!("in-{edge} {:.1}ps", o.delay)),
                    Err(e) => cols.push(format!("in-{edge} ERR({e})")),
                }
            }
            println!(
                "  pin {} {}  {}",
                sta_cells::func::pin_name(pin),
                v,
                cols.join("  ")
            );
        }
    }
    Ok(())
}

fn cmd_lint(opts: &Opts) -> Result<(), String> {
    let lib = Library::standard();
    let tlib = load_timing(&lib, &opts.tech)?;
    let corner = Corner::nominal(&opts.tech);
    let mut report = LintReport::new();

    // The library is checked once — it is shared by every circuit.
    report.extend(lint_library(&lib, &tlib, corner, &LibLintConfig::default()));

    let circuits: Vec<String> = if opts.positional.is_empty() {
        catalog::BENCHMARKS
            .iter()
            .map(|b| b.name.to_string())
            .collect()
    } else {
        opts.positional.clone()
    };
    for name in &circuits {
        let nl = catalog::mapped(name, &lib)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
        report.extend(lint_netlist(&nl));
        if opts.verify_paths {
            let mut cfg = EnumerationConfig::new(corner);
            if let Some(n) = opts.nworst {
                cfg = cfg.with_n_worst(n);
            } else {
                cfg.max_paths = Some(20_000);
            }
            let slew = cfg.input_slew;
            let (paths, stats) = PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
            // Round-trip through the serialized certificate format so the
            // oracle replays what a consumer would actually read, not the
            // in-memory result.
            let certs =
                CertificateSet::from_json(&CertificateSet::new(&nl, slew, paths).to_json())?;
            let outcome = verify_paths(&nl, &lib, &tlib, &certs.paths, certs.input_slew, corner);
            eprintln!(
                "{name}: re-certified {}/{} enumerated paths{}",
                outcome.certified,
                outcome.checked,
                if stats.truncated {
                    " (enumeration budget hit)"
                } else {
                    ""
                }
            );
            report.extend(outcome.diagnostics);
        }
    }

    if opts.deny_warnings {
        report.deny_warnings();
    }
    let rendered = match opts.format {
        OutputFormat::Human => report.render_human(),
        OutputFormat::Json => report.render_json(),
    };
    match &opts.out {
        Some(path) => {
            let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            f.write_all(rendered.as_bytes())
                .map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    if report.has_errors() {
        Err(format!(
            "lint found {} error(s)",
            report.count(sta_lint::Severity::Error)
        ))
    } else {
        Ok(())
    }
}

fn cmd_liberty(opts: &Opts) -> Result<(), String> {
    let lib = Library::standard();
    let tlib = load_timing(&lib, &opts.tech)?;
    let text = sta_charlib::liberty::write_liberty(&lib, &tlib);
    match &opts.out {
        Some(path) => {
            let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            f.write_all(text.as_bytes()).map_err(|e| e.to_string())?;
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}
