//! `sta-repro` — command-line front end for the sensitization-vector-aware
//! STA reproduction.
//!
//! ```text
//! sta-repro list                                  # catalog benchmarks
//! sta-repro analyze  <circuit> [--tech T] [--nworst N] [--threads W] [--no-kernels] [--no-bitsim]
//! sta-repro slack    <circuit> [--tech T] [--required PS] [--sdc FILE]
//! sta-repro baseline <circuit> [--tech T] [--k K] [--limit B]
//! sta-repro cell     <name>    [--tech T]         # vectors + delays
//! sta-repro liberty  [--tech T] [--out FILE]      # export .lib
//! sta-repro lint     [circuits...] [--verify-paths] [--audit-flow]
//! sta-repro validate-manifest <file> [--schema FILE]
//! sta-repro serve    [--socket PATH] [--fast-char]   # persistent timing daemon
//! ```
//!
//! Every analysis command accepts `--format human|json`, `--manifest-out
//! FILE` (write a [`sta_obs::RunManifest`] for the invocation) and
//! `--progress` (heartbeat lines on stderr). Exit codes are stable:
//! `0` success, `1` findings (lint errors, slack violations, manifest
//! schema violations), `2` usage or operational error.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::io::Write as _;
use std::time::Duration;

use serde::Value;
use sta_baseline::{run_baseline, BaselineConfig, Classification};
use sta_cells::{Corner, Edge, Library, Technology};
use sta_charlib::{characterize_cached, CharConfig, CharError, TimingLibrary};
use sta_circuits::{catalog, map_netlist, resize_gate};
use sta_core::{
    arc_intervals, arc_intervals_compiled, dirty_sources, static_bounds, static_bounds_compiled,
    AnalysisContext, AnalysisError, AnalysisRequest, CertificateSet, CornerDef, EnumerationConfig,
    Mode, PathEnumerator, RequiredSource, Scenario, SdcError, SourceCache, ARC_SWEEP_MARGIN,
};
use sta_esim::cellsim::{cell_input_cap, simulate_arc, Drive};
use sta_lint::{
    check_schedule, lint_library, lint_netlist, verify_paths, LibLintConfig, LintReport,
};
use sta_netlist::{Netlist, NetlistError};
use sta_obs::{Heartbeat, Observer, RunManifest};

// ---------------------------------------------------------------------------
// Error type and exit codes
// ---------------------------------------------------------------------------

/// Everything that can go wrong in the front end, with a stable exit code
/// per category. `Findings` is the "the tool worked, the design didn't"
/// case (lint errors, slack violations): exit 1. Everything else — bad
/// usage, unknown circuits, I/O failures, malformed documents — exits 2.
#[derive(Debug)]
enum CliError {
    /// Malformed command line.
    Usage(String),
    /// Resolving or running an analysis failed (unknown benchmark,
    /// characterization failure, SDC parse error, ...).
    Analysis(AnalysisError),
    /// Reading or writing a file failed.
    Io(String),
    /// A document (manifest, certificate set) failed to parse.
    Invalid(String),
    /// The analysis succeeded and reported violations.
    Findings(String),
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Findings(_) => 1,
            _ => 2,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Invalid(m) | CliError::Findings(m) => {
                f.write_str(m)
            }
            CliError::Analysis(e) => write!(f, "{e}"),
        }
    }
}

impl From<AnalysisError> for CliError {
    fn from(e: AnalysisError) -> Self {
        CliError::Analysis(e)
    }
}

impl From<NetlistError> for CliError {
    fn from(e: NetlistError) -> Self {
        CliError::Analysis(AnalysisError::from(e))
    }
}

impl From<CharError> for CliError {
    fn from(e: CharError) -> Self {
        CliError::Analysis(AnalysisError::from(e))
    }
}

impl From<SdcError> for CliError {
    fn from(e: SdcError) -> Self {
        CliError::Analysis(AnalysisError::from(e))
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e.to_string())
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            e.exit_code()
        }
    };
    std::process::exit(code);
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    let opts = Opts::parse(&args[1..])?;
    match cmd.as_str() {
        "list" => cmd_list(),
        "analyze" => cmd_analyze(&opts, args),
        "slack" => cmd_slack(&opts, args),
        "baseline" => cmd_baseline(&opts, args),
        "cell" => cmd_cell(&opts),
        "liberty" => cmd_liberty(&opts),
        "lint" => cmd_lint(&opts, args),
        "validate-manifest" => cmd_validate_manifest(&opts),
        "serve" => cmd_serve(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?} (try `sta-repro help`)"
        ))),
    }
}

fn print_usage() {
    println!(
        "sta-repro — sensitization-vector-aware STA (DATE'11 reproduction)\n\
         \n\
         commands:\n\
           list                                  list catalog benchmarks\n\
           analyze  <circuit> [--tech T] [--corner C] [--corners C,..] [--modes F,..]\n\
                    [--nworst N] [--threads W] [--batch-threads B] [--no-kernels]\n\
                    [--no-bitsim] [--no-learning] run the single-pass true-path STA\n\
                    (--no-kernels disables the corner-compiled delay kernels;\n\
                    --no-bitsim disables the 64-lane bit-parallel justification\n\
                    pre-filter; --no-learning disables nogood learning and\n\
                    dominance pruning — results are identical either way;\n\
                    --corners/--modes run the whole MCMM matrix as one batch\n\
                    with shared characterization/netlist/schedule, reporting\n\
                    per-scenario results plus the merged worst-slack view)\n\
           slack    <circuit> [--tech T] [--corner C] [--corners C,..] [--modes F,..]\n\
                    [--required PS] [--sdc FILE]   structural slack report\n\
                    (single scenario, or the merged MCMM matrix with --corners/--modes)\n\
           baseline <circuit> [--tech T] [--corner C] [--k K] [--limit B]   run the two-step baseline\n\
           cell     <name>    [--tech T] [--corner C]   show a cell's vectors and measured delays\n\
           liberty  [--tech T] [--out FILE]      export the characterized library as .lib\n\
           lint     [circuits...] [--tech T] [--format human|json] [--deny warnings]\n\
                    [--verify-paths] [--audit-flow] [--nworst N] [--out FILE]\n\
                    statically verify netlists, the fitted library, and (with\n\
                    --verify-paths) replay every enumerated path certificate;\n\
                    --audit-flow additionally runs the whole-flow soundness\n\
                    audit: interval abstract interpretation over the timing\n\
                    graph (AI rules), a sampled ECO edit against the dirty-\n\
                    source and cache invariants (ECO rules), and the serve\n\
                    protocol schema/parser conformance check (SRV rules);\n\
                    circuits may be catalog names or .bench file paths;\n\
                    no circuits = the whole catalog\n\
           validate-manifest <file> [--schema FILE]   check a run manifest\n\
                    against the JSON schema (default docs/manifest.schema.json)\n\
           serve    [--socket PATH] [--fast-char]   persistent timing daemon:\n\
                    newline-delimited JSON requests on stdin (or the Unix\n\
                    socket), responses on stdout; keeps characterized\n\
                    libraries, compiled kernels and per-circuit path caches\n\
                    resident, and re-analyzes ECO edits incrementally\n\
                    (ops: load, edit, paths, slack, verify, audit, status,\n\
                    shutdown — audit runs the whole-flow soundness audit on\n\
                    resident circuits; request schema: docs/serve.schema.json;\n\
                    --fast-char uses the coarse characterization grid)\n\
         \n\
         analysis commands also accept:\n\
           --format human|json                   output rendering (default human)\n\
           --manifest-out FILE                   write a run manifest (spans,\n\
                                                 metrics, config echo, path digest)\n\
           --progress                            heartbeat lines on stderr\n\
           --fast-char                           coarse characterization grid\n\
                                                 (fast but less accurate)\n\
           --max-decisions N                     cap the global justification-\n\
                                                 decision budget (bounded runs\n\
                                                 report truncation honestly)\n\
         \n\
         exit codes: 0 success, 1 findings (lint/slack/schema violations),\n\
         2 usage or operational error.\n\
         \n\
         T is one of 130nm | 90nm | 65nm (default 90nm).\n\
         C is a corner spec: fan130|fan90|fan65, 130nm|90nm|65nm (nominal of the\n\
         node), slow|typ|fast (PVT points of --tech), TECH:PVT (e.g. 90nm:slow),\n\
         or T,V (explicit °C and volts, e.g. 75,0.95). --corners takes a\n\
         comma-separated list; --modes takes a comma-separated list of SDC\n\
         files, each becoming a named mode (--sdc FILE is sugar for a one-mode\n\
         set); the batch analyzes the full corners × modes matrix."
    );
}

// ---------------------------------------------------------------------------
// Option parsing
// ---------------------------------------------------------------------------

struct Opts {
    positional: Vec<String>,
    tech: Technology,
    corner: Option<String>,
    corners: Option<String>,
    modes: Option<String>,
    batch_threads: usize,
    nworst: Option<usize>,
    threads: usize,
    k: usize,
    limit: u64,
    out: Option<String>,
    required: Option<f64>,
    no_kernels: bool,
    no_bitsim: bool,
    no_learning: bool,
    format: OutputFormat,
    deny_warnings: bool,
    verify_paths: bool,
    audit_flow: bool,
    max_decisions: Option<u64>,
    manifest_out: Option<String>,
    progress: bool,
    sdc: Option<String>,
    schema: Option<String>,
    socket: Option<String>,
    fast_char: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum OutputFormat {
    Human,
    Json,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, CliError> {
        let mut opts = Opts {
            positional: Vec::new(),
            tech: Technology::n90(),
            corner: None,
            corners: None,
            modes: None,
            batch_threads: 1,
            nworst: None,
            threads: 1,
            k: 1000,
            limit: 1000,
            out: None,
            required: None,
            no_kernels: false,
            no_bitsim: false,
            no_learning: false,
            format: OutputFormat::Human,
            deny_warnings: false,
            verify_paths: false,
            audit_flow: false,
            max_decisions: None,
            manifest_out: None,
            progress: false,
            sdc: None,
            schema: None,
            socket: None,
            fast_char: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
            };
            match a.as_str() {
                "--tech" => {
                    let t = value("--tech")?;
                    opts.tech = Technology::by_name(&t).ok_or_else(|| {
                        CliError::Usage(format!(
                            "unknown technology {t:?} (expected 130nm | 90nm | 65nm)"
                        ))
                    })?;
                }
                "--corner" => opts.corner = Some(value("--corner")?),
                "--corners" => opts.corners = Some(value("--corners")?),
                "--modes" => opts.modes = Some(value("--modes")?),
                "--batch-threads" => {
                    opts.batch_threads = parse_num(&value("--batch-threads")?, "--batch-threads")?;
                }
                "--nworst" => opts.nworst = Some(parse_num(&value("--nworst")?, "--nworst")?),
                "--threads" => opts.threads = parse_num(&value("--threads")?, "--threads")?,
                "--k" => opts.k = parse_num(&value("--k")?, "--k")?,
                "--limit" => opts.limit = parse_num(&value("--limit")?, "--limit")?,
                "--out" => opts.out = Some(value("--out")?),
                "--required" => {
                    opts.required = Some(parse_num(&value("--required")?, "--required")?);
                }
                "--no-kernels" => opts.no_kernels = true,
                "--no-bitsim" => opts.no_bitsim = true,
                "--no-learning" => opts.no_learning = true,
                "--format" => {
                    let f = value("--format")?;
                    opts.format = match f.as_str() {
                        "human" => OutputFormat::Human,
                        "json" => OutputFormat::Json,
                        other => {
                            return Err(CliError::Usage(format!(
                                "unknown format {other:?} (expected human | json)"
                            )))
                        }
                    };
                }
                "--deny" => {
                    let what = value("--deny")?;
                    if what != "warnings" {
                        return Err(CliError::Usage(format!(
                            "unknown --deny category {what:?} (expected warnings)"
                        )));
                    }
                    opts.deny_warnings = true;
                }
                "--verify-paths" => opts.verify_paths = true,
                "--audit-flow" => opts.audit_flow = true,
                "--max-decisions" => {
                    opts.max_decisions =
                        Some(parse_num(&value("--max-decisions")?, "--max-decisions")?);
                }
                "--manifest-out" => opts.manifest_out = Some(value("--manifest-out")?),
                "--progress" => opts.progress = true,
                "--sdc" => opts.sdc = Some(value("--sdc")?),
                "--schema" => opts.schema = Some(value("--schema")?),
                "--socket" => opts.socket = Some(value("--socket")?),
                "--fast-char" => opts.fast_char = true,
                other if other.starts_with("--") => {
                    return Err(CliError::Usage(format!(
                        "unknown option {other:?} (try `sta-repro help`)"
                    )));
                }
                other => opts.positional.push(other.to_string()),
            }
        }
        Ok(opts)
    }

    fn circuit(&self, cmd: &str) -> Result<&str, CliError> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("{cmd} needs a circuit name")))
    }

    /// Echo of the effective configuration for the run manifest.
    fn config_echo(&self, circuit: Option<&str>) -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        if let Some(c) = circuit {
            m.insert("circuit".to_string(), c.to_string());
        }
        m.insert("tech".to_string(), self.tech.name.clone());
        if let Some(c) = &self.corner {
            m.insert("corner".to_string(), c.clone());
        }
        if let Some(c) = &self.corners {
            m.insert("corners".to_string(), c.clone());
        }
        if let Some(mo) = &self.modes {
            m.insert("modes".to_string(), mo.clone());
        }
        if self.batch_threads > 1 {
            m.insert("batch_threads".to_string(), self.batch_threads.to_string());
        }
        m.insert("threads".to_string(), self.threads.to_string());
        m.insert("kernels".to_string(), (!self.no_kernels).to_string());
        m.insert("bitsim".to_string(), (!self.no_bitsim).to_string());
        m.insert("learning".to_string(), (!self.no_learning).to_string());
        m.insert(
            "char_grid".to_string(),
            if self.fast_char { "fast" } else { "standard" }.to_string(),
        );
        if let Some(n) = self.nworst {
            m.insert("nworst".to_string(), n.to_string());
        }
        if let Some(d) = self.max_decisions {
            m.insert("max_decisions".to_string(), d.to_string());
        }
        m.insert(
            "format".to_string(),
            match self.format {
                OutputFormat::Human => "human".to_string(),
                OutputFormat::Json => "json".to_string(),
            },
        );
        m
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::Usage(format!("{flag}: invalid value {s:?}")))
}

// ---------------------------------------------------------------------------
// Observability session: observer + heartbeat + manifest writing
// ---------------------------------------------------------------------------

/// Per-invocation observability state. The observer is enabled only when
/// the user asked for a manifest or progress output, so the default run
/// pays nothing; either way the same handle threads through the analysis,
/// which never changes what is computed.
struct ObsSession {
    obs: Observer,
    heartbeat: Option<Heartbeat>,
    manifest_out: Option<String>,
    command: Vec<String>,
}

impl ObsSession {
    fn new(opts: &Opts, command: &[String]) -> ObsSession {
        let obs = if opts.manifest_out.is_some() || opts.progress {
            Observer::enabled()
        } else {
            Observer::disabled()
        };
        let heartbeat = if opts.progress {
            obs.install_progress()
                .map(|p| Heartbeat::start(p, Duration::from_millis(500)))
        } else {
            None
        };
        ObsSession {
            obs,
            heartbeat,
            manifest_out: opts.manifest_out.clone(),
            command: command.to_vec(),
        }
    }

    fn observer(&self) -> Observer {
        self.obs.clone()
    }

    fn wants_manifest(&self) -> bool {
        self.manifest_out.is_some()
    }

    /// Stops the heartbeat and, when requested, writes the run manifest.
    /// Call after every analysis object has been dropped so the span tree
    /// is complete.
    fn finish(
        mut self,
        config: BTreeMap<String, String>,
        path_digest: Option<String>,
    ) -> Result<(), CliError> {
        drop(self.heartbeat.take());
        if let Some(path) = &self.manifest_out {
            let manifest = RunManifest::new(self.command.clone(), config, &self.obs, path_digest);
            std::fs::write(path, manifest.to_json())
                .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
            eprintln!("wrote {path}");
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JSON output helpers (shared schema_version with the run manifest)
// ---------------------------------------------------------------------------

fn jmap(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn jstr(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

fn print_json(doc: &Value) {
    println!(
        "{}",
        serde_json::to_string_pretty(doc).expect("JSON documents always serialize")
    );
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

fn cmd_list() -> Result<(), CliError> {
    println!(
        "{:<8} {:>12} {:>12}  description",
        "name", "ISCAS gates", "budget"
    );
    for b in catalog::BENCHMARKS {
        let budget = match b.decision_budget {
            Some(d) => d.to_string(),
            None => "-".to_string(),
        };
        println!(
            "{:<8} {:>12} {:>12}  {}",
            b.name, b.iscas_gates, budget, b.description
        );
    }
    Ok(())
}

/// Whether the invocation asked for a whole MCMM matrix (batch flags)
/// rather than a single scenario.
fn is_batch(opts: &Opts) -> bool {
    opts.corners.is_some() || opts.modes.is_some()
}

/// Builds one [`Mode`] from an SDC file; the mode is named after the
/// file stem (`constraints/func.sdc` → mode `func`).
fn mode_from_sdc_file(path: &str) -> Result<Mode, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("--modes/--sdc: reading {path}: {e}")))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("mode")
        .to_string();
    Ok(Mode::with_sdc(&name, &text))
}

/// Resolves the unified corner/mode flags into the scenario matrix:
/// `--corners`/`--modes` span the batch, `--corner` picks a single
/// operating point, `--sdc FILE` is sugar for a one-mode set, and
/// `--required` overrides the requirement of every mode. `--tech` is the
/// base technology that bare PVT names (`slow`, `75,0.95`) refer to.
fn scenario_matrix(opts: &Opts) -> Result<Vec<Scenario>, CliError> {
    let usage = |m: String| CliError::Usage(m);
    if opts.corner.is_some() && opts.corners.is_some() {
        return Err(usage(
            "--corner and --corners are mutually exclusive".into(),
        ));
    }
    if opts.sdc.is_some() && opts.modes.is_some() {
        return Err(usage("--sdc and --modes are mutually exclusive".into()));
    }
    let corners = if let Some(list) = &opts.corners {
        CornerDef::parse_list(list, &opts.tech).map_err(|e| usage(e.to_string()))?
    } else if let Some(spec) = &opts.corner {
        vec![CornerDef::parse(spec, &opts.tech).map_err(|e| usage(e.to_string()))?]
    } else {
        vec![CornerDef::nominal(opts.tech.clone())]
    };
    let mut modes = Vec::new();
    if let Some(list) = &opts.modes {
        for item in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            modes.push(mode_from_sdc_file(item)?);
        }
        if modes.is_empty() {
            return Err(usage("--modes needs at least one SDC file".into()));
        }
    } else if let Some(path) = &opts.sdc {
        modes.push(mode_from_sdc_file(path)?);
    } else {
        modes.push(Mode::unconstrained());
    }
    if let Some(r) = opts.required {
        for m in &mut modes {
            m.required = Some(r);
        }
    }
    Ok(Scenario::matrix(&corners, &modes))
}

/// The shared request preamble: circuit, scenario matrix, threading,
/// kernels, the bit-parallel pre-filter and the session's observer.
fn base_request(
    circuit: &str,
    opts: &Opts,
    session: &ObsSession,
) -> Result<AnalysisRequest, CliError> {
    let scenarios = scenario_matrix(opts)?;
    let mut techs: Vec<&str> = scenarios
        .iter()
        .map(|s| s.corner.tech.name.as_str())
        .collect();
    techs.sort_unstable();
    techs.dedup();
    eprintln!(
        "characterizing / loading cache for {} ...",
        techs.join(", ")
    );
    Ok(AnalysisRequest::new(circuit)
        .scenarios(scenarios)
        .threads(opts.threads)
        .batch_threads(opts.batch_threads)
        .compiled_kernels(!opts.no_kernels)
        .bitsim(!opts.no_bitsim)
        .learning(!opts.no_learning)
        .char_config(if opts.fast_char {
            CharConfig::fast()
        } else {
            CharConfig::standard()
        })
        .max_decisions(
            // Explicit --max-decisions wins (0 = unlimited); otherwise the
            // catalog's per-circuit budget keeps the big surrogates bounded.
            opts.max_decisions
                .or_else(|| catalog::benchmark_info(circuit).and_then(|b| b.decision_budget)),
        )
        .observer(session.observer()))
}

/// Renders a finished batch (shared by `analyze --corners/--modes` and
/// `slack --corners/--modes`) and returns the number of *check*
/// violations — endpoints whose dominating scenario has a user-stated
/// requirement (explicit or SDC) and misses it. Probe-only scenarios
/// (default 90 %-of-worst requirement) never flip the exit code.
fn render_batch(
    command: &str,
    circuit: &str,
    batch: &sta_core::BatchOutcome,
    opts: &Opts,
) -> usize {
    let is_check: BTreeMap<String, bool> = batch
        .scenarios
        .iter()
        .map(|s| {
            (
                s.scenario.name(),
                s.required_source != RequiredSource::Default,
            )
        })
        .collect();
    let check_violations = batch
        .merged
        .endpoints
        .iter()
        .filter(|e| e.slack < 0.0 && is_check[&e.scenario])
        .count();
    match opts.format {
        OutputFormat::Human => {
            println!(
                "{circuit}: {} scenario(s) in {:.2} s (batch)",
                batch.scenarios.len(),
                batch.elapsed_s
            );
            for s in &batch.scenarios {
                let worst = s
                    .paths
                    .first()
                    .map(|p| p.worst_arrival())
                    .unwrap_or(f64::NAN);
                println!(
                    "  {:<24} {:>6} paths  worst {:>9.1} ps  required {:>9.1} ps  {}{}",
                    s.scenario.name(),
                    s.stats.paths,
                    worst,
                    s.required,
                    if s.slack.passes() { "PASS" } else { "FAIL" },
                    if s.stats.truncated {
                        " (budget hit)"
                    } else {
                        ""
                    },
                );
            }
            let mut worst_eps: Vec<&sta_core::MergedEndpoint> =
                batch.merged.endpoints.iter().collect();
            worst_eps.sort_by(|a, b| a.slack.total_cmp(&b.slack));
            println!("  merged worst endpoints (slack / dominating scenario):");
            for e in worst_eps.iter().take(10) {
                println!("  {:>9.1} ps  {:<12} <- {}", e.slack, e.output, e.scenario);
            }
        }
        OutputFormat::Json => {
            let scenarios: Vec<Value> = batch
                .scenarios
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let digest = sta_obs::digest_string(batch.certificates(i).to_json().as_bytes());
                    jmap(vec![
                        ("scenario", jstr(s.scenario.name())),
                        ("corner", jstr(s.scenario.corner.name.clone())),
                        ("tech", jstr(s.scenario.corner.tech.name.clone())),
                        ("mode", jstr(s.scenario.mode.name.clone())),
                        ("paths", Value::UInt(s.stats.paths as u64)),
                        ("input_vectors", Value::UInt(s.stats.input_vectors as u64)),
                        ("truncated", Value::Bool(s.stats.truncated)),
                        ("required_ps", Value::Float(s.required)),
                        ("worst_slack_ps", Value::Float(s.slack.worst().1)),
                        ("passes", Value::Bool(s.slack.passes())),
                        ("certificate_digest", jstr(digest)),
                    ])
                })
                .collect();
            let merged: Value =
                serde_json::from_str(&batch.merged.to_json()).expect("merged report round-trips");
            print_json(&jmap(vec![
                (
                    "schema_version",
                    Value::UInt(sta_obs::SCHEMA_VERSION as u64),
                ),
                ("command", jstr(command)),
                ("circuit", jstr(circuit)),
                ("batch", Value::Bool(true)),
                ("num_scenarios", Value::UInt(batch.scenarios.len() as u64)),
                ("elapsed_s", Value::Float(batch.elapsed_s)),
                ("scenarios", Value::Seq(scenarios)),
                ("merged", merged),
            ]));
        }
    }
    check_violations
}

/// The batch digest for a run manifest: stable hash over the
/// per-scenario certificate digests, in submission order.
fn batch_digest(batch: &sta_core::BatchOutcome) -> String {
    let joined: String = (0..batch.scenarios.len())
        .map(|i| sta_obs::digest_string(batch.certificates(i).to_json().as_bytes()))
        .collect::<Vec<_>>()
        .join("\n");
    sta_obs::digest_string(joined.as_bytes())
}

fn cmd_analyze(opts: &Opts, args: &[String]) -> Result<(), CliError> {
    let circuit = opts.circuit("analyze")?;
    let session = ObsSession::new(opts, args);
    if is_batch(opts) {
        let batch = base_request(circuit, opts, &session)?
            .n_worst(opts.nworst)
            .full_enum_path_cap(Some(500_000))
            .run_batch()?;
        render_batch("analyze", circuit, &batch, opts);
        let digest = session.wants_manifest().then(|| batch_digest(&batch));
        drop(batch);
        return session.finish(opts.config_echo(Some(circuit)), digest);
    }
    let outcome = base_request(circuit, opts, &session)?
        .n_worst(opts.nworst)
        .full_enum_path_cap(Some(500_000))
        .run()?;
    if let Some((arcs, coefficients)) = outcome.kernel {
        eprintln!("compiled {arcs} delay kernels ({coefficients} coefficients) for the corner");
    }
    let shown = opts.nworst.unwrap_or(10);
    match opts.format {
        OutputFormat::Human => {
            println!(
                "{circuit} ({} cells): {} paths / {} input vectors in {:.2} s{}",
                outcome.netlist.num_gates(),
                outcome.stats.paths,
                outcome.stats.input_vectors,
                outcome.elapsed_s,
                if outcome.stats.truncated {
                    " (budget hit)"
                } else {
                    ""
                }
            );
            println!(
                "  kernel evals: {} compiled / {} interpreted, model cache hits {}, \
                 scratch high-water: {} side / {} path",
                outcome.stats.compiled_evals,
                outcome.stats.fallback_evals,
                outcome.stats.model_cache_hits,
                outcome.stats.scratch_side_hwm,
                outcome.stats.scratch_path_hwm
            );
            if outcome.stats.bitsim_words > 0 {
                println!(
                    "  bitsim: {} words simulated, {} lanes filtered, {} exact calls saved",
                    outcome.stats.bitsim_words,
                    outcome.stats.bitsim_lanes_filtered,
                    outcome.stats.bitsim_exact_calls_saved
                );
            }
            if !opts.no_learning {
                println!(
                    "  learn: {} nogoods stored, {} hits ({} decisions saved), {} bound cuts",
                    outcome.stats.learn_stored,
                    outcome.stats.learn_hits,
                    outcome.stats.learn_decisions_saved,
                    outcome.stats.learn_bound_cuts
                );
            }
            for (i, p) in outcome.paths.iter().take(shown).enumerate() {
                println!(
                    "{:>3}. {:>9.1} ps  {} gates  {} -> {}",
                    i + 1,
                    p.worst_arrival(),
                    p.arcs.len(),
                    outcome.netlist.net_label(p.source),
                    outcome.netlist.net_label(p.endpoint())
                );
            }
        }
        OutputFormat::Json => {
            let worst: Vec<Value> = outcome
                .paths
                .iter()
                .take(shown)
                .enumerate()
                .map(|(i, p)| {
                    jmap(vec![
                        ("rank", Value::UInt(i as u64 + 1)),
                        ("arrival_ps", Value::Float(p.worst_arrival())),
                        ("gates", Value::UInt(p.arcs.len() as u64)),
                        ("source", jstr(outcome.netlist.net_label(p.source))),
                        ("endpoint", jstr(outcome.netlist.net_label(p.endpoint()))),
                    ])
                })
                .collect();
            let kernel = match outcome.kernel {
                Some((arcs, coefficients)) => jmap(vec![
                    ("arcs", Value::UInt(arcs as u64)),
                    ("coefficients", Value::UInt(coefficients as u64)),
                ]),
                None => Value::Null,
            };
            print_json(&jmap(vec![
                (
                    "schema_version",
                    Value::UInt(sta_obs::SCHEMA_VERSION as u64),
                ),
                ("command", jstr("analyze")),
                ("circuit", jstr(circuit)),
                ("tech", jstr(opts.tech.name.clone())),
                ("threads", Value::UInt(opts.threads as u64)),
                ("num_gates", Value::UInt(outcome.netlist.num_gates() as u64)),
                ("paths", Value::UInt(outcome.stats.paths as u64)),
                (
                    "input_vectors",
                    Value::UInt(outcome.stats.input_vectors as u64),
                ),
                ("truncated", Value::Bool(outcome.stats.truncated)),
                ("elapsed_s", Value::Float(outcome.elapsed_s)),
                ("kernel", kernel),
                ("worst_paths", Value::Seq(worst)),
            ]));
        }
    }
    let digest = if session.wants_manifest() {
        let certs =
            CertificateSet::new(&outcome.netlist, outcome.input_slew, outcome.paths.clone());
        Some(sta_obs::digest_string(certs.to_json().as_bytes()))
    } else {
        None
    };
    session.finish(opts.config_echo(Some(circuit)), digest)
}

fn cmd_slack(opts: &Opts, args: &[String]) -> Result<(), CliError> {
    let circuit = opts.circuit("slack")?;
    let session = ObsSession::new(opts, args);
    if is_batch(opts) {
        let batch = base_request(circuit, opts, &session)?
            .n_worst(opts.nworst.or(Some(1)))
            .run_batch()?;
        let check_violations = render_batch("slack", circuit, &batch, opts);
        drop(batch);
        session.finish(opts.config_echo(Some(circuit)), None)?;
        return if check_violations == 0 {
            Ok(())
        } else {
            Err(CliError::Findings(format!(
                "slack requirement violated at {check_violations} endpoint(s) across the scenario matrix"
            )))
        };
    }
    // `--sdc`/`--required` are already folded into the primary scenario's
    // mode by the scenario matrix.
    let ctx = base_request(circuit, opts, &session)?.prepare()?;
    let out = ctx.slack();
    let source = match out.required_source {
        RequiredSource::Explicit => "explicit",
        RequiredSource::Sdc => "sdc",
        RequiredSource::Default => "default",
    };
    let violations = out.report.violations();
    match opts.format {
        OutputFormat::Human => {
            println!(
                "{circuit}: structural worst arrival {:.1} ps, requirement {:.1} ps ({source}) — {}",
                out.structural_worst,
                out.required,
                if out.report.passes() { "PASS" } else { "FAIL" }
            );
            for &(net, slack) in violations.iter().take(10) {
                println!("  {:>9.1} ps  {}", slack, ctx.netlist.net_label(net));
            }
        }
        OutputFormat::Json => {
            let vjson: Vec<Value> = violations
                .iter()
                .take(10)
                .map(|&(net, slack)| {
                    jmap(vec![
                        ("slack_ps", Value::Float(slack)),
                        ("net", jstr(ctx.netlist.net_label(net))),
                    ])
                })
                .collect();
            print_json(&jmap(vec![
                (
                    "schema_version",
                    Value::UInt(sta_obs::SCHEMA_VERSION as u64),
                ),
                ("command", jstr("slack")),
                ("circuit", jstr(circuit)),
                ("tech", jstr(opts.tech.name.clone())),
                ("structural_worst_ps", Value::Float(out.structural_worst)),
                ("required_ps", Value::Float(out.required)),
                ("required_source", jstr(source)),
                ("passes", Value::Bool(out.report.passes())),
                ("violations", Value::UInt(violations.len() as u64)),
                ("worst_violations", Value::Seq(vjson)),
            ]));
        }
    }
    // The synthetic 90 % default is a diagnostic probe that fails by
    // construction; only a user-stated requirement (explicit or SDC) is a
    // check whose violation should flip the exit code.
    let is_check = out.required_source != RequiredSource::Default;
    let passes = out.report.passes();
    let required = out.required;
    let num_violations = violations.len();
    drop(out);
    drop(ctx);
    session.finish(opts.config_echo(Some(circuit)), None)?;
    if passes || !is_check {
        Ok(())
    } else {
        Err(CliError::Findings(format!(
            "slack requirement {required:.1} ps violated at {num_violations} endpoint(s)"
        )))
    }
}

fn cmd_baseline(opts: &Opts, args: &[String]) -> Result<(), CliError> {
    let circuit = opts.circuit("baseline")?;
    if is_batch(opts) {
        return Err(CliError::Usage(
            "baseline analyzes a single scenario; use --corner/--sdc, not --corners/--modes"
                .to_string(),
        ));
    }
    let session = ObsSession::new(opts, args);
    let ctx = base_request(circuit, opts, &session)?.prepare()?;
    let t0 = std::time::Instant::now();
    let report = run_baseline(
        &ctx.netlist,
        &ctx.lib,
        &ctx.timing,
        &BaselineConfig::new(opts.k, opts.limit).with_bitsim(!opts.no_bitsim),
    );
    let elapsed_s = t0.elapsed().as_secs_f64();
    match opts.format {
        OutputFormat::Human => {
            println!(
                "{circuit}: explored {} structural paths in {elapsed_s:.2} s — true {}, false {}, abandoned {} (false ratio {:.1} %)",
                report.paths.len(),
                report.num_true,
                report.num_false,
                report.num_backtrack_limited,
                report.false_path_ratio() * 100.0
            );
            for bp in report
                .paths
                .iter()
                .filter(|bp| bp.sens.classification == Classification::True)
                .take(10)
            {
                println!(
                    "  {:>9.1} ps  {} gates  (vectors {:?})",
                    bp.worst_delay(),
                    bp.path.arcs.len(),
                    bp.sens.chosen_vectors
                );
            }
        }
        OutputFormat::Json => {
            let worst: Vec<Value> = report
                .paths
                .iter()
                .filter(|bp| bp.sens.classification == Classification::True)
                .take(10)
                .map(|bp| {
                    jmap(vec![
                        ("delay_ps", Value::Float(bp.worst_delay())),
                        ("gates", Value::UInt(bp.path.arcs.len() as u64)),
                    ])
                })
                .collect();
            print_json(&jmap(vec![
                (
                    "schema_version",
                    Value::UInt(sta_obs::SCHEMA_VERSION as u64),
                ),
                ("command", jstr("baseline")),
                ("circuit", jstr(circuit)),
                ("tech", jstr(opts.tech.name.clone())),
                ("explored", Value::UInt(report.paths.len() as u64)),
                ("true_paths", Value::UInt(report.num_true as u64)),
                ("false_paths", Value::UInt(report.num_false as u64)),
                (
                    "abandoned",
                    Value::UInt(report.num_backtrack_limited as u64),
                ),
                ("false_ratio", Value::Float(report.false_path_ratio())),
                ("elapsed_s", Value::Float(elapsed_s)),
                ("worst_true_paths", Value::Seq(worst)),
            ]));
        }
    }
    drop(report);
    drop(ctx);
    session.finish(opts.config_echo(Some(circuit)), None)
}

fn cmd_cell(opts: &Opts) -> Result<(), CliError> {
    let name = opts
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("cell needs a cell name".to_string()))?;
    let lib = Library::standard();
    let cell = lib
        .cell_by_name(name)
        .ok_or_else(|| CliError::Usage(format!("unknown cell {name:?}")))?;
    println!(
        "{} : Z = {}   ({} transistors)",
        cell.name(),
        cell.expr().display(),
        cell.topology().transistor_count()
    );
    // `cell` honors the unified --corner flag (single-point commands
    // reject the batch flags in `scenario_matrix`).
    let (tech, corner) = match &opts.corner {
        Some(spec) => {
            let def =
                CornerDef::parse(spec, &opts.tech).map_err(|e| CliError::Usage(e.to_string()))?;
            (def.tech, def.corner)
        }
        None => (opts.tech.clone(), Corner::nominal(&opts.tech)),
    };
    let load = cell_input_cap(cell, &tech);
    for pin in 0..cell.num_pins() {
        for v in cell.vectors_of(pin) {
            let mut cols = Vec::new();
            for edge in Edge::BOTH {
                match simulate_arc(
                    cell,
                    &tech,
                    corner,
                    v,
                    edge,
                    Drive::Ramp { transition: 50.0 },
                    load,
                ) {
                    Ok(o) => cols.push(format!("in-{edge} {:.1}ps", o.delay)),
                    Err(e) => cols.push(format!("in-{edge} ERR({e})")),
                }
            }
            println!(
                "  pin {} {}  {}",
                sta_cells::func::pin_name(pin),
                v,
                cols.join("  ")
            );
        }
    }
    Ok(())
}

/// Bumps `audit.errors` / `audit.warnings` for one batch of audit
/// findings (the counters are pre-registered, so a clean run still
/// reports them at zero).
fn record_audit_severities(obs: &Observer, findings: &[sta_lint::Diagnostic]) {
    let errors = findings
        .iter()
        .filter(|d| d.severity == sta_lint::Severity::Error)
        .count() as u64;
    obs.counter("audit.errors").add(errors);
    obs.counter("audit.warnings")
        .add(findings.len() as u64 - errors);
}

/// One circuit's `--audit-flow` pass (see DESIGN.md §5.11):
///
/// * **AI leg** — builds the swept two-sided arc envelopes (compiled
///   when the run itself would use compiled kernels, so the audit sees
///   the same delay tables the search sees), re-derives single-source
///   abstract intervals, and checks every enumerated certificate for
///   enclosure (AI001/AI003/AI004) plus the structural pruning bound
///   against the interval hull (AI002).
/// * **ECO leg** — builds the per-source cache, checks its structural
///   and splice invariants (ECO002), then applies one deterministic
///   delay-only resize edit and audits the dirty-source mask against
///   per-source interval tables (ECO001/ECO003) and the incrementally
///   updated cache.
fn audit_flow_circuit(
    name: &str,
    ctx: &AnalysisContext,
    opts: &Opts,
    obs: &Observer,
) -> Vec<sta_lint::Diagnostic> {
    let slew = ctx.input_slew();
    let mut findings = Vec::new();
    // The corner kernel depends only on (timing library, corner): one
    // compile covers both the pristine and the edited netlist.
    let kernel = (!opts.no_kernels).then(|| ctx.timing.compile_corner(ctx.corner));
    let intervals_for = |nl: &Netlist| match &kernel {
        Some(k) => arc_intervals_compiled(nl, &ctx.timing, k, slew, ARC_SWEEP_MARGIN),
        None => arc_intervals(nl, &ctx.timing, ctx.corner, slew, ARC_SWEEP_MARGIN),
    };

    // AI001/AI003/AI004: every certificate inside its source's intervals.
    let run = ctx.enumerate();
    let plain_truncated = run.stats.truncated;
    let certs = CertificateSet::new(&ctx.netlist, slew, run.paths);
    let arcs = intervals_for(&ctx.netlist);
    let outcome = sta_lint::audit_certificates(&ctx.netlist, name, &arcs, &certs, slew);
    eprintln!(
        "{name}: audit: {}/{} certificates enclosed across {} sources",
        outcome.enclosed, outcome.certificates, outcome.sources_checked
    );
    obs.counter("audit.certificates_checked")
        .add(outcome.certificates as u64);
    obs.counter("audit.certificates_enclosed")
        .add(outcome.enclosed as u64);
    obs.counter("audit.sources_checked")
        .add(outcome.sources_checked as u64);
    findings.extend(outcome.diagnostics);

    // AI002: the search's own pruning bound must dominate the hull.
    let hull = sta_lint::hull(&ctx.netlist, &arcs, slew);
    let prune_margin = ctx.config().prune_margin;
    let st = match &kernel {
        Some(k) => static_bounds_compiled(&ctx.netlist, &ctx.timing, k, slew, prune_margin),
        None => static_bounds(&ctx.netlist, &ctx.timing, ctx.corner, slew, prune_margin),
    };
    findings.extend(sta_lint::audit_structural_dominance(
        name,
        &ctx.netlist,
        &hull,
        &st,
    ));

    // ECO002: per-source cache invariants, and — when neither side
    // truncated — the splice must reproduce the cold enumeration above.
    let per_source_cfg = {
        let mut cfg = EnumerationConfig::new(ctx.corner)
            .with_threads(opts.threads)
            .with_compiled_kernels(!opts.no_kernels)
            .with_bitsim(!opts.no_bitsim)
            .with_learning(!opts.no_learning)
            .with_per_source_n_worst(true)
            .with_observer(obs.clone());
        match opts.nworst {
            Some(n) => cfg = cfg.with_n_worst(n),
            None => cfg.max_paths = ctx.config().max_paths,
        }
        // Per-source enumeration has far weaker pruning thresholds than a
        // global N-worst run, so honor a `--max-decisions` bound here too;
        // the splice cross-check below already steps aside on truncation.
        cfg.max_decisions = ctx.config().max_decisions;
        cfg.input_slew = slew;
        cfg
    };
    let (mut cache, build_stats) = {
        let enumr =
            PathEnumerator::new(&ctx.netlist, &ctx.lib, &ctx.timing, per_source_cfg.clone());
        SourceCache::build(&enumr)
    };
    let splice_certs = (!plain_truncated && !build_stats.truncated).then_some(&certs);
    findings.extend(sta_lint::audit_source_cache(
        name,
        &ctx.netlist,
        &cache,
        splice_certs,
    ));

    // ECO001/ECO003: one sampled delay-only edit — resize the first
    // resizable gate at or after the middle of the gate list.
    let mut edited = ctx.netlist.clone();
    let gids: Vec<_> = edited.gate_ids().collect();
    let n = gids.len();
    let mut sampled = None;
    for off in 0..n {
        let gid = gids[(n / 2 + off) % n];
        let instance = edited.net_label(edited.gate(gid).output());
        if let Ok(edit) = resize_gate(&mut edited, &ctx.lib, &instance) {
            sampled = Some(edit);
            break;
        }
    }
    match sampled {
        Some(edit) => {
            let dirty = dirty_sources(&edited, &edit);
            let arcs_after = intervals_for(&edited);
            findings.extend(sta_lint::audit_dirty_sources(
                name,
                &ctx.netlist,
                &arcs,
                &edited,
                &arcs_after,
                &edit,
                &dirty,
                slew,
            ));
            // An incremental update must preserve the cache invariants.
            {
                let cfg = per_source_cfg.with_source_filter(std::sync::Arc::new(dirty));
                let enumr = PathEnumerator::new(&edited, &ctx.lib, &ctx.timing, cfg);
                cache.update(&enumr);
            }
            findings.extend(sta_lint::audit_source_cache(name, &edited, &cache, None));
            obs.counter("audit.eco_samples").add(1);
        }
        None => eprintln!("{name}: audit: no resizable gate, ECO edit sample skipped"),
    }
    findings
}

fn cmd_lint(opts: &Opts, args: &[String]) -> Result<(), CliError> {
    if is_batch(opts) {
        return Err(CliError::Usage(
            "lint analyzes a single scenario per circuit; use --corner/--sdc, not \
             --corners/--modes"
                .to_string(),
        ));
    }
    let session = ObsSession::new(opts, args);
    let obs = session.observer();
    let circuits: Vec<String> = if opts.positional.is_empty() {
        catalog::BENCHMARKS
            .iter()
            .map(|b| b.name.to_string())
            .collect()
    } else {
        opts.positional.clone()
    };
    let mut report = LintReport::new();
    let mut library_linted = false;
    if opts.audit_flow {
        // Pre-register the full audit.* counter set before any rule can
        // fire so the metric-name set never depends on what was found.
        sta_lint::register_audit_metrics(&obs);
        obs.counter("audit.flow_runs").add(1);
    }
    for name in &circuits {
        let mut req = base_request(name, opts, &session)?
            .n_worst(opts.nworst)
            .full_enum_path_cap(Some(20_000));
        if name.ends_with(".bench") {
            // A file path instead of a catalog name: parse and map it
            // here, keeping the path as the reporting name.
            let prim = catalog::from_bench_file(std::path::Path::new(name))?;
            req = req.with_netlist(map_netlist(&prim, &Library::standard())?);
        }
        let ctx = req.prepare()?;
        if !library_linted {
            // The library is checked once — it is shared by every circuit.
            library_linted = true;
            let _span = obs.span("lint-library");
            report.extend(lint_library(
                &ctx.lib,
                &ctx.timing,
                ctx.corner,
                &LibLintConfig::default(),
            ));
        }
        {
            let _span = obs.span_with("lint-netlist", vec![("circuit", name.clone())]);
            report.extend(lint_netlist(&ctx.netlist));
        }
        {
            let _span = obs.span_with("lint-schedule", vec![("circuit", name.clone())]);
            report.extend(check_schedule(&ctx.netlist, &ctx.lib));
        }
        if opts.verify_paths {
            // Inject the run's nogood store so what the engine learned
            // can be audited independently afterwards (LEARN rules).
            let nogoods = std::sync::Arc::new(sta_core::NogoodStore::new());
            let run = ctx.enumerate_with_nogood_store(std::sync::Arc::clone(&nogoods));
            // Round-trip through the serialized certificate format so the
            // oracle replays what a consumer would actually read, not the
            // in-memory result.
            let certs = CertificateSet::from_json(
                &CertificateSet::new(&ctx.netlist, ctx.input_slew(), run.paths).to_json(),
            )
            .map_err(CliError::Invalid)?;
            let outcome = {
                let _span = obs.span_with("verify-paths", vec![("circuit", name.clone())]);
                verify_paths(
                    &ctx.netlist,
                    &ctx.lib,
                    &ctx.timing,
                    &certs.paths,
                    certs.input_slew,
                    ctx.corner,
                )
            };
            outcome.record_metrics(&obs);
            eprintln!(
                "{name}: re-certified {}/{} enumerated paths{}",
                outcome.certified,
                outcome.checked,
                if run.stats.truncated {
                    " (enumeration budget hit)"
                } else {
                    ""
                }
            );
            report.extend(outcome.diagnostics);
            let snapshot = nogoods.snapshot();
            if !snapshot.is_empty() {
                let audit = {
                    let _span = obs.span_with("audit-nogoods", vec![("circuit", name.clone())]);
                    sta_lint::audit_nogoods(&ctx.netlist, &ctx.lib, name, &snapshot)
                };
                audit.record_metrics(&obs);
                eprintln!(
                    "{name}: audited {} learned nogoods ({} certified, {} skipped on budget)",
                    audit.checked, audit.certified, audit.skipped
                );
                report.extend(audit.diagnostics);
            }
        }
        if opts.audit_flow {
            let findings = {
                let _span = obs.span_with("audit-flow", vec![("circuit", name.clone())]);
                audit_flow_circuit(name, &ctx, opts, &obs)
            };
            obs.counter("audit.circuits").add(1);
            record_audit_severities(&obs, &findings);
            report.extend(findings);
        }
        drop(ctx);
    }
    if opts.audit_flow {
        // SRV leg, once per invocation: the checked-in serve request
        // schema must agree with the daemon's hand-written parser on
        // every protocol exemplar, and must not have drifted from the
        // protocol's field/enum universe.
        let schema: Value = serde_json::from_str(sta_serve::SERVE_SCHEMA_JSON)
            .map_err(|e| CliError::Invalid(format!("embedded serve schema: {e}")))?;
        let spec = sta_serve::protocol_spec();
        obs.counter("audit.srv_exemplars")
            .add(spec.exemplars.len() as u64);
        let findings = sta_lint::check_serve_protocol(&schema, &spec);
        record_audit_severities(&obs, &findings);
        report.extend(findings);
    }

    if opts.deny_warnings {
        report.deny_warnings();
    }
    report.record_metrics(&obs, "report");
    let rendered = match opts.format {
        OutputFormat::Human => report.render_human(),
        OutputFormat::Json => report.render_json(),
    };
    match &opts.out {
        Some(path) => {
            let mut f = std::fs::File::create(path)
                .map_err(|e| CliError::Io(format!("creating {path}: {e}")))?;
            f.write_all(rendered.as_bytes())
                .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    session.finish(opts.config_echo(None), None)?;
    if report.has_errors() {
        Err(CliError::Findings(format!(
            "lint found {} error(s)",
            report.count(sta_lint::Severity::Error)
        )))
    } else {
        Ok(())
    }
}

fn cmd_validate_manifest(opts: &Opts) -> Result<(), CliError> {
    let file = opts
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("validate-manifest needs a manifest file".to_string()))?;
    let text =
        std::fs::read_to_string(file).map_err(|e| CliError::Io(format!("reading {file}: {e}")))?;
    // Shape check: the document must round-trip as a manifest at all.
    let manifest = RunManifest::from_json(&text).map_err(CliError::Invalid)?;
    if manifest.schema_version != sta_obs::SCHEMA_VERSION {
        return Err(CliError::Invalid(format!(
            "{file}: schema_version {} (this tool understands {})",
            manifest.schema_version,
            sta_obs::SCHEMA_VERSION
        )));
    }
    let schema_path = opts
        .schema
        .clone()
        .unwrap_or_else(|| "docs/manifest.schema.json".to_string());
    let schema_text = std::fs::read_to_string(&schema_path)
        .map_err(|e| CliError::Io(format!("reading {schema_path}: {e}")))?;
    let schema: Value = serde_json::from_str(&schema_text)
        .map_err(|e| CliError::Invalid(format!("{schema_path}: {e}")))?;
    let doc: Value =
        serde_json::from_str(&text).map_err(|e| CliError::Invalid(format!("{file}: {e}")))?;
    match sta_obs::schema::validate(&schema, &doc) {
        Ok(()) => {
            println!(
                "{file}: valid run manifest (schema_version {}, {} metric(s), {} span root(s))",
                manifest.schema_version,
                manifest.metrics.metric_names().len(),
                manifest.spans.len()
            );
            Ok(())
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("{file}: {e}");
            }
            Err(CliError::Findings(format!(
                "{file}: {} schema violation(s)",
                errors.len()
            )))
        }
    }
}

fn cmd_serve(opts: &Opts) -> Result<(), CliError> {
    let cfg = sta_serve::ServerConfig {
        char_config: if opts.fast_char {
            CharConfig::fast()
        } else {
            CharConfig::standard()
        },
        cache_dir: std::path::PathBuf::from(".char-cache"),
        input_slew: 60.0,
        obs: Observer::enabled(),
    };
    let mut server = sta_serve::Server::new(cfg);
    let served = match &opts.socket {
        #[cfg(unix)]
        Some(path) => {
            eprintln!("sta-serve: listening on {path} (NDJSON; see docs/serve.schema.json)");
            sta_serve::serve_socket(&mut server, std::path::Path::new(path))?
        }
        #[cfg(not(unix))]
        Some(_) => {
            return Err(CliError::Usage(
                "--socket requires a Unix platform (use stdin/stdout)".to_string(),
            ))
        }
        None => {
            eprintln!("sta-serve: reading NDJSON requests from stdin (see docs/serve.schema.json)");
            sta_serve::serve_stdio(&mut server)?
        }
    };
    eprintln!("sta-serve: session closed after {served} request(s)");
    Ok(())
}

fn load_timing(lib: &Library, tech: &Technology) -> Result<TimingLibrary, CliError> {
    eprintln!("characterizing / loading cache for {} ...", tech.name);
    Ok(characterize_cached(
        lib,
        tech,
        &CharConfig::standard(),
        std::path::Path::new(".char-cache"),
    )?)
}

fn cmd_liberty(opts: &Opts) -> Result<(), CliError> {
    let lib = Library::standard();
    let tlib = load_timing(&lib, &opts.tech)?;
    let text = sta_charlib::liberty::write_liberty(&lib, &tlib);
    match &opts.out {
        Some(path) => {
            let mut f = std::fs::File::create(path)
                .map_err(|e| CliError::Io(format!("creating {path}: {e}")))?;
            f.write_all(text.as_bytes())
                .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}
