//! Mapped netlists round-trip through the structural-Verilog subset with
//! the standard cell library as the pin resolver.

use sta_cells::Library;
use sta_circuits::catalog;
use sta_netlist::verilog::{parse_module, write_module};
use sta_netlist::GateKind;

fn roundtrip(name: &str) {
    let lib = Library::standard();
    let mapped = catalog::mapped(name, &lib)
        .expect("mapping succeeds")
        .expect("known benchmark");
    let text = write_module(&mapped, |cid| {
        let cell = lib.cell(cid);
        (
            cell.name().to_string(),
            cell.pin_names().to_vec(),
            "Z".to_string(),
        )
    });
    let back = parse_module(&text)
        .expect("writer output parses")
        .into_netlist(&lib)
        .expect("cells resolve");
    assert_eq!(back.num_gates(), mapped.num_gates(), "{name}");
    assert_eq!(back.inputs().len(), mapped.inputs().len(), "{name}");
    assert_eq!(back.outputs().len(), mapped.outputs().len(), "{name}");
    // Functional spot-check.
    let n = mapped.inputs().len();
    for k in 0..10u64 {
        let v: Vec<bool> = (0..n)
            .map(|i| (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (i % 61)) & 1 == 1)
            .collect();
        assert_eq!(
            lib.eval_netlist(&mapped, &v),
            lib.eval_netlist(&back, &v),
            "{name} pattern {k}"
        );
    }
    // The round-tripped netlist is still fully mapped.
    assert!(back
        .gate_ids()
        .all(|g| matches!(back.gate(g).kind(), GateKind::Cell(_))));
}

#[test]
fn c17_roundtrips_through_verilog() {
    roundtrip("c17");
}

#[test]
fn sample_roundtrips_through_verilog() {
    roundtrip("sample");
}

#[test]
fn c432_roundtrips_through_verilog() {
    roundtrip("c432");
}

#[test]
fn c880_roundtrips_through_verilog() {
    roundtrip("c880");
}
