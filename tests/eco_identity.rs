//! Incremental ECO re-analysis is byte-identical to a cold run.
//!
//! The timing daemon's central claim (DESIGN.md §5.10): build the
//! per-source path cache once, apply a netlist edit, re-enumerate only
//! the sources whose shards intersect the dirty cone, splice — and the
//! spliced `CertificateSet` serializes to exactly the bytes a cold
//! enumeration of the edited netlist produces, at any thread count.
//! These tests pin that claim on catalog circuits, on random logic
//! (proptest), and on a scripted session against the real `serve` binary.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize, CharConfig, TimingLibrary};
use sta_circuits::randlogic::{random_logic, RandParams};
use sta_circuits::{catalog, map_netlist, resize_gate, rewire_net, GateEdit};
use sta_core::{dirty_sources, CertificateSet, EnumerationConfig, PathEnumerator, SourceCache};
use sta_netlist::{GateId, Netlist};

fn setup() -> (&'static Library, &'static TimingLibrary, Technology) {
    static LIB: OnceLock<Library> = OnceLock::new();
    static TLIB: OnceLock<TimingLibrary> = OnceLock::new();
    let tech = Technology::n90();
    let lib = LIB.get_or_init(Library::standard);
    let tlib = TLIB.get_or_init(|| {
        characterize(lib, &tech, &CharConfig::fast()).expect("characterization succeeds")
    });
    (lib, tlib, tech)
}

/// Applies `edit_fn` to a copy of `nl` and checks, at every requested
/// thread count, that incremental re-analysis of the edit splices to the
/// exact bytes of a cold run over the edited netlist.
#[allow(clippy::too_many_arguments)]
fn assert_eco_identity(
    name: &str,
    nl: &Netlist,
    lib: &Library,
    tlib: &TimingLibrary,
    tech: &Technology,
    n_worst: Option<usize>,
    threads_list: &[usize],
    edit_fn: impl Fn(&mut Netlist) -> GateEdit,
) {
    let corner = Corner::nominal(tech);
    for &threads in threads_list {
        let mut per_src = EnumerationConfig::new(corner)
            .with_threads(threads)
            .with_per_source_n_worst(true);
        let mut plain = EnumerationConfig::new(corner).with_threads(threads);
        if let Some(n) = n_worst {
            per_src = per_src.with_n_worst(n);
            plain = plain.with_n_worst(n);
        }

        // Build the cache on the pre-edit netlist; keep the corner
        // kernel resident the way the daemon does.
        let enumr = PathEnumerator::new(nl, lib, tlib, per_src.clone());
        let (mut cache, stats) = SourceCache::build(&enumr);
        assert!(!stats.truncated, "{name}: cache build truncated");
        let kernel = enumr.kernel_arc();
        drop(enumr);

        let mut edited = nl.clone();
        let edit = edit_fn(&mut edited);
        let dirty = dirty_sources(&edited, &edit);
        assert!(
            dirty.iter().any(|&d| d),
            "{name}: an applied edit must dirty at least one source"
        );
        if edit.function_changed {
            assert!(
                dirty.iter().all(|&d| d),
                "{name}: function-changing edits must dirty every source"
            );
        }

        let upd_cfg = per_src.clone().with_source_filter(Arc::new(dirty));
        let upd = PathEnumerator::with_prebuilt(&edited, lib, tlib, upd_cfg, kernel, None);
        let stats = cache.update(&upd);
        assert!(!stats.truncated, "{name}: incremental update truncated");
        let spliced = CertificateSet::new(&edited, 60.0, cache.splice());

        let (cold_paths, cold_stats) = PathEnumerator::new(&edited, lib, tlib, plain).run();
        assert!(!cold_stats.truncated, "{name}: cold run truncated");
        let cold = CertificateSet::new(&edited, 60.0, cold_paths);

        assert_eq!(
            spliced.to_json(),
            cold.to_json(),
            "{name}: spliced certificates differ from the cold run at {threads} thread(s)"
        );
    }
}

/// A deterministic in-range instance name (gate `idx` modulo the gate
/// count), for building edits.
fn instance(nl: &Netlist, idx: usize) -> String {
    let gid = GateId::from_index(idx % nl.num_gates());
    nl.net_label(nl.gate(gid).output())
}

/// Delay-only resize edits splice identically on the debug-tier catalog
/// circuits at 1/2/4 threads.
#[test]
fn resize_splices_identically_on_catalog_circuits() {
    let (lib, tlib, tech) = setup();
    for (name, gate_idx) in [("c17", 2), ("sample", 0), ("c432", 17)] {
        let nl = catalog::mapped(name, lib).unwrap().unwrap();
        let inst = instance(&nl, gate_idx);
        assert_eco_identity(
            name,
            &nl,
            lib,
            tlib,
            &tech,
            Some(10),
            &[1, 2, 4],
            |edited| resize_gate(edited, lib, &inst).expect("every cell has a drive variant"),
        );
    }
}

/// Function-changing rewires conservatively dirty everything and still
/// splice identically.
#[test]
fn rewire_splices_identically_on_c17() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("c17", lib).unwrap().unwrap();
    let inst = instance(&nl, 4);
    let pi = nl.net_label(nl.inputs()[0]);
    assert_eco_identity(
        "c17-rewire",
        &nl,
        lib,
        tlib,
        &tech,
        Some(10),
        &[1, 2, 4],
        |edited| {
            rewire_net(edited, &inst, 0, &pi).expect("rewiring an input pin to a PI is acyclic")
        },
    );
}

/// Full-enumeration mode (no `n_worst`) splices identically too: the
/// per-source lists are then simply complete.
#[test]
fn full_enumeration_splices_identically_on_c17() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("c17", lib).unwrap().unwrap();
    let inst = instance(&nl, 1);
    assert_eco_identity("c17-full", &nl, lib, tlib, &tech, None, &[1, 2], |edited| {
        resize_gate(edited, lib, &inst).expect("resize applies")
    });
}

/// The heavier catalog tier, exercised only in release builds (the
/// debug-tier suite must stay fast).
#[cfg(not(debug_assertions))]
#[test]
fn resize_splices_identically_on_heavy_circuits() {
    let (lib, tlib, tech) = setup();
    for (name, gate_idx) in [("c880", 31), ("c499", 11), ("c1908", 77)] {
        let nl = catalog::mapped(name, lib).unwrap().unwrap();
        let inst = instance(&nl, gate_idx);
        assert_eco_identity(
            name,
            &nl,
            lib,
            tlib,
            &tech,
            Some(50),
            &[1, 2, 4],
            |edited| resize_gate(edited, lib, &inst).expect("resize applies"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random logic, random edit site: resize splices identically at
    /// 1 and 2 threads.
    #[test]
    fn random_edits_splice_identically(seed in 0u64..1_000, gate_idx in 0usize..64) {
        let (lib, tlib, tech) = setup();
        let raw = random_logic(&RandParams {
            name: "eco".into(),
            inputs: 6,
            outputs: 3,
            gates: 36,
            seed,
            window: 18,
        });
        let nl = map_netlist(&raw, lib).expect("mapping succeeds");
        let inst = instance(&nl, gate_idx);
        assert_eco_identity(
            "randlogic",
            &nl,
            lib,
            tlib,
            &tech,
            Some(15),
            &[1, 2],
            |edited| resize_gate(edited, lib, &inst).expect("resize applies"),
        );
    }
}

// ---------------------------------------------------------------------------
// Scripted daemon session against the real binary
// ---------------------------------------------------------------------------

/// Spawns `sta-repro serve`, pipes a scripted ECO session through stdin,
/// and checks the NDJSON responses line by line — including the in-band
/// `verify` proof that the incremental digest matches a cold re-run.
#[test]
fn scripted_daemon_session_round_trips() {
    use std::io::Write as _;
    use std::process::{Command, Stdio};

    let lib = Library::standard();
    let nl = catalog::mapped("c17", &lib).unwrap().unwrap();
    let inst = instance(&nl, 2);

    let mut child = Command::new(env!("CARGO_BIN_EXE_sta-repro"))
        .args(["serve", "--fast-char"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve binary spawns");
    {
        let stdin = child.stdin.as_mut().expect("stdin is piped");
        writeln!(
            stdin,
            r#"{{"id":1,"op":"load","circuit":"c17","nworst":10}}"#
        )
        .unwrap();
        writeln!(
            stdin,
            r#"{{"id":2,"op":"edit","circuit":"c17","kind":"resize","instance":"{inst}"}}"#
        )
        .unwrap();
        writeln!(stdin, r#"{{"id":3,"op":"verify","circuit":"c17"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":4,"op":"bogus"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":5,"op":"shutdown"}}"#).unwrap();
    }
    let out = child.wait_with_output().expect("serve session finishes");
    assert!(out.status.success(), "serve exited with {:?}", out.status);

    let lines: Vec<String> = String::from_utf8(out.stdout)
        .expect("responses are UTF-8")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(lines.len(), 5, "one response line per request: {lines:?}");
    assert!(lines[0].contains(r#""ok": true"#) || lines[0].contains(r#""ok":true"#));
    assert!(
        lines[0].contains(r#""revision":0"#),
        "load is revision 0: {}",
        lines[0]
    );
    assert!(
        lines[1].contains(r#""function_changed":false"#),
        "resize is delay-only: {}",
        lines[1]
    );
    assert!(
        lines[2].contains(r#""identical":true"#),
        "incremental digest must match the cold re-run: {}",
        lines[2]
    );
    assert!(
        lines[3].contains(r#""ok":false"#),
        "bogus op errors: {}",
        lines[3]
    );
    assert!(
        lines[4].contains(r#""requests":5"#),
        "shutdown reports the session manifest: {}",
        lines[4]
    );
}
