//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use sta_cells::func::{Expr, TruthTable};
use sta_cells::sensitization::enumerate;
use sta_cells::topology::CellTopology;
use sta_cells::{Edge, Library};
use sta_charlib::poly::{PolyModel, Sample};
use sta_charlib::Lut2d;
use sta_circuits::map_netlist;
use sta_circuits::randlogic::{random_logic, RandParams};
use sta_esim::Waveform;
use sta_logic::{eval_expr_v9, BitSim, Dual, ImplicationEngine, Mask, Schedule, TriVal, V9};
use sta_netlist::bench_fmt;

/// A strategy for random cell expressions over up to 4 pins.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0u8..4).prop_map(Expr::Pin);
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| e.not()),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            prop::collection::vec(inner, 2..3).prop_map(Expr::Xor),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truth tables agree with direct expression evaluation.
    #[test]
    fn truth_table_matches_eval(expr in arb_expr()) {
        let tt = TruthTable::from_expr(&expr, 4);
        for row in 0..16u32 {
            let pins: Vec<bool> = (0..4).map(|k| row & (1 << k) != 0).collect();
            prop_assert_eq!(tt.value(row), expr.eval(&pins));
        }
    }

    /// Every enumerated sensitization vector really propagates a
    /// transition: flipping the pin under the vector's side values flips
    /// the output.
    #[test]
    fn sensitization_vectors_are_sound_and_complete(expr in arb_expr()) {
        let tt = TruthTable::from_expr(&expr, 4);
        let arcs = enumerate(&tt);
        for pa in &arcs {
            let mut count = 0usize;
            for side in 0u32..8 {
                // Build the full assignment with pin = 0 / 1.
                let side_pins: Vec<u8> = (0..4).filter(|&p| p != pa.pin).collect();
                let mut row0 = 0u32;
                for (k, &p) in side_pins.iter().enumerate() {
                    if side & (1 << k) != 0 {
                        row0 |= 1 << p;
                    }
                }
                if tt.value(row0) != tt.value(row0 | (1 << pa.pin)) {
                    count += 1;
                }
            }
            prop_assert_eq!(pa.vectors.len(), count, "pin {}", pa.pin);
        }
    }

    /// The derived CMOS topology computes the same function as the
    /// expression, for every input pattern.
    #[test]
    fn topology_realizes_the_function(expr in arb_expr()) {
        let tt = TruthTable::from_expr(&expr, 4);
        let topo = CellTopology::derive(&expr);
        for row in 0..16u32 {
            let pins: Vec<bool> = (0..4).map(|k| row & (1 << k) != 0).collect();
            prop_assert_eq!(topo.eval(&pins), tt.value(row));
        }
    }

    /// Nine-valued evaluation is consistent with Boolean evaluation on
    /// fully-defined values (stable or transition in both frames).
    #[test]
    fn v9_eval_projects_to_boolean(expr in arb_expr(), row0 in 0u32..16, row1 in 0u32..16) {
        let pins9: Vec<V9> = (0..4)
            .map(|k| {
                let a = row0 & (1 << k) != 0;
                let b = row1 & (1 << k) != 0;
                match (a, b) {
                    (false, false) => V9::S0,
                    (true, true) => V9::S1,
                    (false, true) => V9::R,
                    (true, false) => V9::F,
                }
            })
            .collect();
        let out = eval_expr_v9(&expr, &pins9);
        let pins_init: Vec<bool> = (0..4).map(|k| row0 & (1 << k) != 0).collect();
        let pins_fin: Vec<bool> = (0..4).map(|k| row1 & (1 << k) != 0).collect();
        let want_init = expr.eval(&pins_init);
        let want_fin = expr.eval(&pins_fin);
        prop_assert_eq!(out.init(), sta_logic::TriVal::from_bool(want_init));
        prop_assert_eq!(out.fin(), sta_logic::TriVal::from_bool(want_fin));
    }

    /// The technology mapper preserves circuit function on random logic.
    #[test]
    fn mapper_preserves_function(seed in 0u64..50, gates in 20usize..120) {
        let lib = Library::standard();
        let raw = random_logic(&RandParams {
            name: "prop".into(),
            inputs: 8,
            outputs: 4,
            gates,
            seed,
            window: 30,
        });
        let mapped = map_netlist(&raw, &lib).expect("mapping succeeds");
        for k in 0..12u64 {
            let v: Vec<bool> = (0..8)
                .map(|i| (seed ^ k.wrapping_mul(0x9E37_79B9)) >> (i + (k as usize % 3)) & 1 == 1)
                .collect();
            prop_assert_eq!(raw.eval_prim(&v), lib.eval_netlist(&mapped, &v));
        }
    }

    /// `.bench` writing and re-parsing round-trips random logic.
    #[test]
    fn bench_roundtrip(seed in 0u64..50) {
        let raw = random_logic(&RandParams {
            name: "rt".into(),
            inputs: 6,
            outputs: 3,
            gates: 40,
            seed,
            window: 20,
        });
        let text = bench_fmt::write(&raw);
        let back = bench_fmt::parse(&text, "rt").expect("round-trip parses");
        prop_assert_eq!(back.num_gates(), raw.num_gates());
        for k in 0..8u64 {
            let v: Vec<bool> = (0..6).map(|i| (seed + k) >> i & 1 == 1).collect();
            prop_assert_eq!(back.eval_prim(&v), raw.eval_prim(&v));
        }
    }

    /// Waveform interpolation is monotone between samples and clamps
    /// outside.
    #[test]
    fn waveform_interpolation_bounds(points in prop::collection::vec((0.0f64..1000.0, 0.0f64..1.2), 2..20)) {
        let mut pts = points;
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
        prop_assume!(pts.len() >= 2);
        let w = Waveform::new(pts.clone());
        let (lo, hi) = pts.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), p| {
            (a.min(p.1), b.max(p.1))
        });
        for t in [-10.0, 0.0, 123.4, 999.0, 2000.0] {
            let v = w.at(t);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
        prop_assert_eq!(w.at(-1e9), pts[0].1);
        prop_assert_eq!(w.at(1e9), pts[pts.len() - 1].1);
    }

    /// Polynomial fit reproduces an exactly-representable function at any
    /// probe point (not just the training grid).
    #[test]
    fn poly_fit_is_exact_for_representable_functions(
        a in -10.0f64..10.0, b in -1.0f64..1.0, c in -0.1f64..0.1,
        probe_fo in 0.5f64..8.0, probe_tin in 10.0f64..400.0,
    ) {
        let truth = |fo: f64, tin: f64| 20.0 + a * fo + b * tin + c * fo * tin;
        let mut samples = Vec::new();
        for fo in [0.5, 1.0, 2.0, 4.0, 8.0] {
            for tin in [10.0, 50.0, 150.0, 400.0] {
                samples.push(Sample {
                    fo,
                    t_in: tin,
                    temperature: 25.0,
                    vdd: 1.0,
                    value: truth(fo, tin),
                });
            }
        }
        let m = PolyModel::fit(&samples, [1, 1, 0, 0]).expect("well-conditioned fit");
        let got = m.eval(probe_fo, probe_tin, 25.0, 1.0);
        let want = truth(probe_fo, probe_tin);
        prop_assert!((got - want).abs() < 1e-6 * (1.0 + want.abs()), "{got} vs {want}");
    }

    /// LUT interpolation is exact on bilinear functions and never leaves
    /// the convex hull of the tabulated values.
    #[test]
    fn lut_interpolation_bounds(q in 0.1f64..10.0, r in 0.01f64..1.0, fo in 0.0f64..10.0, tin in 0.0f64..600.0) {
        let lut = Lut2d::tabulate(
            vec![0.5, 2.0, 5.0, 8.0],
            vec![10.0, 100.0, 300.0, 500.0],
            |f, t| q * f + r * t,
        );
        let v = lut.eval(fo, tin);
        let lo = q * 0.5 + r * 10.0 - 1e-9;
        let hi = q * 8.0 + r * 500.0 + 1e-9;
        prop_assert!(v >= lo && v <= hi);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Cone extraction preserves the function of the extracted outputs.
    #[test]
    fn cone_extraction_preserves_function(seed in 0u64..30) {
        let raw = random_logic(&RandParams {
            name: "cone".into(),
            inputs: 7,
            outputs: 4,
            gates: 50,
            seed,
            window: 25,
        });
        let root = raw.outputs()[0];
        let cone = sta_netlist::cone::extract_cone(&raw, &[root]).expect("extracts");
        prop_assert!(cone.num_gates() <= raw.num_gates());
        // Build the cone's input assignment from the full assignment by
        // name, then compare the root's value.
        for k in 0..8u64 {
            let full: Vec<bool> = (0..7).map(|i| (seed + 3 * k) >> i & 1 == 1).collect();
            let full_out = raw.eval_prim(&full);
            let cone_assign: Vec<bool> = cone
                .inputs()
                .iter()
                .map(|&ci| {
                    let name = cone.net(ci).name().expect("cone inputs are named");
                    let oi = raw.net_by_name(name).expect("name exists in original");
                    let pos = raw.inputs().iter().position(|&n| n == oi);
                    match pos {
                        Some(p) => full[p],
                        // Cone inputs that are internal nets of the
                        // original cannot occur: extraction recurses to
                        // primary inputs.
                        None => unreachable!("cone input is an original PI"),
                    }
                })
                .collect();
            let cone_out = cone.eval_prim(&cone_assign);
            prop_assert_eq!(cone_out[0], full_out[0]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The 64-lane packed forward simulation agrees lane-by-lane with the
    /// nine-valued engine's forward simulation of the same stable/X input
    /// vector — every lane, every driven net, X propagation included.
    #[test]
    fn bitsim_matches_engine_lane_by_lane(seed in 0u64..30, gates in 20usize..60) {
        let lib = Library::standard();
        let raw = random_logic(&RandParams {
            name: "bp".into(),
            inputs: 6,
            outputs: 3,
            gates,
            seed,
            window: 20,
        });
        let nl = map_netlist(&raw, &lib).expect("mapping succeeds");
        let sched = Schedule::compile(&nl, &lib);

        // Per input, 64 lanes of three-valued stimulus: bit i of `ones`
        // is the lane's value, bit i of `xs` forces the lane to X.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let stimuli: Vec<(u64, u64)> = nl.inputs().iter().map(|_| (next(), next())).collect();

        let mut sim = BitSim::new(&sched);
        sim.begin(&sched);
        for (&pi, &(ones, xs)) in nl.inputs().iter().zip(&stimuli) {
            sim.require(pi, ones & !xs, TriVal::One);
            sim.require(pi, !ones & !xs, TriVal::Zero);
        }
        let dead = sim.run(&sched, !0);
        prop_assert_eq!(dead, 0, "PI-only seeding cannot conflict");

        let mut eng = ImplicationEngine::new(&nl, &lib);
        for lane in 0..64u32 {
            eng.reset();
            for (&pi, &(ones, xs)) in nl.inputs().iter().zip(&stimuli) {
                if xs >> lane & 1 == 1 {
                    continue;
                }
                eng.assign(pi, Dual::stable(ones >> lane & 1 == 1), Mask::BOTH);
            }
            for g in nl.topo_gates() {
                let net = nl.gate(g).output();
                // Stable/X inputs keep both polarities and timeframes
                // equal, so any single component is the whole value.
                let want = eng.value(net).r.init();
                prop_assert_eq!(
                    sim.get(net, lane),
                    Some(want),
                    "lane {} of net {}",
                    lane,
                    nl.net_label(net)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The `.bench` parser never panics on arbitrary input — it returns
    /// structured errors instead.
    #[test]
    fn bench_parser_is_panic_free(text in "[ -~\n]{0,200}") {
        let _ = bench_fmt::parse(&text, "fuzz");
    }

    /// The structural-Verilog parser never panics on arbitrary input.
    #[test]
    fn verilog_parser_is_panic_free(text in "[ -~\n]{0,200}") {
        let _ = sta_netlist::verilog::parse_module(&text);
    }
}

/// Edge algebra is an involution and polarity application commutes.
#[test]
fn edge_involution() {
    for e in Edge::BOTH {
        assert_eq!(e.invert().invert(), e);
    }
}
