//! Identity guarantee of the bit-parallel justification pre-filter.
//!
//! The 64-lane filter (`sta_core::bitsim`) is refutation-only: it may
//! skip exact-engine work on branch candidates that provably conflict,
//! but it must never change which paths are found, their arrivals, their
//! witness vectors, or the bytes of the serialized certificate set — at
//! any thread count. These tests pin that promise against the filter-off
//! oracle.
//!
//! The characterization cache is shared with the observability golden
//! tests (same technology and configuration) so the suite warms it once.

use std::path::PathBuf;
use std::sync::OnceLock;

use sta_cells::Technology;
use sta_charlib::CharConfig;
use sta_core::{AnalysisRequest, CertificateSet};

/// Warm characterization cache shared by every test in this file.
fn warm_cache_dir() -> PathBuf {
    static WARMED: OnceLock<PathBuf> = OnceLock::new();
    WARMED
        .get_or_init(|| {
            let dir = std::env::temp_dir().join("sta-obs-golden-cache");
            let lib = sta_cells::Library::standard();
            sta_charlib::characterize_cached(&lib, &Technology::n90(), &CharConfig::fast(), &dir)
                .expect("characterization succeeds");
            dir
        })
        .clone()
}

fn request(circuit: &str) -> AnalysisRequest {
    AnalysisRequest::new(circuit)
        .char_config(CharConfig::fast())
        .cache_dir(warm_cache_dir())
        .n_worst(Some(50))
}

fn certificate_bytes(outcome: &sta_core::AnalysisOutcome) -> String {
    CertificateSet::new(&outcome.netlist, outcome.input_slew, outcome.paths.clone()).to_json()
}

#[test]
fn certificates_are_byte_identical_with_filter_on_or_off_at_any_thread_count() {
    for circuit in ["c17", "c432"] {
        let oracle = request(circuit)
            .bitsim(false)
            .run()
            .expect("filter-off oracle analyzes");
        let golden = certificate_bytes(&oracle);
        assert_eq!(oracle.stats.bitsim_words, 0, "filter off simulates nothing");
        assert_eq!(oracle.stats.bitsim_exact_calls_saved, 0);
        for threads in [1, 2, 4] {
            for bitsim in [false, true] {
                let outcome = request(circuit)
                    .threads(threads)
                    .bitsim(bitsim)
                    .run()
                    .expect("run analyzes");
                assert_eq!(
                    golden,
                    certificate_bytes(&outcome),
                    "{circuit}: bitsim={bitsim} {threads}-thread certificates \
                     must match the filter-off oracle byte for byte"
                );
            }
        }
    }
}

#[test]
fn filter_does_measurable_work_when_enabled() {
    let outcome = request("c432")
        .bitsim(true)
        .run()
        .expect("c432 analyzes with the filter on");
    assert!(
        outcome.stats.bitsim_words > 0,
        "the enumeration of c432 reaches multi-candidate branch points, \
         so the filter must have simulated at least one word"
    );
    assert!(
        outcome.stats.bitsim_lanes_filtered >= outcome.stats.bitsim_exact_calls_saved,
        "lane kills are counted per polarity plane, so they bound the \
         fully-refuted candidates from above"
    );
}
