//! Identity guarantee of the learned-nogood and dominance pruning layer.
//!
//! The pruning layer (`sta_core::learn` plus the tightened per-source
//! bounds in `sta_core::arrival`) is refutation-only and bound-safe: it
//! may skip justification work the engine would have spent refuting dead
//! branches, and it may cut partial paths that provably cannot reach the
//! N-worst admission threshold, but it must never change which paths are
//! found, their arrivals, their witness vectors, or the bytes of the
//! serialized certificate set — at any thread count. These tests pin
//! that promise against the learning-off oracle, on catalog circuits and
//! on random mapped logic, and independently re-justify every clause a
//! run stored.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize, CharConfig, TimingLibrary};
use sta_circuits::randlogic::{random_logic, RandParams};
use sta_circuits::{catalog, map_netlist};
use sta_core::{CertificateSet, EnumerationConfig, NogoodStore, PathEnumerator};
use sta_netlist::Netlist;

fn setup() -> (&'static Library, &'static TimingLibrary, Technology) {
    static LIB: OnceLock<Library> = OnceLock::new();
    static TLIB: OnceLock<TimingLibrary> = OnceLock::new();
    let tech = Technology::n90();
    let lib = LIB.get_or_init(Library::standard);
    let tlib = TLIB.get_or_init(|| {
        characterize(lib, &tech, &CharConfig::fast()).expect("characterization succeeds")
    });
    (lib, tlib, tech)
}

fn certificate_bytes(
    nl: &Netlist,
    lib: &Library,
    tlib: &TimingLibrary,
    cfg: &EnumerationConfig,
) -> String {
    let (paths, _) = PathEnumerator::new(nl, lib, tlib, cfg.clone()).run();
    CertificateSet::new(nl, cfg.input_slew, paths).to_json()
}

/// Learning on vs the learning-off oracle, serial and parallel: the
/// certificate sets must match byte for byte. The N-worst budget shrinks
/// with circuit size — the layer under test is exercised hardest exactly
/// when the admission threshold is tight — and the c880 member runs in
/// release builds only: its unoptimized search costs minutes and adds no
/// coverage the release CI pass doesn't already pin.
#[test]
fn certificates_are_byte_identical_with_learning_on_or_off_at_any_thread_count() {
    let (lib, tlib, tech) = setup();
    let circuits: &[(&str, usize)] = if cfg!(debug_assertions) {
        &[("c17", 3), ("c432", 12)]
    } else {
        &[("c17", 3), ("c432", 25), ("c880", 2)]
    };
    for &(name, n_worst) in circuits {
        let nl = catalog::mapped(name, lib).unwrap().unwrap();
        let cfg = EnumerationConfig::new(Corner::nominal(&tech)).with_n_worst(n_worst);
        let golden = certificate_bytes(&nl, lib, tlib, &cfg.clone().with_learning(false));
        // Learning-off parallel runs are already pinned against serial by
        // the parallel_determinism suite; here every learning-on variant
        // is pinned against the learning-off oracle.
        for threads in [1, 2, 4] {
            let cfg = cfg.clone().with_learning(true).with_threads(threads);
            assert_eq!(
                golden,
                certificate_bytes(&nl, lib, tlib, &cfg),
                "{name}: learning-on {threads}-thread certificates must \
                 match the learning-off oracle byte for byte"
            );
        }
    }
}

/// Learning does measurable work where the search actually refutes:
/// c432's reconvergent logic stores clauses and consults them.
#[test]
fn learning_does_measurable_work_when_enabled() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("c432", lib).unwrap().unwrap();
    let cfg = EnumerationConfig::new(Corner::nominal(&tech))
        .with_n_worst(25)
        .with_learning(true);
    let (_, stats) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
    assert!(stats.learn_stored > 0, "c432 stores learned nogoods");
    assert!(
        stats.learn_verify_failures == 0 || stats.learn_stored > 0,
        "verification failures must not be the only outcome"
    );
    assert!(
        stats.learn_bound_cuts > 0,
        "the tightened dominance bound cuts at least one arc on c432"
    );
}

/// Every clause a run stored is independently re-justified by the lint
/// auditor: a learned nogood must never refute a satisfiable assignment
/// (that would mean the engine could drop a true path).
#[test]
fn stored_nogoods_never_refute_a_satisfiable_assignment() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("c432", lib).unwrap().unwrap();
    let cfg = EnumerationConfig::new(Corner::nominal(&tech))
        .with_n_worst(25)
        .with_learning(true);
    let store = Arc::new(NogoodStore::new());
    let mut enumr = PathEnumerator::new(&nl, lib, tlib, cfg);
    enumr.set_nogood_store(Arc::clone(&store));
    let (_, stats) = enumr.run();
    assert!(stats.learn_stored > 0, "the run stored clauses to audit");
    let snapshot = store.snapshot();
    let audit = sta_lint::audit_nogoods(&nl, lib, "c432", &snapshot);
    assert_eq!(
        audit.checked, stats.learn_stored as usize,
        "the audit saw every stored clause"
    );
    assert!(
        audit.diagnostics.is_empty(),
        "no stored clause is malformed or refutes a satisfiable \
         assignment: {:?}",
        audit.diagnostics
    );
    assert_eq!(audit.certified + audit.skipped, audit.checked);
}

/// Regression: c1908's true worst paths (launched from n28 and n2) were
/// pruned by unsound learned clauses, through three distinct holes in
/// the verification replay. A clause with a *transition* literal was
/// "refuted" outside the stable-requirement domain where the justifier's
/// `Unsatisfiable` is definitive; a replay that omitted the *launch*
/// vacuously refuted any literal supported only through the source (the
/// source is unassignable under its own toggle deltas); and a refuted
/// clause whose fanin cone left a toggle-capable net unresolved
/// generalized a state-dependent refutation — the witness routes the
/// launch through that net and cancels to a stable value through an
/// XOR, which the stable-only backward search can never construct. The
/// replay now asserts the launch exactly as the DFS root does, literals
/// are restricted to `S0`/`S1`, and refutations only count with closed
/// transition support; this pins the full unbudgeted learning-on run
/// against the learning-off oracle on the circuit that exposed all
/// three. Release-only: the unbudgeted c1908 search costs minutes
/// unoptimized.
#[cfg(not(debug_assertions))]
#[test]
fn unbudgeted_c1908_learning_matches_the_oracle() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("c1908", lib).unwrap().unwrap();
    let cfg = EnumerationConfig::new(Corner::nominal(&tech)).with_n_worst(50);
    let golden = certificate_bytes(&nl, lib, tlib, &cfg.clone().with_learning(false));
    assert_eq!(
        golden,
        certificate_bytes(&nl, lib, tlib, &cfg.with_learning(true)),
        "c1908: the learning-on certificates must match the learning-off \
         oracle byte for byte"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random mapped logic: learning on equals the learning-off oracle at
    /// 1/2/4 threads, bytes compared over the certificate set.
    #[test]
    fn random_logic_learning_matches_oracle(
        seed in 0u64..1_000,
        gates in 10usize..40,
        inputs in 3usize..6,
    ) {
        let (lib, tlib, tech) = setup();
        let params = RandParams {
            name: format!("learn_{seed}"),
            inputs,
            outputs: 2,
            gates,
            seed,
            window: 8,
        };
        let raw = random_logic(&params);
        let nl = map_netlist(&raw, lib).expect("mapping succeeds");
        let cfg = EnumerationConfig::new(Corner::nominal(&tech)).with_n_worst(10);
        let golden = certificate_bytes(&nl, lib, tlib, &cfg.clone().with_learning(false));
        for threads in [1usize, 2, 4] {
            let cfg = cfg.clone().with_learning(true).with_threads(threads);
            prop_assert_eq!(
                &golden,
                &certificate_bytes(&nl, lib, tlib, &cfg),
                "seed {} threads {}",
                seed,
                threads
            );
        }
    }
}
