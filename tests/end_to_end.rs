//! End-to-end integration: raw netlist → technology mapping →
//! characterization → single-pass true-path STA → baseline comparison.

use std::sync::OnceLock;

use sta_baseline::{run_baseline, BaselineConfig, Classification};
use sta_cells::{Corner, Edge, Library, Technology};
use sta_charlib::{characterize, CharConfig, TimingLibrary};
use sta_circuits::catalog;
use sta_core::{EnumerationConfig, PathEnumerator, PiValue, TruePath};
use sta_netlist::Netlist;

fn setup() -> (&'static Library, &'static TimingLibrary, Technology) {
    static LIB: OnceLock<Library> = OnceLock::new();
    static TLIB: OnceLock<TimingLibrary> = OnceLock::new();
    let tech = Technology::n90();
    let lib = LIB.get_or_init(Library::standard);
    let tlib = TLIB.get_or_init(|| {
        characterize(lib, &tech, &CharConfig::fast()).expect("characterization succeeds")
    });
    (lib, tlib, tech)
}

/// Two-pattern check of a path witness: flipping the source input while
/// holding the rest of the vector must toggle the path endpoint.
fn witness_toggles_endpoint(nl: &Netlist, lib: &Library, p: &TruePath) -> bool {
    let launches = [
        p.rise.as_ref().map(|_| Edge::Rise),
        p.fall.as_ref().map(|_| Edge::Fall),
    ];
    for launch in launches.into_iter().flatten() {
        let assign = |source_val: bool| -> Vec<bool> {
            nl.inputs()
                .iter()
                .zip(&p.input_vector)
                .map(|(_, v)| match v {
                    PiValue::Transition => source_val,
                    PiValue::One => true,
                    PiValue::Zero | PiValue::X => false,
                })
                .collect()
        };
        let (init, fin) = match launch {
            Edge::Rise => (false, true),
            Edge::Fall => (true, false),
        };
        let before = lib.eval_netlist(nl, &assign(init));
        let after = lib.eval_netlist(nl, &assign(fin));
        let po = nl
            .outputs()
            .iter()
            .position(|&o| o == p.endpoint())
            .expect("endpoint is a PO");
        if before[po] == after[po] {
            return false;
        }
    }
    true
}

#[test]
fn c17_full_pipeline() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("c17", lib).unwrap().unwrap();
    let cfg = EnumerationConfig::new(Corner::nominal(&tech));
    let (paths, stats) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
    assert!(!stats.truncated);
    // c17 has 11 structural I/O paths, all true (NAND-only, no blocking).
    assert_eq!(paths.len(), 11);
    for p in &paths {
        assert_eq!(p.num_polarities(), 2, "NAND paths sensitize both edges");
        assert!(
            witness_toggles_endpoint(&nl, lib, p),
            "{}",
            p.describe(&nl, lib)
        );
        assert!(p.worst_arrival() > 0.0);
    }
    // Paths are sorted by descending worst arrival.
    for w in paths.windows(2) {
        assert!(w[0].worst_arrival() >= w[1].worst_arrival());
    }
}

#[test]
fn every_developed_path_witness_is_sound_on_catalog_smalls() {
    let (lib, tlib, tech) = setup();
    for name in ["c432", "sample"] {
        let nl = catalog::mapped(name, lib).unwrap().unwrap();
        let mut cfg = EnumerationConfig::new(Corner::nominal(&tech)).with_n_worst(40);
        cfg.max_decisions = 10_000_000;
        let (paths, _) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
        assert!(!paths.is_empty(), "{name}");
        for p in &paths {
            assert!(
                witness_toggles_endpoint(&nl, lib, p),
                "{name}: {}",
                p.describe(&nl, lib)
            );
        }
    }
}

#[test]
fn baseline_true_paths_are_a_subset_of_developed_paths() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("sample", lib).unwrap().unwrap();
    let cfg = EnumerationConfig::new(Corner::nominal(&tech));
    let (paths, _) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
    let report = run_baseline(&nl, lib, tlib, &BaselineConfig::new(100, 10_000));
    for bp in &report.paths {
        if bp.sens.classification == Classification::True {
            assert!(
                paths.iter().any(|p| p.nodes == bp.path.nodes),
                "baseline-true path missing from developed enumeration"
            );
        }
    }
    // And the developed tool finds strictly more vectors than the
    // baseline (which reports at most one per structural path).
    assert!(paths.len() > report.num_true);
}

#[test]
fn developed_tool_finds_the_vector_dependent_critical_path() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("sample", lib).unwrap().unwrap();
    let cfg = EnumerationConfig::new(Corner::nominal(&tech));
    let (paths, _) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
    let n1 = nl.net_by_name("N1").unwrap();
    let through: Vec<&TruePath> = paths
        .iter()
        .filter(|p| p.source == n1 && p.arcs.len() == 4)
        .collect();
    assert!(through.len() >= 2, "multiple vectors for the AO22 path");
    let worst = through
        .iter()
        .map(|p| p.worst_arrival())
        .fold(f64::NEG_INFINITY, f64::max);
    let best = through
        .iter()
        .map(|p| p.worst_arrival())
        .fold(f64::INFINITY, f64::min);
    assert!(
        worst > best * 1.01,
        "vector choice must change the path delay ({best} vs {worst})"
    );
}

#[test]
fn mapped_netlists_keep_their_function() {
    let (lib, _, _) = setup();
    for name in ["c17", "c432", "c499", "c880"] {
        let raw = catalog::primitive(name).unwrap();
        let mapped = catalog::mapped(name, lib).unwrap().unwrap();
        assert_eq!(raw.inputs().len(), mapped.inputs().len(), "{name}");
        assert_eq!(raw.outputs().len(), mapped.outputs().len(), "{name}");
        let n = raw.inputs().len();
        for k in 0..16u64 {
            let v: Vec<bool> = (0..n)
                .map(|i| (k.wrapping_mul(0x2545_F491_4F6C_DD1D) >> (i % 53)) & 1 == 1)
                .collect();
            assert_eq!(
                raw.eval_prim(&v),
                lib.eval_netlist(&mapped, &v),
                "{name} pattern {k}"
            );
        }
    }
}
