//! Property-based invariants of the dual-value logic system, the
//! implication engine, and the toggle analysis.

use proptest::prelude::*;

use sta_cells::Library;
use sta_circuits::map_netlist;
use sta_circuits::randlogic::{random_logic, RandParams};
use sta_logic::{toggle_analysis, Dual, ImplicationEngine, Mask, Toggle, TriVal, V9};

/// All nine logic values.
fn all_v9() -> Vec<V9> {
    let tri = [TriVal::Zero, TriVal::One, TriVal::X];
    let mut out = Vec::new();
    for &i in &tri {
        for &f in &tri {
            out.push(V9::new(i, f));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// De Morgan duality holds in the nine-valued algebra.
    #[test]
    fn v9_de_morgan(ai in 0usize..9, bi in 0usize..9) {
        let vs = all_v9();
        let (a, b) = (vs[ai], vs[bi]);
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    /// Meet is commutative, idempotent, and absorbs XX.
    #[test]
    fn v9_meet_lattice(ai in 0usize..9, bi in 0usize..9) {
        let vs = all_v9();
        let (a, b) = (vs[ai], vs[bi]);
        prop_assert_eq!(a.meet(b), b.meet(a));
        prop_assert_eq!(a.meet(a), Some(a));
        prop_assert_eq!(a.meet(V9::XX), Some(a));
    }

    /// AND/OR are monotone with respect to definedness: refining an input
    /// never un-refines the output.
    #[test]
    fn v9_ops_are_monotone(ai in 0usize..9, bi in 0usize..9) {
        let vs = all_v9();
        let (a, b) = (vs[ai], vs[bi]);
        // A refinement of a: meet with every concrete value.
        for &r in &all_v9() {
            if let Some(a2) = a.meet(r) {
                // a2 refines a; outputs must be consistent.
                let out1 = a.and(b);
                let out2 = a2.and(b);
                prop_assert!(
                    out1.meet(out2).is_some(),
                    "AND broke consistency: {a:?}->{a2:?} with {b:?}"
                );
                let or1 = a.or(b);
                let or2 = a2.or(b);
                prop_assert!(or1.meet(or2).is_some());
            }
        }
    }

    /// Engine rollback is exact on random circuits: assignments then a
    /// rollback restore every net value.
    #[test]
    fn engine_rollback_is_exact(seed in 0u64..40) {
        let lib = Library::standard();
        let raw = random_logic(&RandParams {
            name: "prop".into(),
            inputs: 6,
            outputs: 3,
            gates: 60,
            seed,
            window: 25,
        });
        let nl = map_netlist(&raw, &lib).expect("maps");
        let mut eng = ImplicationEngine::new(&nl, &lib);
        let before: Vec<Dual> = nl.net_ids().map(|n| eng.value(n)).collect();
        let mark = eng.mark();
        let mut mask = Mask::BOTH;
        for (i, &pi) in nl.inputs().iter().enumerate() {
            let want = if i == 0 {
                Dual::transition(false)
            } else {
                Dual::stable(i % 2 == 0)
            };
            let conflicts = eng.assign(pi, want, mask);
            mask = mask.minus(conflicts);
            if !mask.any() {
                break;
            }
        }
        eng.rollback(mark);
        for (n, &old) in nl.net_ids().zip(&before) {
            prop_assert_eq!(eng.value(n), old, "net {} not restored", n);
        }
    }

    /// The toggle analysis is sound against concrete two-pattern
    /// simulation: a `Zero` net never changes value when the source flips,
    /// and a `One` net always does.
    #[test]
    fn toggle_analysis_is_sound(seed in 0u64..40, pattern in 0u64..256) {
        let lib = Library::standard();
        let raw = random_logic(&RandParams {
            name: "prop".into(),
            inputs: 8,
            outputs: 4,
            gates: 80,
            seed,
            window: 30,
        });
        let nl = map_netlist(&raw, &lib).expect("maps");
        let src = nl.inputs()[0];
        let deltas = toggle_analysis(&nl, &lib, src);
        // Two-pattern evaluation: source 0 vs source 1, other PIs fixed.
        let assign = |src_val: bool| -> Vec<bool> {
            nl.inputs()
                .iter()
                .enumerate()
                .map(|(i, _)| if i == 0 { src_val } else { pattern >> i & 1 == 1 })
                .collect()
        };
        // Evaluate every net (not only POs): reuse the library evaluator
        // through per-net inspection via outputs of a netlist clone with
        // all nets marked out would be invasive — instead compute values
        // manually.
        let values = |assignment: &[bool]| -> Vec<bool> {
            let mut value = vec![false; nl.num_nets()];
            for (&net, &v) in nl.inputs().iter().zip(assignment) {
                value[net.index()] = v;
            }
            for g in nl.topo_gates() {
                let gate = nl.gate(g);
                let ins: Vec<bool> = gate.inputs().iter().map(|n| value[n.index()]).collect();
                value[gate.output().index()] = match gate.kind() {
                    sta_netlist::GateKind::Cell(c) => lib.cell(c).eval(&ins),
                    sta_netlist::GateKind::Prim(op) => op.eval(&ins),
                };
            }
            value
        };
        let v0 = values(&assign(false));
        let v1 = values(&assign(true));
        for n in nl.net_ids() {
            let flipped = v0[n.index()] != v1[n.index()];
            match deltas[n.index()] {
                Toggle::Zero => prop_assert!(!flipped, "Zero net {} flipped", n),
                Toggle::One => prop_assert!(flipped, "One net {} did not flip", n),
                Toggle::Unknown => {}
            }
        }
    }
}
