//! Integration tests of the reporting and export surfaces: slack
//! analysis, path reports, SDF, Liberty, Graphviz.

use std::sync::OnceLock;

use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize, CharConfig, TimingLibrary};
use sta_circuits::catalog;
use sta_core::{
    slack_report, worst_path_report, write_sdf, EnumerationConfig, PathEnumerator, SdfVectorPolicy,
};
use sta_netlist::dot::{to_dot, DotOptions};

fn setup() -> (&'static Library, &'static TimingLibrary, Technology) {
    static LIB: OnceLock<Library> = OnceLock::new();
    static TLIB: OnceLock<TimingLibrary> = OnceLock::new();
    let tech = Technology::n90();
    let lib = LIB.get_or_init(Library::standard);
    let tlib = TLIB.get_or_init(|| {
        characterize(lib, &tech, &CharConfig::fast()).expect("characterization succeeds")
    });
    (lib, tlib, tech)
}

#[test]
fn slack_analysis_brackets_true_paths() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("sample", lib).unwrap().unwrap();
    let corner = Corner::nominal(&tech);
    // Structural worst arrival is an upper bound on every true path.
    let report = slack_report(&nl, tlib, corner, 60.0, 0.0);
    let structural_worst = report.timing.worst_arrival(&nl);
    let cfg = EnumerationConfig::new(corner);
    let (paths, _) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
    let true_worst = paths
        .iter()
        .map(|p| p.worst_arrival())
        .fold(0.0_f64, f64::max);
    assert!(
        structural_worst >= true_worst,
        "structural {structural_worst} must bound true {true_worst}"
    );
    // Requirement at exactly the structural worst: no violations.
    let at_bound = slack_report(&nl, tlib, corner, 60.0, structural_worst + 1e-6);
    assert!(at_bound.passes());
}

#[test]
fn worst_path_report_shows_vector() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("sample", lib).unwrap().unwrap();
    let corner = Corner::nominal(&tech);
    let (summary, detail) = worst_path_report(&nl, lib, tlib, corner, 5);
    assert!(summary.lines().count() >= 2, "{summary}");
    let detail = detail.expect("sample has paths");
    assert!(detail.contains("sensitizing vector"), "{detail}");
    assert!(detail.contains("AO22"), "{detail}");
}

#[test]
fn sdf_reference_vs_worst_differ_only_on_multi_vector_cells() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("c17", lib).unwrap().unwrap();
    let corner = Corner::nominal(&tech);
    // c17 is all NAND2 (single-vector arcs): both policies agree exactly.
    let a = write_sdf(&nl, lib, tlib, corner, 60.0, SdfVectorPolicy::Reference);
    let b = write_sdf(&nl, lib, tlib, corner, 60.0, SdfVectorPolicy::Worst);
    assert_eq!(a, b, "single-vector designs have no policy delta");
    // The sample circuit has an AO22: the files must differ.
    let nls = catalog::mapped("sample", lib).unwrap().unwrap();
    let a = write_sdf(&nls, lib, tlib, corner, 60.0, SdfVectorPolicy::Reference);
    let b = write_sdf(&nls, lib, tlib, corner, 60.0, SdfVectorPolicy::Worst);
    assert_ne!(a, b, "multi-vector designs expose the delta");
}

#[test]
fn graphviz_export_covers_the_whole_netlist() {
    let (lib, _, _) = setup();
    let nl = catalog::mapped("c432", lib).unwrap().unwrap();
    let dot = to_dot(&nl, &DotOptions::default());
    assert_eq!(dot.matches("shape=box").count(), nl.num_gates());
    assert!(dot.matches("->").count() >= nl.num_gates());
}

#[test]
fn liberty_export_covers_the_library() {
    let (lib, tlib, _) = setup();
    let text = sta_charlib::liberty::write_liberty(lib, tlib);
    for cell in lib.iter() {
        assert!(
            text.contains(&format!("cell ({})", cell.name())),
            "{} missing from Liberty export",
            cell.name()
        );
    }
}
