//! Interval abstract-interpretation enclosure properties on random logic.
//!
//! The `--audit-flow` soundness argument (DESIGN.md §5.11) rests on two
//! claims this file pins on generated netlists rather than the fixed
//! catalog:
//!
//! 1. **Table identity**: the swept per-arc interval tables are
//!    bit-identical whether the underlying delay model is evaluated
//!    through the interpreted fitted polynomials or the corner-compiled
//!    kernels — the audit never depends on which engine the search used.
//! 2. **Enclosure**: every certificate the enumeration engine emits —
//!    at any thread count — lies inside the single-source abstract
//!    intervals (endpoint arrival and slew, and every per-stage delay),
//!    and the engine's own structural pruning bound dominates the
//!    interval hull.

use std::sync::OnceLock;

use proptest::prelude::*;
use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize, CharConfig, TimingLibrary};
use sta_circuits::map_netlist;
use sta_circuits::randlogic::{random_logic, RandParams};
use sta_core::{
    arc_intervals, arc_intervals_compiled, static_bounds, static_bounds_compiled, CertificateSet,
    EnumerationConfig, PathEnumerator, ARC_SWEEP_MARGIN,
};

const INPUT_SLEW: f64 = 60.0;

fn fast_tlib() -> &'static TimingLibrary {
    static TLIB: OnceLock<TimingLibrary> = OnceLock::new();
    TLIB.get_or_init(|| {
        characterize(
            &Library::standard(),
            &Technology::n90(),
            &CharConfig::fast(),
        )
        .expect("characterization succeeds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_logic_certificates_are_enclosed(
        seed in 0u64..1_000,
        gates in 30usize..120,
    ) {
        let lib = Library::standard();
        let tlib = fast_tlib();
        let corner = Corner::nominal(&Technology::n90());
        let prim = random_logic(&RandParams {
            name: format!("rand{seed}"),
            inputs: 6,
            outputs: 4,
            gates,
            seed,
            window: 12,
        });
        let nl = map_netlist(&prim, &lib).expect("random logic maps");

        // Claim 1: interpreted and compiled tables are bit-identical.
        let arcs = arc_intervals(&nl, tlib, corner, INPUT_SLEW, ARC_SWEEP_MARGIN);
        let kernel = tlib.compile_corner(corner);
        let compiled =
            arc_intervals_compiled(&nl, tlib, &kernel, INPUT_SLEW, ARC_SWEEP_MARGIN);
        prop_assert_eq!(arcs.num_gates(), nl.num_gates());
        for gid in nl.gate_ids() {
            let pins = nl.gate(gid).inputs().len() as u8;
            for pin in 0..pins {
                prop_assert_eq!(arcs.num_vectors(gid, pin), compiled.num_vectors(gid, pin));
                for v in 0..arcs.num_vectors(gid, pin) {
                    let (a, b) = (arcs.get(gid, pin, v), compiled.get(gid, pin, v));
                    prop_assert_eq!(a.delay_lo.to_bits(), b.delay_lo.to_bits());
                    prop_assert_eq!(a.delay_hi.to_bits(), b.delay_hi.to_bits());
                    prop_assert_eq!(a.slew_lo.to_bits(), b.slew_lo.to_bits());
                    prop_assert_eq!(a.slew_hi.to_bits(), b.slew_hi.to_bits());
                }
            }
        }

        // Claim 2a: 100 % certificate enclosure at every thread count.
        for threads in [1usize, 2, 4] {
            let cfg = EnumerationConfig::new(corner)
                .with_threads(threads)
                .with_n_worst(25);
            let (paths, _) = PathEnumerator::new(&nl, &lib, tlib, cfg).run();
            let certs = CertificateSet::new(&nl, INPUT_SLEW, paths);
            let out =
                sta_lint::audit_certificates(&nl, "rand", &compiled, &certs, INPUT_SLEW);
            prop_assert!(out.diagnostics.is_empty(), "t={threads}: {:?}", out.diagnostics);
            prop_assert_eq!(out.enclosed, out.certificates);
        }

        // Claim 2b: the pruning bound dominates the hull — through both
        // delay-model engines.
        let hull = sta_lint::hull(&nl, &compiled, INPUT_SLEW);
        let prune_margin = EnumerationConfig::new(corner).prune_margin;
        for st in [
            static_bounds(&nl, tlib, corner, INPUT_SLEW, prune_margin),
            static_bounds_compiled(&nl, tlib, &kernel, INPUT_SLEW, prune_margin),
        ] {
            let ds = sta_lint::audit_structural_dominance("rand", &nl, &hull, &st);
            prop_assert!(ds.is_empty(), "{ds:?}");
        }
    }
}
