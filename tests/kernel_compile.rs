//! Corner-compiled delay kernels agree with the interpreted models.
//!
//! The kernel layer (`sta_charlib::kernel`) folds every fitted 4-variable
//! polynomial at the corner's fixed `(T, VDD)` into a dense 2-D Horner
//! table. The design invariant is **bit-identity**: the folded kernels
//! share their arithmetic with `PolyModel::eval`, so a compiled
//! enumeration must reproduce the interpreted engine's path sets and
//! arrivals exactly, at any thread count. These tests pin that invariant
//! on every arc of a characterized library (property-based, random
//! operating points) and end-to-end on catalog circuits.

use std::sync::OnceLock;

use proptest::prelude::*;

use sta_cells::{Corner, Edge, Library, Technology};
use sta_charlib::{characterize, CharConfig, TimingLibrary};
use sta_circuits::catalog;
use sta_core::{EnumerationConfig, EnumerationStats, PathEnumerator, TruePath};

fn setup() -> (&'static Library, &'static TimingLibrary, Technology) {
    static LIB: OnceLock<Library> = OnceLock::new();
    static TLIB: OnceLock<TimingLibrary> = OnceLock::new();
    let tech = Technology::n90();
    let lib = LIB.get_or_init(Library::standard);
    let tlib = TLIB.get_or_init(|| {
        characterize(lib, &tech, &CharConfig::fast()).expect("characterization succeeds")
    });
    (lib, tlib, tech)
}

fn bytes(paths: &[TruePath]) -> String {
    serde_json::to_string(paths).expect("paths serialize")
}

proptest! {
    /// For every fitted model in the library, the compiled kernel matches
    /// `PolyModel::eval` within 1e-9 (it is bit-identical by construction;
    /// the tolerance guards the property independently of that stronger
    /// claim) over random `(Fo, t_in)` — including out-of-range points,
    /// which both paths clamp identically.
    #[test]
    fn compiled_kernel_matches_interpreted_eval(
        fo in 0.05f64..60.0,
        t_in in 1.0f64..900.0,
        corner_sel in 0u8..2,
    ) {
        let (lib, tlib, tech) = setup();
        let corner = if corner_sel == 1 {
            Corner { temperature: 0.0, vdd: 1.05 * tech.vdd }
        } else {
            Corner::nominal(&tech)
        };
        let kernel = tlib.compile_corner(corner);
        for cell in lib.iter() {
            let ct = tlib.cell(cell.id());
            for pin in 0..cell.num_pins() {
                for v in 0..ct.num_vectors(pin) {
                    let arc = kernel.arc_id(cell.id(), pin, v);
                    for edge in Edge::BOTH {
                        let (dk, sk) = kernel.eval(arc, edge, fo, t_in);
                        let (di, si) =
                            tlib.delay_slew(cell.id(), pin, v, edge, fo, t_in, corner);
                        prop_assert!(
                            (dk - di).abs() <= 1e-9,
                            "{}/{pin}/{v} {edge:?}: delay {dk} vs {di}",
                            cell.name()
                        );
                        prop_assert!(
                            (sk - si).abs() <= 1e-9,
                            "{}/{pin}/{v} {edge:?}: slew {sk} vs {si}",
                            cell.name()
                        );
                    }
                }
            }
        }
    }
}

fn run(
    nl: &sta_netlist::Netlist,
    lib: &Library,
    tlib: &TimingLibrary,
    cfg: &EnumerationConfig,
    kernels: bool,
    threads: usize,
) -> (Vec<TruePath>, EnumerationStats) {
    let cfg = cfg
        .clone()
        .with_compiled_kernels(kernels)
        .with_threads(threads);
    PathEnumerator::new(nl, lib, tlib, cfg).run()
}

/// A compiled run reproduces the interpreted engine's path set — nodes,
/// arcs, witness vectors, and every arrival/slew bit — serially and at
/// several thread counts, in full enumeration and N-worst mode.
#[test]
fn compiled_runs_reproduce_interpreted_path_sets() {
    let (lib, tlib, tech) = setup();
    for (name, nworst) in [("c17", None), ("sample", None), ("c432", Some(20))] {
        let nl = catalog::mapped(name, lib).unwrap().unwrap();
        let mut cfg = EnumerationConfig::new(Corner::nominal(&tech));
        if let Some(n) = nworst {
            cfg = cfg.with_n_worst(n);
        }
        let (interpreted, int_stats) = run(&nl, lib, tlib, &cfg, false, 1);
        assert!(
            !interpreted.is_empty(),
            "{name}: interpreted run found paths"
        );
        assert_eq!(int_stats.compiled_evals, 0);
        assert!(int_stats.fallback_evals > 0);
        let reference = bytes(&interpreted);
        for threads in [1, 2, 3] {
            let (compiled, stats) = run(&nl, lib, tlib, &cfg, true, threads);
            assert_eq!(
                bytes(&compiled),
                reference,
                "{name}: compiled x{threads} diverged from the interpreted engine"
            );
            assert_eq!(stats.fallback_evals, 0, "{name}: kernel table not used");
            assert!(stats.compiled_evals > 0, "{name}: kernel table not used");
        }
    }
}

/// The kernel/scratch stats counters are wired through both engines:
/// compiled and interpreted runs take the same decisions, and the scratch
/// high-water marks are plausible (path HWM covers the longest path).
#[test]
fn kernel_stats_are_consistent() {
    let (lib, tlib, tech) = setup();
    let nl = catalog::mapped("c17", lib).unwrap().unwrap();
    let cfg = EnumerationConfig::new(Corner::nominal(&tech));
    let (paths, compiled) = run(&nl, lib, tlib, &cfg, true, 1);
    let (_, interpreted) = run(&nl, lib, tlib, &cfg, false, 1);
    assert_eq!(compiled.decisions, interpreted.decisions);
    assert_eq!(compiled.compiled_evals, interpreted.fallback_evals);
    assert_eq!(compiled.scratch_path_hwm, interpreted.scratch_path_hwm);
    let longest = paths.iter().map(|p| p.nodes.len()).max().unwrap();
    assert!(compiled.scratch_path_hwm >= longest);
    assert!(compiled.scratch_side_hwm > 0, "c17 has side inputs");
}
