//! Observability golden tests.
//!
//! The `sta-obs` layer makes two hard promises:
//!
//! 1. **Determinism of the record**: the manifest's span tree and the set
//!    of registered metric names are *structurally identical* across
//!    thread counts — only durations and metric values may differ. This
//!    is what makes manifests diffable between runs.
//! 2. **Non-interference**: attaching an observer (with or without a
//!    progress tap) leaves the enumerated path set **byte-identical** to
//!    an unobserved run, at every thread count.
//!
//! The characterization cache is pre-warmed once so every observed run
//! takes the cache-hit path: a cache miss adds per-cell `cell` spans
//! under `characterize`, which would (correctly) make a cold and a warm
//! run structurally different.

use std::path::PathBuf;
use std::sync::OnceLock;

use serde::Value;
use sta_cells::Technology;
use sta_charlib::CharConfig;
use sta_core::{AnalysisRequest, CertificateSet};
use sta_obs::{Observer, RunManifest};

/// Warm characterization cache shared by every test in this file.
fn warm_cache_dir() -> PathBuf {
    static WARMED: OnceLock<PathBuf> = OnceLock::new();
    WARMED
        .get_or_init(|| {
            let dir = std::env::temp_dir().join("sta-obs-golden-cache");
            let lib = sta_cells::Library::standard();
            sta_charlib::characterize_cached(&lib, &Technology::n90(), &CharConfig::fast(), &dir)
                .expect("characterization succeeds");
            dir
        })
        .clone()
}

fn request(circuit: &str) -> AnalysisRequest {
    AnalysisRequest::new(circuit)
        .char_config(CharConfig::fast())
        .cache_dir(warm_cache_dir())
}

/// Serialized certificate set — the CLI's output artifact, so equality
/// here is byte-for-byte equality of what a consumer reads.
fn certificate_bytes(outcome: &sta_core::AnalysisOutcome) -> String {
    CertificateSet::new(&outcome.netlist, outcome.input_slew, outcome.paths.clone()).to_json()
}

#[test]
fn span_tree_and_metric_names_are_identical_across_thread_counts() {
    let mut goldens: Vec<(Vec<String>, Vec<String>)> = Vec::new();
    for threads in [1, 4] {
        let obs = Observer::enabled();
        let outcome = request("c17")
            .threads(threads)
            .observer(obs.clone())
            .run()
            .expect("c17 analyzes");
        assert!(!outcome.paths.is_empty());
        drop(outcome);
        let structure: Vec<String> = obs.span_tree().iter().map(|n| n.structure()).collect();
        let names = obs.metrics_snapshot().metric_names();
        goldens.push((structure, names));
    }
    let (s1, n1) = &goldens[0];
    let (s4, n4) = &goldens[1];
    assert_eq!(s1, s4, "span tree structure must not depend on threads");
    assert_eq!(n1, n4, "metric name set must not depend on threads");
    assert_eq!(
        s1,
        &vec!["analysis(load,characterize,compile,enumerate)".to_string()],
        "the facade's phase skeleton is the golden span tree"
    );
}

#[test]
fn observation_and_progress_leave_certificates_byte_identical() {
    for circuit in ["c17", "c432"] {
        let baseline = request(circuit)
            .n_worst(Some(50))
            .run()
            .expect("baseline analyzes");
        let golden = certificate_bytes(&baseline);
        for threads in [1, 2, 4] {
            let obs = Observer::enabled();
            // Install the progress tap exactly as `--progress` does; the
            // heartbeat thread only reads it, so the tap itself is the
            // part that must not perturb the search.
            obs.install_progress()
                .expect("enabled observer has progress");
            let observed = request(circuit)
                .n_worst(Some(50))
                .threads(threads)
                .observer(obs.clone())
                .run()
                .expect("observed run analyzes");
            assert_eq!(
                golden,
                certificate_bytes(&observed),
                "{circuit}: observed {threads}-thread run must be byte-identical"
            );
            let counters = obs.metrics_snapshot();
            let names = counters.metric_names();
            assert!(
                names.iter().any(|n| n == "counter:enumerate.paths"),
                "{circuit}: engine metrics recorded ({names:?})"
            );
        }
    }
}

#[test]
fn manifest_round_trips_and_validates_against_checked_in_schema() {
    let obs = Observer::enabled();
    let outcome = request("c17")
        .observer(obs.clone())
        .run()
        .expect("c17 analyzes");
    let digest = sta_obs::digest_string(certificate_bytes(&outcome).as_bytes());
    drop(outcome);
    let manifest = RunManifest::new(
        vec!["analyze".to_string(), "c17".to_string()],
        [("circuit".to_string(), "c17".to_string())]
            .into_iter()
            .collect(),
        &obs,
        Some(digest),
    );
    let text = manifest.to_json();
    let parsed = RunManifest::from_json(&text).expect("manifest round-trips");
    assert_eq!(parsed, manifest);

    let schema_text = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("docs/manifest.schema.json"),
    )
    .expect("schema is checked in");
    let schema: Value = serde_json::from_str(&schema_text).expect("schema parses");
    let doc: Value = serde_json::from_str(&text).expect("manifest parses as a value");
    sta_obs::schema::validate(&schema, &doc).expect("manifest conforms to the schema");
}

#[test]
fn progress_counters_track_the_run() {
    let obs = Observer::enabled();
    let progress = obs.install_progress().expect("progress installs");
    let outcome = request("c17").observer(obs).run().expect("c17 analyzes");
    assert_eq!(
        progress.paths.load(std::sync::atomic::Ordering::Relaxed),
        outcome.paths.len() as u64,
        "the progress tap saw every emitted path"
    );
    let line = progress.line();
    assert!(line.starts_with("progress: paths="), "{line}");
}

#[test]
fn audit_metric_names_are_thread_count_invariant() {
    // The `--audit-flow` counters are pre-registered as a fixed set
    // before any audit rule can fire, so the registered metric-name set
    // is identical whether or not a rule found something — and across
    // thread counts, extending golden promise (1) to the audit layer.
    let mut expected: Vec<String> = sta_lint::audit_metric_names()
        .iter()
        .map(|n| format!("counter:{n}"))
        .collect();
    expected.sort();
    let mut per_thread: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 4] {
        let obs = Observer::enabled();
        sta_lint::register_audit_metrics(&obs);
        // An observed analysis mixes engine metrics into the same
        // registry; the audit.* subset must stay exactly the fixed set.
        let outcome = request("c17")
            .threads(threads)
            .observer(obs.clone())
            .run()
            .expect("c17 analyzes");
        assert!(!outcome.paths.is_empty());
        drop(outcome);
        let names: Vec<String> = obs
            .metrics_snapshot()
            .metric_names()
            .into_iter()
            .filter(|n| n.contains(":audit."))
            .collect();
        per_thread.push(names);
    }
    assert_eq!(
        per_thread[0], per_thread[1],
        "audit metric names must not depend on threads"
    );
    let mut got = per_thread.remove(0);
    got.sort();
    assert_eq!(got, expected, "the audit counter set is the fixed set");
}
