//! Exit-code contract of the `sta-repro` binary.
//!
//! The CLI promises stable, format-independent exit codes: `0` success,
//! `1` findings (the tool worked, the design didn't), `2` usage or
//! operational error. This file runs the real binary and pins each
//! category in both output formats.
//!
//! The findings leg uses `slack --required`, the one findings category a
//! well-formed input can reach from the command line: `lint` findings
//! need a defective netlist or library, and the `.bench` parser and
//! technology mapper reject or prune every malformed construct before
//! the lint rules see it (fault-injected lint findings are pinned in
//! `crates/lint/tests/fault_injection.rs` instead).

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sta-repro"))
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = bin().args(args).output().expect("binary runs");
    (
        out.status.code().expect("binary exits normally"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A tiny well-formed `.bench` file on disk (exercises the lint
/// file-path circuit support end to end).
fn tiny_bench() -> PathBuf {
    let path = std::env::temp_dir().join("sta-cli-exit-codes-tiny.bench");
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n")
        .expect("temp bench writes");
    path
}

#[test]
fn exit_codes_are_stable_and_format_independent() {
    let bench = tiny_bench();
    let bench = bench.to_str().unwrap();

    // Every analysis invocation uses the coarse characterization grid so
    // a cold cache costs seconds, not minutes (the grid never changes
    // exit-code behavior).

    // 0 — success, both formats, catalog name and .bench path alike.
    for format in ["human", "json"] {
        let (code, stdout, stderr) = run(&["lint", bench, "--format", format, "--fast-char"]);
        assert_eq!(code, 0, "lint {bench} --format {format}: {stdout}{stderr}");
        if format == "json" {
            assert!(
                stdout.contains("\"diagnostics\""),
                "json body expected: {stdout}"
            );
        }
    }

    // 1 — findings: an impossible explicit slack requirement is violated
    // at every endpoint, in both formats.
    for format in ["human", "json"] {
        let (code, stdout, stderr) = run(&[
            "slack",
            "c17",
            "--required",
            "1",
            "--format",
            format,
            "--fast-char",
        ]);
        assert_eq!(
            code, 1,
            "slack --required 1 --format {format}: {stdout}{stderr}"
        );
        assert!(
            stderr.contains("violated"),
            "findings are reported on stderr: {stderr}"
        );
    }

    // 2 — usage and operational errors, independent of format.
    let (code, _, stderr) = run(&["lint", "--format", "yaml"]);
    assert_eq!(code, 2, "unknown format: {stderr}");
    let (code, _, stderr) = run(&["frobnicate"]);
    assert_eq!(code, 2, "unknown command: {stderr}");
    let (code, _, stderr) = run(&["lint", "--audit-floww"]);
    assert_eq!(code, 2, "unknown flag: {stderr}");
    let (code, _, stderr) = run(&["lint", "/nonexistent/missing.bench"]);
    assert_eq!(code, 2, "missing bench file: {stderr}");
    let (code, _, stderr) = run(&["validate-manifest", "/nonexistent/missing.json"]);
    assert_eq!(code, 2, "missing manifest: {stderr}");
}
