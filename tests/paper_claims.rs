//! The paper's headline claims, certified end-to-end by `cargo test`
//! (fast-characterization scale; the full-scale numbers live in
//! EXPERIMENTS.md).

use std::sync::OnceLock;

use sta_baseline::{run_baseline, BaselineConfig, Classification};
use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize, CharConfig, TimingLibrary};
use sta_circuits::catalog;
use sta_core::{EnumerationConfig, PathEnumerator, TruePath};

fn setup() -> (&'static Library, &'static TimingLibrary, Technology) {
    static LIB: OnceLock<Library> = OnceLock::new();
    static TLIB: OnceLock<TimingLibrary> = OnceLock::new();
    let tech = Technology::n65();
    let lib = LIB.get_or_init(Library::standard);
    let tlib = TLIB.get_or_init(|| {
        characterize(lib, &tech, &CharConfig::fast()).expect("characterization succeeds")
    });
    (lib, tlib, tech)
}

/// §II: complex gates have multiple sensitization vectors per input, and
/// the characterized per-vector delays differ measurably.
#[test]
fn claim_vector_dependent_delay_survives_characterization() {
    let (lib, tlib, tech) = setup();
    let corner = Corner::nominal(&tech);
    let ao22 = lib.cell_by_name("AO22").expect("standard cell");
    let ct = tlib.cell(ao22.id());
    let d = |case: usize| ct.variant(0, case).fall.eval(4.0, 60.0, corner).0;
    let (d1, d2, d3) = (d(0), d(1), d(2));
    assert!(d2 > d1 * 1.05, "case2 {d2} vs case1 {d1}");
    assert!(d2 > d3, "case2 is the slowest fall vector");
}

/// §IV.B + Table 5: the single-pass tool reports one path per vector; the
/// two-step baseline reports one vector per path and it is not the worst.
#[test]
fn claim_single_pass_tool_finds_what_the_baseline_misses() {
    let (lib, tlib, _tech) = setup();
    let nl = catalog::mapped("sample", lib).unwrap().unwrap();
    let corner = Corner::nominal(&tlib.tech);
    let (paths, _) = PathEnumerator::new(&nl, lib, tlib, EnumerationConfig::new(corner)).run();
    let n1 = nl.net_by_name("N1").unwrap();
    let through: Vec<&TruePath> = paths
        .iter()
        .filter(|p| p.source == n1 && p.arcs.len() == 4)
        .collect();
    assert!(through.len() >= 3, "one path per AO22 vector");
    let report = run_baseline(&nl, lib, tlib, &BaselineConfig::new(50, 1000));
    let matching_true = report
        .paths
        .iter()
        .filter(|bp| {
            bp.sens.classification == Classification::True && bp.path.nodes == through[0].nodes
        })
        .count();
    assert_eq!(matching_true, 1, "baseline reports the path exactly once");
    // The developed tool's worst vector for this path beats the baseline's
    // (single, easiest) one.
    let worst = through
        .iter()
        .map(|p| p.worst_arrival())
        .fold(f64::NEG_INFINITY, f64::max);
    let best = through
        .iter()
        .map(|p| p.worst_arrival())
        .fold(f64::INFINITY, f64::min);
    assert!(worst > best, "vector choice changes the reported delay");
}

/// §V (Table 6 semantics): every baseline-true verdict is corroborated by
/// the developed tool, and the developed tool never emits a path the
/// two-pattern check falsifies (soundness, checked on c432).
#[test]
fn claim_tools_agree_on_what_is_true() {
    let (lib, tlib, _tech) = setup();
    let nl = catalog::mapped("c432", lib).unwrap().unwrap();
    let corner = Corner::nominal(&tlib.tech);
    let mut cfg = EnumerationConfig::new(corner);
    cfg.max_decisions = 20_000_000;
    let (paths, stats) = PathEnumerator::new(&nl, lib, tlib, cfg).run();
    assert!(!stats.truncated, "c432 enumerates completely: {stats:?}");
    let report = run_baseline(&nl, lib, tlib, &BaselineConfig::new(100, 2000));
    for bp in &report.paths {
        if bp.sens.classification == Classification::True {
            assert!(
                paths.iter().any(|p| p.nodes == bp.path.nodes),
                "baseline-true path missing from the complete enumeration"
            );
        }
    }
}

/// §IV.A: the dual-value system computes both launch polarities in one
/// traversal — single-vector circuits (c17) therefore report exactly two
/// input vectors per structural path.
#[test]
fn claim_dual_value_tracing_counts_both_polarities() {
    let (lib, tlib, _tech) = setup();
    let nl = catalog::mapped("c17", lib).unwrap().unwrap();
    let corner = Corner::nominal(&tlib.tech);
    let (paths, stats) = PathEnumerator::new(&nl, lib, tlib, EnumerationConfig::new(corner)).run();
    assert_eq!(paths.len(), 11);
    assert_eq!(stats.input_vectors, 22);
    for p in &paths {
        assert!(p.rise.is_some() && p.fall.is_some());
        let (r, f) = (p.rise.as_ref().unwrap(), p.fall.as_ref().unwrap());
        assert_eq!(r.final_edge, f.final_edge.invert(), "NAND chain parity");
    }
}

/// Launch-edge asymmetry: rise and fall arrivals of the same path differ
/// (different device networks drive each edge) — the reason the paper
/// tracks them separately.
#[test]
fn claim_rise_fall_asymmetry() {
    let (lib, tlib, _tech) = setup();
    let nl = catalog::mapped("c17", lib).unwrap().unwrap();
    let corner = Corner::nominal(&tlib.tech);
    let (paths, _) = PathEnumerator::new(&nl, lib, tlib, EnumerationConfig::new(corner)).run();
    let asym = paths.iter().filter(|p| {
        let (r, f) = (p.rise.as_ref().unwrap(), p.fall.as_ref().unwrap());
        (r.arrival - f.arrival).abs() > 0.5
    });
    assert!(asym.count() > 0, "some path must show rise/fall asymmetry");
}
