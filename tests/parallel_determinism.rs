//! Parallel enumeration is byte-identical to the serial engine.
//!
//! The work-stealing pool (see `sta-core`'s `parallel` module) claims
//! that `PathEnumerator::run` produces the same path list at any thread
//! count, and that in full enumeration even the `run_with` *stream* is
//! identical. These tests pin both claims on catalog circuits and on
//! randomly generated logic.

use std::sync::OnceLock;

use proptest::prelude::*;

use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize, CharConfig, TimingLibrary};
use sta_circuits::randlogic::{random_logic, RandParams};
use sta_circuits::{catalog, map_netlist};
use sta_core::{EnumerationConfig, EnumerationStats, PathEnumerator, TruePath};
use sta_netlist::Netlist;

fn setup() -> (&'static Library, &'static TimingLibrary, Technology) {
    static LIB: OnceLock<Library> = OnceLock::new();
    static TLIB: OnceLock<TimingLibrary> = OnceLock::new();
    let tech = Technology::n90();
    let lib = LIB.get_or_init(Library::standard);
    let tlib = TLIB.get_or_init(|| {
        characterize(lib, &tech, &CharConfig::fast()).expect("characterization succeeds")
    });
    (lib, tlib, tech)
}

fn run_at(
    nl: &Netlist,
    lib: &Library,
    tlib: &TimingLibrary,
    cfg: &EnumerationConfig,
    threads: usize,
) -> (Vec<TruePath>, EnumerationStats) {
    let cfg = cfg.clone().with_threads(threads);
    PathEnumerator::new(nl, lib, tlib, cfg).run()
}

/// Byte-level equality via the serialized form — stricter than
/// `PartialEq` in that it also covers field ordering and formatting of
/// every float.
fn bytes(paths: &[TruePath]) -> String {
    serde_json::to_string(paths).expect("paths serialize")
}

/// Full enumeration: identical path lists at 1/2/4 threads on catalog
/// circuits, and the `run_with` stream itself is in serial order.
#[test]
fn full_enumeration_is_byte_identical_across_thread_counts() {
    let (lib, tlib, tech) = setup();
    for name in ["c17", "sample"] {
        let nl = catalog::mapped(name, lib).unwrap().unwrap();
        let cfg = EnumerationConfig::new(Corner::nominal(&tech));
        let (serial, serial_stats) = run_at(&nl, lib, tlib, &cfg, 1);
        assert!(!serial.is_empty(), "{name}: serial run found paths");
        for threads in [2, 4] {
            let (par, par_stats) = run_at(&nl, lib, tlib, &cfg, threads);
            assert_eq!(
                bytes(&serial),
                bytes(&par),
                "{name}: {threads}-thread run() differs from serial"
            );
            // Search effort is schedule-independent in full enumeration;
            // only the cache-hit counters depend on how the roots were
            // partitioned over workers.
            let mut normalized = par_stats;
            normalized.justify_cache_hits = serial_stats.justify_cache_hits;
            normalized.model_cache_hits = serial_stats.model_cache_hits;
            assert_eq!(serial_stats, normalized, "{name}: {threads}-thread stats");

            // The streamed emission order equals the serial order, not
            // just the sorted result.
            let mut serial_stream = Vec::new();
            PathEnumerator::new(&nl, lib, tlib, cfg.clone()).run_with(|p| serial_stream.push(p));
            let mut par_stream = Vec::new();
            PathEnumerator::new(&nl, lib, tlib, cfg.clone().with_threads(threads))
                .run_with(|p| par_stream.push(p));
            assert_eq!(
                bytes(&serial_stream),
                bytes(&par_stream),
                "{name}: {threads}-thread run_with stream differs"
            );
        }
    }
}

/// N-worst mode: the shared atomic bound prunes differently per
/// schedule, but the final result is still byte-identical.
#[test]
fn n_worst_is_byte_identical_across_thread_counts() {
    let (lib, tlib, tech) = setup();
    for (name, n) in [("c17", 3), ("c432", 40)] {
        let nl = catalog::mapped(name, lib).unwrap().unwrap();
        let cfg = EnumerationConfig::new(Corner::nominal(&tech)).with_n_worst(n);
        let (serial, _) = run_at(&nl, lib, tlib, &cfg, 1);
        assert_eq!(serial.len(), n, "{name}: expected {n} worst paths");
        for threads in [2, 4] {
            let (par, _) = run_at(&nl, lib, tlib, &cfg, threads);
            assert_eq!(
                bytes(&serial),
                bytes(&par),
                "{name}: {threads}-thread n-worst run differs from serial"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random mapped logic: a 2-thread full enumeration equals serial.
    #[test]
    fn random_logic_parallel_matches_serial(
        seed in 0u64..1_000,
        gates in 10usize..40,
        inputs in 3usize..6,
    ) {
        let (lib, tlib, tech) = setup();
        let params = RandParams {
            name: format!("rand_{seed}"),
            inputs,
            outputs: 2,
            gates,
            seed,
            window: 8,
        };
        let raw = random_logic(&params);
        let nl = map_netlist(&raw, lib).expect("mapping succeeds");
        let cfg = EnumerationConfig::new(Corner::nominal(&tech));
        let (serial, _) = run_at(&nl, lib, tlib, &cfg, 1);
        let (par, _) = run_at(&nl, lib, tlib, &cfg, 2);
        prop_assert_eq!(bytes(&serial), bytes(&par), "seed {}", seed);
    }
}
