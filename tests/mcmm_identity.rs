//! MCMM batch identity oracles.
//!
//! The batch engine (`sta-core`'s `mcmm` module) shares the netlist
//! load, characterization, logic schedule, and per-corner kernels across
//! scenarios, and fans the scenario jobs over a work-stealing pool.
//! None of that sharing may change a single byte of any scenario's
//! result: these tests pin each scenario's `CertificateSet` against an
//! independent single-scenario run at batch-thread counts 1/2/4, and the
//! merged slack report against submission-order permutation.

use std::path::PathBuf;

use proptest::prelude::*;

use sta_cells::{Library, Technology};
use sta_charlib::CharConfig;
use sta_circuits::map_netlist;
use sta_circuits::randlogic::{random_logic, RandParams};
use sta_core::{AnalysisRequest, CertificateSet, CornerDef, Mode, Scenario};

fn cache_dir() -> PathBuf {
    // Share one fast-config cache across the identity tests.
    std::env::temp_dir().join("sta-mcmm-identity-cache")
}

fn request(circuit: &str) -> AnalysisRequest {
    AnalysisRequest::new(circuit)
        .char_config(CharConfig::fast())
        .cache_dir(cache_dir())
        .n_worst(Some(10))
}

/// The 2-corner × 2-mode matrix the tests analyze: nominal and slow
/// 90 nm, unconstrained and a 400 ps clock.
fn matrix() -> Vec<Scenario> {
    let corners = vec![
        CornerDef::nominal(Technology::n90()),
        CornerDef::parse("slow", &Technology::n90()).expect("named corner parses"),
    ];
    let modes = vec![
        Mode::unconstrained(),
        Mode::with_sdc("func", "create_clock -period 400\n"),
    ];
    Scenario::matrix(&corners, &modes)
}

/// Every scenario of a batch is byte-identical (certificate JSON) to an
/// independent single-scenario run, at any batch-thread count.
#[test]
fn batch_certificates_equal_independent_runs_at_any_thread_count() {
    let set = matrix();
    for circuit in ["c17", "c432"] {
        // The independent oracles, one per scenario.
        let singles: Vec<String> = set
            .iter()
            .map(|s| {
                let one = request(circuit).scenario(s.clone()).run().unwrap();
                CertificateSet::new(&one.netlist, one.input_slew, one.paths).to_json()
            })
            .collect();
        let mut merged_at_1 = None;
        for batch_threads in [1usize, 2, 4] {
            let batch = request(circuit)
                .scenarios(set.clone())
                .batch_threads(batch_threads)
                .run_batch()
                .unwrap();
            assert_eq!(batch.scenarios.len(), set.len());
            for (i, s) in set.iter().enumerate() {
                assert_eq!(
                    batch.certificates(i).to_json(),
                    singles[i],
                    "{circuit} {} at {batch_threads} batch threads",
                    s.name()
                );
            }
            // The merged report is thread-count-invariant too.
            let merged = batch.merged.to_json();
            match &merged_at_1 {
                None => merged_at_1 = Some(merged),
                Some(first) => assert_eq!(
                    first, &merged,
                    "{circuit}: merged report differs at {batch_threads} batch threads"
                ),
            }
        }
    }
}

/// The merged report is canonical in the scenario *set*: submitting the
/// scenarios in reverse order yields the same bytes.
#[test]
fn merged_report_is_invariant_under_submission_order() {
    let set = matrix();
    let forward = request("c17").scenarios(set.clone()).run_batch().unwrap();
    let mut reversed_set = set;
    reversed_set.reverse();
    let reversed = request("c17")
        .scenarios(reversed_set)
        .batch_threads(2)
        .run_batch()
        .unwrap();
    assert_eq!(forward.merged, reversed.merged);
    assert_eq!(forward.merged.to_json(), reversed.merged.to_json());
    assert_eq!(
        forward.merged.endpoints.len(),
        forward.netlist.outputs().len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random mapped logic through the full 2×2 matrix: batch equals
    /// the four independent runs, with the netlist supplied directly
    /// (the daemon's ECO path) rather than resolved from the catalog.
    #[test]
    fn random_logic_batch_matches_singles(
        seed in 0u64..1_000,
        gates in 10usize..40,
        inputs in 3usize..6,
    ) {
        let lib = Library::standard();
        let raw = random_logic(&RandParams {
            name: format!("mcmm_{seed}"),
            inputs,
            outputs: 2,
            gates,
            seed,
            window: 8,
        });
        let nl = map_netlist(&raw, &lib).expect("mapping succeeds");
        let set = matrix();
        let batch = request("mcmm")
            .with_netlist(nl.clone())
            .scenarios(set.clone())
            .batch_threads(2)
            .run_batch()
            .unwrap();
        for (i, s) in set.iter().enumerate() {
            let one = request("mcmm")
                .with_netlist(nl.clone())
                .scenario(s.clone())
                .run()
                .unwrap();
            prop_assert_eq!(
                batch.certificates(i).to_json(),
                CertificateSet::new(&one.netlist, one.input_slew, one.paths).to_json(),
                "seed {} scenario {}",
                seed,
                s.name()
            );
        }
    }
}
