//! AI-family audit rules: certificates against the interval abstract
//! interpretation ([`crate::interval`]).
//!
//! * **AI001** — every arrival a certificate claims (the endpoint arrival
//!   and each intermediate prefix sum of its stage delays) lies inside
//!   the *single-source* abstract interval of the corresponding net.
//! * **AI002** — the structural static bound (single-point evaluation at
//!   `prune_margin`) dominates the all-sources interval hull, and the
//!   hull itself is well-formed. This is the cross-check that keeps the
//!   search's pruning bound sound with respect to the swept envelope.
//! * **AI003** — every per-stage gate delay lies inside its swept
//!   two-sided arc interval.
//! * **AI004** — the endpoint slew lies inside the abstract slew
//!   interval.
//!
//! All rules are independent oracles: they reuse the enumeration's arc
//! models but never its search state, so a PR-7-style soundness bug in
//! the engine surfaces here as a lint error instead of a multi-hour
//! identity bisect.

use crate::diag::{Diagnostic, RuleCode};
use crate::interval::{arrival_prefix, for_source, NodeIntervals, ENCLOSURE_TOL};
use sta_core::{ArcIntervals, CertificateSet, StaticTiming};
use sta_netlist::{NetId, Netlist};
use std::collections::HashMap;

/// What the certificate audit found, with enough accounting for the CLI
/// and daemon replies (and the `audit.*` metrics).
#[derive(Clone, Debug, Default)]
pub struct FlowAuditOutcome {
    /// The findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Launch timings examined (a path contributes one per polarity).
    pub certificates: usize,
    /// Launch timings fully enclosed by their intervals.
    pub enclosed: usize,
    /// Distinct sources whose interval tables were computed.
    pub sources_checked: usize,
}

/// Audits every certificate of `certs` against single-source abstract
/// intervals (AI001/AI003/AI004). Interval tables are computed once per
/// distinct source and shared across that source's paths.
pub fn audit_certificates(
    nl: &Netlist,
    circuit: &str,
    arcs: &ArcIntervals,
    certs: &CertificateSet,
    input_slew: f64,
) -> FlowAuditOutcome {
    let mut out = FlowAuditOutcome::default();
    let mut per_source: HashMap<NetId, NodeIntervals> = HashMap::new();
    for (pi, path) in certs.paths.iter().enumerate() {
        let iv = per_source
            .entry(path.source)
            .or_insert_with(|| for_source(nl, arcs, path.source, input_slew));
        for timing in [path.rise.as_ref(), path.fall.as_ref()]
            .into_iter()
            .flatten()
        {
            out.certificates += 1;
            let mut clean = true;
            let loc = format!("{circuit}:{}#{pi}", nl.net_label(path.endpoint()));

            // AI003 — each stage delay inside its swept arc interval.
            if timing.gate_delays.len() == path.arcs.len() {
                for (k, (arc, &d)) in path.arcs.iter().zip(&timing.gate_delays).enumerate() {
                    let a = arcs.get(arc.gate, arc.pin, arc.vector);
                    if d < a.delay_lo - ENCLOSURE_TOL || d > a.delay_hi + ENCLOSURE_TOL {
                        clean = false;
                        out.diagnostics.push(Diagnostic::new(
                            RuleCode::AiArcDelayOutsideBound,
                            loc.clone(),
                            format!(
                                "{:?} launch stage {k}: delay {d:.6} ps outside swept arc \
                                 interval [{:.6}, {:.6}]",
                                timing.launch_edge, a.delay_lo, a.delay_hi
                            ),
                        ));
                    }
                }
            }

            // AI001 — endpoint arrival and every intermediate prefix sum
            // inside the single-source node intervals.
            let prefix = arrival_prefix(path, &timing.gate_delays);
            for (i, (&node, &t)) in path.nodes.iter().zip(&prefix).enumerate() {
                if !iv.contains_arrival(node, t) {
                    clean = false;
                    out.diagnostics.push(Diagnostic::new(
                        RuleCode::AiCertOutsideInterval,
                        loc.clone(),
                        format!(
                            "{:?} launch node {i} ({}): arrival {t:.6} ps outside abstract \
                             interval [{:.6}, {:.6}]",
                            timing.launch_edge,
                            nl.net_label(node),
                            iv.arrival_lo[node.index()],
                            iv.arrival_hi[node.index()]
                        ),
                    ));
                }
            }
            let end = path.endpoint();
            if !iv.contains_arrival(end, timing.arrival) {
                clean = false;
                out.diagnostics.push(Diagnostic::new(
                    RuleCode::AiCertOutsideInterval,
                    loc.clone(),
                    format!(
                        "{:?} launch endpoint arrival {:.6} ps outside abstract interval \
                         [{:.6}, {:.6}]",
                        timing.launch_edge,
                        timing.arrival,
                        iv.arrival_lo[end.index()],
                        iv.arrival_hi[end.index()]
                    ),
                ));
            }

            // AI004 — endpoint slew inside the abstract slew interval.
            if !iv.contains_slew(end, timing.slew) {
                clean = false;
                out.diagnostics.push(Diagnostic::new(
                    RuleCode::AiSlewOutsideInterval,
                    loc.clone(),
                    format!(
                        "{:?} launch endpoint slew {:.6} ps outside abstract slew interval \
                         [{:.6}, {:.6}]",
                        timing.launch_edge,
                        timing.slew,
                        iv.slew_lo[end.index()],
                        iv.slew_hi[end.index()]
                    ),
                ));
            }

            if clean {
                out.enclosed += 1;
            }
        }
    }
    out.sources_checked = per_source.len();
    out
}

/// AI002: the interval hull must be well-formed (lo ≤ hi wherever events
/// exist, bottom elsewhere stays untouched) and the structural static
/// bound — computed with the search's own `prune_margin` — must dominate
/// the hull's upper arrival on every net. A violation means the pruning
/// bound the N-worst search trusts could cut a true path the swept
/// envelope admits.
pub fn audit_structural_dominance(
    circuit: &str,
    nl: &Netlist,
    hull: &NodeIntervals,
    st: &StaticTiming,
) -> Vec<Diagnostic> {
    let mut ds = Vec::new();
    for net in 0..nl.num_nets() {
        let lo = hull.arrival_lo[net];
        let hi = hull.arrival_hi[net];
        if lo > hi {
            continue; // bottom — no events, nothing to dominate
        }
        let label = || format!("{circuit}:{}", nl.net_label(NetId::from_index(net)));
        if !lo.is_finite() || !hi.is_finite() || hull.slew_lo[net] > hull.slew_hi[net] {
            ds.push(Diagnostic::new(
                RuleCode::AiStructuralDominance,
                label(),
                format!(
                    "malformed hull interval: arrival [{lo:.6}, {hi:.6}], slew [{:.6}, {:.6}]",
                    hull.slew_lo[net], hull.slew_hi[net]
                ),
            ));
            continue;
        }
        if st.arrival[net] < hi - ENCLOSURE_TOL {
            ds.push(Diagnostic::new(
                RuleCode::AiStructuralDominance,
                label(),
                format!(
                    "structural arrival bound {:.6} ps below interval hull hi {hi:.6} ps",
                    st.arrival[net]
                ),
            ));
        }
    }
    ds
}

/// The fixed `audit.*` metric-name set, identical at every thread count
/// (the PR 5 golden-test discipline): pre-registering the full set keeps
/// `metric_names()` thread-count-invariant even when a run fires no rule.
pub fn audit_metric_names() -> &'static [&'static str] {
    &[
        "audit.flow_runs",
        "audit.circuits",
        "audit.certificates_checked",
        "audit.certificates_enclosed",
        "audit.sources_checked",
        "audit.eco_samples",
        "audit.srv_exemplars",
        "audit.errors",
        "audit.warnings",
    ]
}

/// Pre-registers every `audit.*` counter at zero. Call once per audited
/// run *before* any rule fires so the metric-name set never depends on
/// which rules found something (or on the thread count).
pub fn register_audit_metrics(obs: &sta_obs::Observer) {
    if !obs.is_enabled() {
        return;
    }
    for name in audit_metric_names() {
        obs.counter(name).add(0);
    }
}

/// Fault injectors for the AI rule family. Mirrors the PR 4 discipline:
/// the input is cloned/owned by the caller, each injector breaks exactly
/// one invariant, and each maps to exactly one designated rule code.
pub mod inject {
    use sta_core::{CertificateSet, StaticTiming};

    /// Inflates the first launch timing's endpoint arrival far past any
    /// sound interval (AI001) without touching its stage delays.
    pub fn inflate_certificate_arrival(certs: &mut CertificateSet) -> bool {
        for p in &mut certs.paths {
            if let Some(t) = p.rise.as_mut().or(p.fall.as_mut()) {
                t.arrival += 1.0e6;
                return true;
            }
        }
        false
    }

    /// Corrupts the first stage delay of the first launch timing so it
    /// leaves its swept arc interval (AI003) — and drags the downstream
    /// prefix sums with it (AI001 on intermediate nodes).
    pub fn corrupt_arc_delay(certs: &mut CertificateSet) -> bool {
        for p in &mut certs.paths {
            if let Some(t) = p.rise.as_mut().or(p.fall.as_mut()) {
                if let Some(d) = t.gate_delays.first_mut() {
                    *d += 1.0e6;
                    return true;
                }
            }
        }
        false
    }

    /// Drives the first launch timing's endpoint slew negative, outside
    /// any physical slew interval (AI004).
    pub fn corrupt_endpoint_slew(certs: &mut CertificateSet) -> bool {
        for p in &mut certs.paths {
            if let Some(t) = p.rise.as_mut().or(p.fall.as_mut()) {
                t.slew = -1.0e6;
                return true;
            }
        }
        false
    }

    /// Halves every structural arrival bound so it can no longer
    /// dominate the interval hull (AI002).
    pub fn shrink_structural_arrival(st: &mut StaticTiming) -> bool {
        let mut changed = false;
        for a in &mut st.arrival {
            if *a > 0.0 {
                *a *= 0.5;
                changed = true;
            }
        }
        changed
    }
}
