//! Static verification for the sensitization-vector-aware STA flow.
//!
//! The paper's single-pass enumeration (§IV.B) is only trustworthy if its
//! inputs are well-formed: an acyclic single-driver netlist, a
//! characterized library in which every (cell, pin, sensitization vector,
//! edge) arc has a fitted model, and polynomial models that behave sanely
//! over the region they were fitted on. This crate is the pre-flight
//! check for all of that, plus an *enumeration-independent* oracle that
//! re-certifies emitted paths by replaying their witness vectors through
//! the nine-valued forward simulator.
//!
//! Four rule families, each with stable diagnostic codes:
//!
//! * `NLxxx` — structural netlist checks ([`lint_netlist`]): combinational
//!   cycles (iterative SCC), undriven / dangling / multiply-driven nets,
//!   disconnected primary inputs and outputs, fanout-count outliers;
//! * `LIBxxx` — library semantic checks ([`lint_library`]):
//!   sensitization-vector coverage of every arc, polynomial-model sanity
//!   sampled on the fitting grid (non-negative delay/slew, monotonicity in
//!   fanout, compiled-kernel vs interpreted agreement), capacitance
//!   positivity;
//! * `PATHxxx` — path-certificate checking ([`verify_paths`]): replays
//!   each reported path's sensitization witness through
//!   `sta_logic::ImplicationEngine` and confirms the transition propagates
//!   edge-by-edge, then cross-checks the reported arrival against the
//!   stand-alone delay calculator;
//! * `SCHEDxxx` — compiled-schedule checks ([`check_schedule`]): the flat
//!   program driving the 64-lane bit-parallel simulator
//!   (`sta_logic::bitsim`) must be a valid topological evaluation order of
//!   the netlist, or every batch verdict downstream of it is meaningless;
//! * `LEARNxxx` — learned-nogood table audit ([`audit_nogoods`]):
//!   structural invariants of a run's final nogood store plus an
//!   independent re-justification of every stored refutation, so the one
//!   piece of cross-thread shared mutable state in the engine is checked
//!   by machinery that shares nothing with the learner;
//! * `AIxxx` — interval abstract-interpretation audit ([`audit_certificates`],
//!   [`audit_structural_dominance`]): a forward pass over the timing graph
//!   propagates sound `[lo, hi]` arrival/slew envelopes ([`interval`]) and
//!   every certificate, stage delay and pruning bound is checked against
//!   them;
//! * `ECOxxx` — incremental re-analysis audit ([`audit_dirty_sources`],
//!   [`audit_source_cache`]): the dirty-source over-approximation and the
//!   per-source splice invariants behind the serve daemon's ECO path;
//! * `SRVxxx` — serve protocol audit ([`check_serve_protocol`]): the
//!   checked-in request schema versus the daemon's self-described parser.
//!
//! Diagnostics carry a severity ([`Severity`]) and render either as
//! human-readable lines or as JSON ([`LintReport`]); a `--deny warnings`
//! style promotion turns warnings into errors for CI gating.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit_rules;
pub mod diag;
pub mod eco_rules;
pub mod interval;
pub mod learn_rules;
pub mod library_rules;
pub mod netlist_rules;
pub mod path_rules;
pub mod sched_rules;
pub mod serve_rules;

pub use audit_rules::{
    audit_certificates, audit_metric_names, audit_structural_dominance, register_audit_metrics,
    FlowAuditOutcome,
};
pub use diag::{Diagnostic, LintReport, RuleCode, Severity};
pub use eco_rules::{audit_dirty_sources, audit_source_cache};
pub use interval::{for_source, hull, NodeIntervals};
pub use learn_rules::{audit_nogoods, NogoodAuditOutcome};
pub use library_rules::{lint_library, LibLintConfig};
pub use netlist_rules::lint_netlist;
pub use path_rules::{verify_path, verify_paths, PathVerifyOutcome};
pub use sched_rules::{check_compiled_schedule, check_schedule};
pub use serve_rules::{check_serve_protocol, ProtocolExemplar, ProtocolSpec};
