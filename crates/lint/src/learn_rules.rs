//! `LEARNxxx`: audit of the learned-nogood table.
//!
//! The enumeration engine's nogood store (`sta_core::learn`) caches
//! *refutations*: sets of required net values claimed to admit no
//! primary-input witness under a given launch source. A wrong entry
//! cannot corrupt output silently — the engine verifies every clause at
//! learn time — but the store is the one piece of cross-thread shared
//! mutable state in the whole flow, so this module re-checks a run's
//! final table with machinery that shares nothing with the learner:
//!
//! * **LEARN001** — structural invariants of every table entry: the key
//!   names a real primary input, gate, pin and sensitization vector; the
//!   per-key list respects the store's cap; every clause is non-empty,
//!   within the literal cap, references only real nets, and carries no
//!   unconstrained (`XX`) literal (an `XX` literal would be vacuous and
//!   signals a broken extraction);
//! * **LEARN002** — semantic refutation replay: the launch source's
//!   transition and the clause's literals are re-asserted on a fresh
//!   [`ImplicationEngine`] under freshly recomputed toggle deltas and
//!   re-justified from scratch with the *public* justification API.
//!   Modeling the launch is load-bearing: without it the source net is
//!   unassignable under its own deltas and clauses supported through it
//!   replay as vacuously "refuted". If the search finds a witness, the
//!   stored "unsatisfiable" claim is false — an error. A budget abort
//!   proves nothing and is counted as skipped, not certified. An
//!   `Unsatisfiable` only certifies when the clause's transition support
//!   is *closed* (`sta_core::learn::support_is_closed`): if a
//!   toggle-capable cone net is unresolved in the replay state, the
//!   stable-only backward search cannot rule out a witness routing the
//!   launch through it, and the clause is reported as an error.

use std::collections::HashMap;

use sta_cells::Library;
use sta_core::learn::{support_is_closed, Nogood, NogoodKey, MAX_LITS, MAX_PER_KEY};
use sta_core::{justify, JustifyBudget, JustifyOutcome};
use sta_logic::{toggle_analysis, Dual, ImplicationEngine, Mask, Toggle, V9};
use sta_netlist::{GateKind, NetId, Netlist};

use crate::diag::{Diagnostic, RuleCode};

/// Decision budget of one LEARN002 replay. Matches the order of the
/// learner's own verification budget; clauses whose replay exceeds it
/// are reported as skipped rather than certified.
pub const REPLAY_DECISION_BUDGET: u64 = 8192;

/// Result of [`audit_nogoods`].
#[derive(Debug, Default)]
pub struct NogoodAuditOutcome {
    /// Clauses examined.
    pub checked: usize,
    /// Clauses that passed both the structural check and the replay.
    pub certified: usize,
    /// Clauses whose replay exhausted [`REPLAY_DECISION_BUDGET`]
    /// (neither certified nor flagged).
    pub skipped: usize,
    /// All findings, in table order.
    pub diagnostics: Vec<Diagnostic>,
}

impl NogoodAuditOutcome {
    /// Observability tap (`lint.learn.*` counters plus the shared
    /// per-rule `lint.rule.<CODE>` counters). Side-state only.
    pub fn record_metrics(&self, obs: &sta_obs::Observer) {
        if !obs.is_enabled() {
            return;
        }
        obs.counter("lint.learn.checked").add(self.checked as u64);
        obs.counter("lint.learn.certified")
            .add(self.certified as u64);
        obs.counter("lint.learn.skipped").add(self.skipped as u64);
        for d in &self.diagnostics {
            obs.counter(&format!("lint.rule.{}", d.rule.code())).inc();
        }
    }
}

/// Audits a nogood-table snapshot (as returned by
/// `sta_core::NogoodStore::snapshot`) against the netlist and library it
/// was learned on. `circuit` only labels diagnostic locations.
pub fn audit_nogoods(
    nl: &Netlist,
    lib: &Library,
    circuit: &str,
    snapshot: &[(NogoodKey, std::sync::Arc<Vec<Nogood>>)],
) -> NogoodAuditOutcome {
    let mut out = NogoodAuditOutcome::default();
    // Recomputed toggle analyses, one per launch source seen in the
    // table (the snapshot is sorted by source, so this is a warm cache).
    let mut deltas: HashMap<NetId, Vec<Toggle>> = HashMap::new();
    let mut eng = ImplicationEngine::new(nl, lib);
    for (key, list) in snapshot {
        let loc = |suffix: &str| {
            format!(
                "{circuit}:{}@g{}/pin{}/v{}{}",
                nl.net_label(key.src),
                key.gate.index(),
                key.pin,
                key.vector,
                suffix
            )
        };
        if list.len() > MAX_PER_KEY {
            out.diagnostics.push(Diagnostic::new(
                RuleCode::LearnMalformed,
                loc(""),
                format!("{} clauses under one key (cap {MAX_PER_KEY})", list.len()),
            ));
        }
        let structural = check_key(nl, lib, key);
        if let Some(msg) = structural {
            out.checked += list.len();
            out.diagnostics
                .push(Diagnostic::new(RuleCode::LearnMalformed, loc(""), msg));
            continue;
        }
        for (i, ng) in list.iter().enumerate() {
            out.checked += 1;
            let loc = loc(&format!("/clause{i}"));
            if let Some(msg) = check_clause(nl, ng) {
                out.diagnostics
                    .push(Diagnostic::new(RuleCode::LearnMalformed, loc, msg));
                continue;
            }
            let toggles = deltas
                .entry(key.src)
                .or_insert_with(|| toggle_analysis(nl, lib, key.src));
            match replay(&mut eng, nl, toggles, key.src, ng) {
                Replay::Refuted => out.certified += 1,
                Replay::Budget => out.skipped += 1,
                Replay::Witness => out.diagnostics.push(Diagnostic::new(
                    RuleCode::LearnRefutesSatisfiable,
                    loc,
                    format!(
                        "stored refutation ({} literals, {} analysis) is satisfiable: \
                         independent re-justification found a witness",
                        ng.lits.len(),
                        if ng.pol_r { "rising" } else { "falling" }
                    ),
                )),
                Replay::OpenSupport => out.diagnostics.push(Diagnostic::new(
                    RuleCode::LearnRefutesSatisfiable,
                    loc,
                    format!(
                        "stored refutation ({} literals, {} analysis) has open \
                         transition support: a toggle-capable cone net is \
                         unresolved in the replay state, so the justifier's \
                         refutation is not definitive there",
                        ng.lits.len(),
                        if ng.pol_r { "rising" } else { "falling" }
                    ),
                )),
            }
        }
    }
    out
}

/// LEARN001 key checks: every id the key names must exist, and the arc
/// it designates must be one the enumeration could actually consult.
fn check_key(nl: &Netlist, lib: &Library, key: &NogoodKey) -> Option<String> {
    if key.src.index() >= nl.num_nets() {
        return Some(format!("source net index {} out of range", key.src.index()));
    }
    if !nl.inputs().contains(&key.src) {
        return Some("source is not a primary input".to_string());
    }
    if key.gate.index() >= nl.num_gates() {
        return Some(format!("gate index {} out of range", key.gate.index()));
    }
    let gate = nl.gate(key.gate);
    if usize::from(key.pin) >= gate.inputs().len() {
        return Some(format!(
            "pin {} out of range (gate has {} inputs)",
            key.pin,
            gate.inputs().len()
        ));
    }
    let cell = match gate.kind() {
        GateKind::Cell(c) => c,
        GateKind::Prim(_) => return Some("keyed gate is an unmapped primitive".to_string()),
    };
    let n_vectors = lib.cell(cell).vectors_of(key.pin).len();
    if key.vector as usize >= n_vectors {
        return Some(format!(
            "vector {} out of range (arc has {n_vectors} sensitization vectors)",
            key.vector
        ));
    }
    None
}

/// LEARN001 clause checks: shape and literal sanity.
fn check_clause(nl: &Netlist, ng: &Nogood) -> Option<String> {
    if ng.lits.is_empty() {
        return Some("empty clause (refutes nothing)".to_string());
    }
    if ng.lits.len() > MAX_LITS {
        return Some(format!("{} literals (cap {MAX_LITS})", ng.lits.len()));
    }
    for &(net, v) in &ng.lits {
        if net.index() >= nl.num_nets() {
            return Some(format!("literal net index {} out of range", net.index()));
        }
        if v == V9::XX {
            return Some(format!(
                "vacuous XX literal on net {} (broken extraction)",
                net.index()
            ));
        }
        if v != V9::S0 && v != V9::S1 {
            // The justification engine decides satisfiability over stable
            // candidate assignments (plus the launch), so a refutation
            // containing a transition or half-known literal was
            // "verified" outside the domain where its answer is
            // definitive — such a clause can kill feasible branches (the
            // c1908 worst-path regression).
            return Some(format!(
                "non-stable literal {v:?} on net {} (outside the replay's \
                 complete domain)",
                net.index()
            ));
        }
    }
    None
}

enum Replay {
    Refuted,
    Witness,
    Budget,
    /// The replay refuted the clause, but a toggle-capable net in the
    /// literals' fanin cone is unresolved in the replay state — the
    /// justifier's stable-only backward search cannot rule out a witness
    /// that routes the launch through it (transitions cancel through
    /// XORs into stable values it can never construct), so the
    /// refutation is not definitive and the clause must not have been
    /// stored.
    OpenSupport,
}

/// LEARN002: independent refutation replay through the public
/// justification API (mirrors `sta_core::learn`'s verify discipline:
/// single-polarity mask, launch transition asserted first, immediate
/// forward conflict counts as refuted, and an `Unsatisfiable` is
/// accepted only when the clause's transition support is closed).
fn replay(
    eng: &mut ImplicationEngine<'_>,
    nl: &Netlist,
    toggles: &[Toggle],
    src: NetId,
    ng: &Nogood,
) -> Replay {
    eng.reset();
    eng.set_toggles(Some(toggles.to_vec()));
    let mask = Mask {
        r: ng.pol_r,
        f: !ng.pol_r,
    };
    let mut alive = mask;
    // The launch must be on the trail before the literals: every hit
    // context has the source transitioning (the enumeration's DFS root
    // asserts it), and the toggle deltas assume it. Omitting it leaves
    // the source unassignable — its own delta conflicts with any stable
    // value, and justification candidates are stable-only — so a clause
    // whose support flows through the source would replay as "refuted"
    // vacuously and the audit would certify an unsound entry.
    let conflict = eng.assign(src, Dual::transition(false), alive);
    alive = alive.minus(conflict);
    if !alive.any() {
        eng.reset();
        return Replay::Refuted;
    }
    for &(net, v) in &ng.lits {
        let want = if ng.pol_r {
            Dual { r: v, f: V9::XX }
        } else {
            Dual { r: V9::XX, f: v }
        };
        let conflict = eng.assign(net, want, alive);
        alive = alive.minus(conflict);
        if !alive.any() {
            eng.reset();
            return Replay::Refuted;
        }
    }
    let todo: Vec<NetId> = ng.lits.iter().map(|&(n, _)| n).collect();
    let mut budget = JustifyBudget::with_decision_limit(REPLAY_DECISION_BUDGET);
    let outcome = justify(eng, nl, todo, alive, &mut budget);
    let closed = match outcome {
        JustifyOutcome::Unsatisfiable => {
            support_is_closed(eng, nl, Some(toggles), ng.pol_r, &ng.lits)
        }
        _ => true,
    };
    eng.reset();
    match outcome {
        JustifyOutcome::Satisfied(_) => Replay::Witness,
        JustifyOutcome::Unsatisfiable if closed => Replay::Refuted,
        JustifyOutcome::Unsatisfiable => Replay::OpenSupport,
        JustifyOutcome::BudgetExhausted => Replay::Budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_netlist::GateId;

    fn tiny() -> (Library, Netlist) {
        let lib = Library::standard();
        let nand2 = lib.cell_by_name("NAND2").expect("standard cell").id();
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl
            .add_gate(GateKind::Cell(nand2), &[a, b], Some("z"))
            .expect("gate");
        nl.mark_output(z);
        (lib, nl)
    }

    fn key_for(nl: &Netlist) -> NogoodKey {
        NogoodKey {
            src: nl.inputs()[0],
            gate: GateId::from_index(0),
            pin: 0,
            vector: 0,
        }
    }

    #[test]
    fn satisfiable_clause_is_flagged() {
        let (lib, nl) = tiny();
        let key = key_for(&nl);
        // "b stable 1 in the rising analysis" is trivially satisfiable —
        // a store claiming it is a refutation is lying.
        let bogus = Nogood {
            pol_r: true,
            lits: vec![(nl.inputs()[1], V9::S1)],
            cost: 100,
        };
        let snap = vec![(key, std::sync::Arc::new(vec![bogus]))];
        let out = audit_nogoods(&nl, &lib, "tiny", &snap);
        assert_eq!(out.checked, 1);
        assert_eq!(out.certified, 0);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, RuleCode::LearnRefutesSatisfiable);
    }

    #[test]
    fn contradictory_clause_certifies() {
        let (lib, nl) = tiny();
        let key = key_for(&nl);
        let z = nl.gate(GateId::from_index(0)).output();
        // NAND2 output stable-0 needs both inputs stable-1; demanding
        // b=0 alongside z=0 contradicts under forward propagation.
        let refutation = Nogood {
            pol_r: true,
            lits: vec![(z, V9::S0), (nl.inputs()[1], V9::S0)],
            cost: 100,
        };
        let snap = vec![(key, std::sync::Arc::new(vec![refutation]))];
        let out = audit_nogoods(&nl, &lib, "tiny", &snap);
        assert_eq!(out.diagnostics.len(), 0, "{:?}", out.diagnostics);
        assert_eq!(out.certified, 1);
    }

    #[test]
    fn malformed_key_and_clause_are_structural_errors() {
        let (lib, nl) = tiny();
        let mut key = key_for(&nl);
        key.vector = 99;
        let ng = Nogood {
            pol_r: true,
            lits: vec![(nl.inputs()[0], V9::S1)],
            cost: 1,
        };
        let snap = vec![(key, std::sync::Arc::new(vec![ng]))];
        let out = audit_nogoods(&nl, &lib, "tiny", &snap);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, RuleCode::LearnMalformed);

        let key = key_for(&nl);
        let vacuous = Nogood {
            pol_r: false,
            lits: vec![(nl.inputs()[0], V9::XX)],
            cost: 1,
        };
        let snap = vec![(key, std::sync::Arc::new(vec![vacuous]))];
        let out = audit_nogoods(&nl, &lib, "tiny", &snap);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, RuleCode::LearnMalformed);
    }
}
