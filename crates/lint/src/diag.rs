//! The diagnostics framework: rule codes, severities, reports and
//! renderers.

use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` means the object is unusable by the enumeration flow (a cycle,
/// a missing arc model); `Warn` means it is suspicious but analyzable (a
/// dangling net); `Info` is a statistical observation (a fanout outlier).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Statistical / stylistic observation.
    Info,
    /// Suspicious but not fatal.
    Warn,
    /// The checked object is broken for the STA flow.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warn => "warning",
            Severity::Info => "info",
        })
    }
}

/// Stable rule identifiers. The code strings (`NL001`, `LIB003`, …) are
/// part of the tool's public interface: tests, CI gates and suppression
/// lists key on them, so variants may be added but codes never renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RuleCode {
    /// `NL001` — combinational cycle (strongly connected gate component).
    NlCycle,
    /// `NL002` — a used or output net has no driver and is not a PI.
    NlUndriven,
    /// `NL003` — a net is claimed as output by more than one gate, or the
    /// driver index disagrees with the gate list.
    NlMultiplyDriven,
    /// `NL004` — a net drives nothing and is not a primary output.
    NlDanglingNet,
    /// `NL005` — a primary input feeds no gate and is not an output.
    NlDisconnectedInput,
    /// `NL006` — a primary output whose input cone contains no PI.
    NlConstantOutput,
    /// `NL007` — a net's fanout count is a statistical outlier.
    NlFanoutOutlier,
    /// `LIB001` — sensitization-vector coverage gap: a (cell, pin, vector,
    /// edge) arc the netlist may traverse has no (or a mismatched) model.
    LibMissingArc,
    /// `LIB002` — a delay/slew model goes negative (or non-finite) on its
    /// own fitting grid.
    LibNegativeSample,
    /// `LIB003` — delay decreases with fanout beyond tolerance.
    LibNonMonotone,
    /// `LIB004` — corner-compiled kernel diverges from the interpreted
    /// model beyond 1e-9 ps.
    LibKernelDivergence,
    /// `LIB005` — non-positive pin or average input capacitance.
    LibNonPositiveCap,
    /// `PATH001` — structurally malformed certificate (broken node/arc
    /// chain, bad witness vector shape).
    PathBrokenChain,
    /// `PATH002` — certificate metadata inconsistent with the library
    /// (unknown vector, wrong polarity, wrong edge bookkeeping).
    PathVectorMismatch,
    /// `PATH003` — the witness vector fails to propagate the transition
    /// edge-by-edge in forward simulation.
    PathNotSensitized,
    /// `PATH004` — the reported arrival/slew disagrees with the
    /// stand-alone delay recomputation.
    PathTimingMismatch,
    /// `SCHED001` — the compiled bit-parallel simulation program is not a
    /// valid topological order of the netlist (an operand is read before
    /// it is written, or a driven net is not written exactly once).
    SchedNotTopological,
    /// `LEARN001` — a learned-nogood table entry is structurally
    /// malformed (bad key ids, over-cap list or clause, vacuous literal).
    LearnMalformed,
    /// `LEARN002` — a stored nogood claims an unsatisfiable assignment
    /// but independent re-justification finds a witness.
    LearnRefutesSatisfiable,
    /// `AI001` — a certificate's arrival leaves its endpoint's (or an
    /// intermediate node's) abstract `[lo, hi]` interval.
    AiCertOutsideInterval,
    /// `AI002` — the structural static bound fails to dominate the
    /// abstract interval hull (or the hull itself is malformed).
    AiStructuralDominance,
    /// `AI003` — a certificate's per-arc gate delay leaves the swept
    /// two-sided arc-delay interval.
    AiArcDelayOutsideBound,
    /// `AI004` — a certificate's endpoint slew leaves the abstract slew
    /// interval.
    AiSlewOutsideInterval,
    /// `ECO001` — `dirty_sources` under-approximates: a source marked
    /// clean has a per-source interval table that changed under the edit.
    EcoDirtyUnderapprox,
    /// `ECO002` — a `SourceCache` slot violates the splice invariants
    /// (misfiled source, non-canonical order, overfilled slot).
    EcoCacheInvariant,
    /// `ECO003` — a dirty-source mask is malformed (wrong length, or a
    /// function-changing edit without an all-dirty mask).
    EcoDirtyMaskMalformed,
    /// `SRV001` — the serve protocol schema and parser disagree on an
    /// exemplar request line.
    SrvSchemaParserDisagree,
    /// `SRV002` — the checked-in serve schema drifted from the protocol
    /// structs (op/kind/tech enums or the field set).
    SrvSchemaDrift,
}

impl RuleCode {
    /// The stable code string, e.g. `"NL001"`.
    pub fn code(self) -> &'static str {
        match self {
            RuleCode::NlCycle => "NL001",
            RuleCode::NlUndriven => "NL002",
            RuleCode::NlMultiplyDriven => "NL003",
            RuleCode::NlDanglingNet => "NL004",
            RuleCode::NlDisconnectedInput => "NL005",
            RuleCode::NlConstantOutput => "NL006",
            RuleCode::NlFanoutOutlier => "NL007",
            RuleCode::LibMissingArc => "LIB001",
            RuleCode::LibNegativeSample => "LIB002",
            RuleCode::LibNonMonotone => "LIB003",
            RuleCode::LibKernelDivergence => "LIB004",
            RuleCode::LibNonPositiveCap => "LIB005",
            RuleCode::PathBrokenChain => "PATH001",
            RuleCode::PathVectorMismatch => "PATH002",
            RuleCode::PathNotSensitized => "PATH003",
            RuleCode::PathTimingMismatch => "PATH004",
            RuleCode::SchedNotTopological => "SCHED001",
            RuleCode::LearnMalformed => "LEARN001",
            RuleCode::LearnRefutesSatisfiable => "LEARN002",
            RuleCode::AiCertOutsideInterval => "AI001",
            RuleCode::AiStructuralDominance => "AI002",
            RuleCode::AiArcDelayOutsideBound => "AI003",
            RuleCode::AiSlewOutsideInterval => "AI004",
            RuleCode::EcoDirtyUnderapprox => "ECO001",
            RuleCode::EcoCacheInvariant => "ECO002",
            RuleCode::EcoDirtyMaskMalformed => "ECO003",
            RuleCode::SrvSchemaParserDisagree => "SRV001",
            RuleCode::SrvSchemaDrift => "SRV002",
        }
    }

    /// The rule's default severity (before any promotion).
    pub fn severity(self) -> Severity {
        match self {
            RuleCode::NlCycle
            | RuleCode::NlUndriven
            | RuleCode::NlMultiplyDriven
            | RuleCode::LibMissingArc
            | RuleCode::LibNegativeSample
            | RuleCode::LibKernelDivergence
            | RuleCode::LibNonPositiveCap
            | RuleCode::PathBrokenChain
            | RuleCode::PathVectorMismatch
            | RuleCode::PathNotSensitized
            | RuleCode::PathTimingMismatch
            | RuleCode::SchedNotTopological
            | RuleCode::LearnMalformed
            | RuleCode::LearnRefutesSatisfiable
            | RuleCode::AiCertOutsideInterval
            | RuleCode::AiStructuralDominance
            | RuleCode::AiArcDelayOutsideBound
            | RuleCode::AiSlewOutsideInterval
            | RuleCode::EcoDirtyUnderapprox
            | RuleCode::EcoCacheInvariant
            | RuleCode::EcoDirtyMaskMalformed
            | RuleCode::SrvSchemaParserDisagree
            | RuleCode::SrvSchemaDrift => Severity::Error,
            RuleCode::NlDanglingNet | RuleCode::NlConstantOutput | RuleCode::LibNonMonotone => {
                Severity::Warn
            }
            // Unconnected inputs ship in the original ISCAS85 netlists
            // (c2670, c5315, c7552) — observation, not suspicion.
            RuleCode::NlDisconnectedInput | RuleCode::NlFanoutOutlier => Severity::Info,
        }
    }

    /// One-line rule summary (the rule-catalog entry).
    pub fn summary(self) -> &'static str {
        match self {
            RuleCode::NlCycle => "combinational cycle",
            RuleCode::NlUndriven => "undriven net",
            RuleCode::NlMultiplyDriven => "multiply-driven net",
            RuleCode::NlDanglingNet => "dangling net",
            RuleCode::NlDisconnectedInput => "disconnected primary input",
            RuleCode::NlConstantOutput => "primary output with no PI in its cone",
            RuleCode::NlFanoutOutlier => "fanout-count outlier",
            RuleCode::LibMissingArc => "sensitization-vector coverage gap",
            RuleCode::LibNegativeSample => "negative delay/slew on the fitting grid",
            RuleCode::LibNonMonotone => "delay not monotone in fanout",
            RuleCode::LibKernelDivergence => "compiled kernel diverges from interpreted model",
            RuleCode::LibNonPositiveCap => "non-positive input capacitance",
            RuleCode::PathBrokenChain => "malformed path certificate",
            RuleCode::PathVectorMismatch => "certificate inconsistent with library",
            RuleCode::PathNotSensitized => "witness fails to propagate transition",
            RuleCode::PathTimingMismatch => "arrival disagrees with recomputation",
            RuleCode::SchedNotTopological => "compiled schedule is not a topological order",
            RuleCode::LearnMalformed => "malformed learned-nogood table entry",
            RuleCode::LearnRefutesSatisfiable => "learned nogood refutes a satisfiable assignment",
            RuleCode::AiCertOutsideInterval => "certificate arrival outside abstract interval",
            RuleCode::AiStructuralDominance => "structural bound fails to dominate interval hull",
            RuleCode::AiArcDelayOutsideBound => "certificate arc delay outside swept arc interval",
            RuleCode::AiSlewOutsideInterval => "certificate slew outside abstract slew interval",
            RuleCode::EcoDirtyUnderapprox => "dirty-source set misses an affected source",
            RuleCode::EcoCacheInvariant => "source-cache splice invariant violated",
            RuleCode::EcoDirtyMaskMalformed => "malformed dirty-source mask",
            RuleCode::SrvSchemaParserDisagree => "serve schema and parser disagree on exemplar",
            RuleCode::SrvSchemaDrift => "serve schema drifted from protocol structs",
        }
    }
}

/// One finding: a rule, its (possibly promoted) severity, where, and what.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleCode,
    /// Severity (the rule default unless promoted).
    pub severity: Severity,
    /// Where: `circuit:net`, `tech:CELL.pin/caseN`, or a path identifier.
    pub location: String,
    /// Human-readable description of this specific finding.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic at the rule's default severity.
    pub fn new(rule: RuleCode, location: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: rule.severity(),
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.rule.code(),
            self.location,
            self.message
        )
    }
}

/// A collection of diagnostics with severity accounting and renderers.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// The findings, in the order the rules produced them.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends a batch of diagnostics.
    pub fn extend(&mut self, ds: Vec<Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Number of diagnostics at the given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Whether any diagnostic is an error (after any promotion).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Observability tap: publishes severity totals
    /// (`lint.<domain>.errors|warnings|infos`) and per-rule fire counts
    /// (`lint.rule.<CODE>`). Side-state only — the report is untouched.
    pub fn record_metrics(&self, obs: &sta_obs::Observer, domain: &str) {
        if !obs.is_enabled() {
            return;
        }
        obs.counter(&format!("lint.{domain}.errors"))
            .add(self.count(Severity::Error) as u64);
        obs.counter(&format!("lint.{domain}.warnings"))
            .add(self.count(Severity::Warn) as u64);
        obs.counter(&format!("lint.{domain}.infos"))
            .add(self.count(Severity::Info) as u64);
        for d in &self.diagnostics {
            obs.counter(&format!("lint.rule.{}", d.rule.code())).inc();
        }
    }

    /// `--deny warnings`: promotes every `Warn` to `Error`. `Info` stays.
    pub fn deny_warnings(&mut self) {
        for d in &mut self.diagnostics {
            if d.severity == Severity::Warn {
                d.severity = Severity::Error;
            }
        }
    }

    /// Renders one line per diagnostic plus a summary tail, most severe
    /// first (stable within a severity).
    pub fn render_human(&self) -> String {
        let mut by_sev: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        by_sev.sort_by_key(|d| std::cmp::Reverse(d.severity));
        let mut out = String::new();
        for d in by_sev {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out
    }

    /// Renders the report as a JSON document:
    ///
    /// ```json
    /// {"diagnostics": [{"rule": "NL002", "severity": "error",
    ///   "location": "c432:n5", "message": "..."}],
    ///  "errors": 1, "warnings": 0, "infos": 0}
    /// ```
    ///
    /// The schema is hand-emitted (not serde-derived) so the field names
    /// and code strings are a stable machine interface.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"severity\": {}, \"location\": {}, \"message\": {}}}",
                json_str(d.rule.code()),
                json_str(&d.severity.to_string()),
                json_str(&d.location),
                json_str(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str(&format!(
            "],\n  \"errors\": {},\n  \"warnings\": {},\n  \"infos\": {}\n}}\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            RuleCode::NlCycle,
            RuleCode::NlUndriven,
            RuleCode::NlMultiplyDriven,
            RuleCode::NlDanglingNet,
            RuleCode::NlDisconnectedInput,
            RuleCode::NlConstantOutput,
            RuleCode::NlFanoutOutlier,
            RuleCode::LibMissingArc,
            RuleCode::LibNegativeSample,
            RuleCode::LibNonMonotone,
            RuleCode::LibKernelDivergence,
            RuleCode::LibNonPositiveCap,
            RuleCode::PathBrokenChain,
            RuleCode::PathVectorMismatch,
            RuleCode::PathNotSensitized,
            RuleCode::PathTimingMismatch,
            RuleCode::SchedNotTopological,
            RuleCode::LearnMalformed,
            RuleCode::LearnRefutesSatisfiable,
            RuleCode::AiCertOutsideInterval,
            RuleCode::AiStructuralDominance,
            RuleCode::AiArcDelayOutsideBound,
            RuleCode::AiSlewOutsideInterval,
            RuleCode::EcoDirtyUnderapprox,
            RuleCode::EcoCacheInvariant,
            RuleCode::EcoDirtyMaskMalformed,
            RuleCode::SrvSchemaParserDisagree,
            RuleCode::SrvSchemaDrift,
        ];
        let mut codes: Vec<&str> = all.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "duplicate rule code");
        assert_eq!(RuleCode::NlCycle.code(), "NL001");
        assert_eq!(RuleCode::LibNonMonotone.code(), "LIB003");
        assert_eq!(RuleCode::PathVectorMismatch.code(), "PATH002");
    }

    #[test]
    fn deny_warnings_promotes_only_warnings() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(RuleCode::NlDanglingNet, "t:x", "dangling"));
        r.push(Diagnostic::new(RuleCode::NlFanoutOutlier, "t:y", "outlier"));
        assert!(!r.has_errors());
        r.deny_warnings();
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Info), 1);
    }

    #[test]
    fn human_rendering_sorts_errors_first() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(RuleCode::NlFanoutOutlier, "t:y", "outlier"));
        r.push(Diagnostic::new(RuleCode::NlCycle, "t:x", "cycle"));
        let text = r.render_human();
        let err_pos = text.find("error[NL001]").unwrap();
        let info_pos = text.find("info[NL007]").unwrap();
        assert!(err_pos < info_pos, "{text}");
        assert!(text.contains("1 error(s), 0 warning(s), 1 info"));
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(
            RuleCode::NlUndriven,
            "t:a\"b",
            "line1\nline2",
        ));
        let js = r.render_json();
        assert!(js.contains("\"rule\": \"NL002\""), "{js}");
        assert!(js.contains("a\\\"b"), "{js}");
        assert!(js.contains("line1\\nline2"), "{js}");
        assert!(js.contains("\"errors\": 1"), "{js}");
        // Empty report renders a valid empty array.
        let empty = LintReport::new().render_json();
        assert!(empty.contains("\"diagnostics\": []"), "{empty}");
    }
}
