//! `SCHEDxxx`: validity of the compiled bit-parallel simulation program.
//!
//! The batch pre-filter (`sta_core::bitsim`) and the batch certificate
//! replay ([`crate::verify_paths`]) both trust a [`Schedule`]: a flat
//! opcode program whose single forward sweep must visit every gate after
//! all of its operands. If compilation ever emitted an op out of
//! dependency order, the simulator would silently read stale `X` words
//! and every verdict derived from it would be garbage — so the check is
//! an [`Severity::Error`](crate::Severity::Error), not a warning.
//!
//! The rule delegates to [`Schedule::validate`], which replays the
//! program symbolically: sources are marked written up front, every
//! operand must be written before it is read, and every driven net must
//! be written exactly once.

use sta_cells::Library;
use sta_logic::Schedule;
use sta_netlist::Netlist;

use crate::diag::{Diagnostic, RuleCode};

/// Compiles the bit-parallel program for `nl` and checks it is a valid
/// topological evaluation order (`SCHED001`).
pub fn check_schedule(nl: &Netlist, lib: &Library) -> Vec<Diagnostic> {
    let sched = Schedule::compile(nl, lib);
    check_compiled_schedule(nl, &sched)
}

/// Checks an already-compiled program against its netlist (`SCHED001`).
/// Useful when the caller keeps the schedule around for simulation and
/// wants to lint the exact artifact it will run.
pub fn check_compiled_schedule(nl: &Netlist, sched: &Schedule) -> Vec<Diagnostic> {
    match sched.validate(nl) {
        Ok(()) => Vec::new(),
        Err(msg) => vec![Diagnostic::new(
            RuleCode::SchedNotTopological,
            nl.name(),
            msg,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_netlist::GateKind;

    fn chain() -> (Netlist, Library) {
        let lib = Library::standard();
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(GateKind::Cell(nand2), &[a, b], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(nand2), &[x, b], None).unwrap();
        nl.mark_output(y);
        (nl, lib)
    }

    #[test]
    fn compiled_schedule_is_clean() {
        let (nl, lib) = chain();
        assert!(check_schedule(&nl, &lib).is_empty());
    }

    #[test]
    fn reversed_order_fires_sched001() {
        let (nl, lib) = chain();
        let mut order = nl.topo_gates();
        order.reverse();
        let bad = Schedule::with_order(&nl, &lib, &order);
        let ds = check_compiled_schedule(&nl, &bad);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule.code(), "SCHED001");
        assert!(ds[0].message.contains("before it is written"), "{ds:?}");
    }
}
