//! `PATHxxx`: enumeration-independent re-certification of emitted paths.
//!
//! The enumerator's output is a set of [`TruePath`] certificates: a gate
//! sequence, the sensitization vector in force at every gate, a witness
//! primary-input assignment, and per-polarity timing. Everything here
//! re-checks those claims *without* reusing the enumeration search:
//!
//! * **PATH001** — the node/arc chain is structurally coherent on the
//!   netlist (pins connect, the source is a PI, the endpoint is a PO);
//! * **PATH002** — every referenced sensitization vector exists in the
//!   cell library and the recorded polarities/edges agree with it;
//! * **PATH003** — replaying the witness vector through the nine-valued
//!   forward simulator ([`ImplicationEngine`]) propagates the launched
//!   transition edge-by-edge along the path with every side pin held at
//!   its required stable value;
//! * **PATH004** — the reported arrival/slew/per-stage delays match the
//!   stand-alone delay calculator ([`path_delay`]) on the same arcs.
//!
//! Soundness of the replay: a satisfied justification leaves every driven
//! net's merged value equal to its computed value (the fixpoint condition
//! of `sta_core::justify`), so the witness engine's net values are exactly
//! the forward simulation of its PI assignments — assigning only the
//! published PI vector into a fresh engine reproduces them.
//!
//! # Batch replay
//!
//! [`verify_paths`] runs the PATH003 replay 64 certificates at a time
//! through the bit-parallel simulator (`sta_logic::bitsim`): each `u64`
//! lane carries one (certificate, launch polarity) pair, seeded with that
//! certificate's witness vector, and two program passes (one per
//! timeframe plane) evaluate the whole batch. Because a nine-valued
//! forward evaluation is exactly the pair of its three-valued timeframe
//! evaluations, a lane agrees with the scalar engine replay bit for bit —
//! a batch pass *is* a scalar pass. Any lane that fails falls back to the
//! scalar engine so the emitted diagnostics are byte-identical to the
//! one-at-a-time oracle.

use sta_cells::{Corner, Edge, Library};
use sta_charlib::TimingLibrary;
use sta_core::delaycalc::path_delay;
use sta_core::{PiValue, TruePath};
use sta_logic::{BitSim, Dual, ImplicationEngine, Mask, Schedule, TriVal, V9};
use sta_netlist::{GateKind, Netlist};

use crate::diag::{Diagnostic, RuleCode};

/// Aggregate result of [`verify_paths`].
#[derive(Clone, Debug, Default)]
pub struct PathVerifyOutcome {
    /// Paths examined.
    pub checked: usize,
    /// Paths that passed every check.
    pub certified: usize,
    /// All findings, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// 64-lane program passes spent on the batch witness replay.
    pub batch_words: u64,
    /// (certificate, polarity) lanes that fell back to the scalar engine.
    pub scalar_fallbacks: u64,
}

impl PathVerifyOutcome {
    /// `true` if every checked path re-certified.
    pub fn all_certified(&self) -> bool {
        self.checked == self.certified
    }

    /// Observability tap: publishes replay totals
    /// (`lint.verify.checked|certified` counters) and the per-path
    /// diagnostic counts via [`crate::LintReport::record_metrics`]
    /// semantics (`lint.rule.<CODE>`).
    pub fn record_metrics(&self, obs: &sta_obs::Observer) {
        if !obs.is_enabled() {
            return;
        }
        obs.counter("lint.verify.checked").add(self.checked as u64);
        obs.counter("lint.verify.certified")
            .add(self.certified as u64);
        obs.counter("lint.verify.batch_words").add(self.batch_words);
        obs.counter("lint.verify.scalar_fallbacks")
            .add(self.scalar_fallbacks);
        for d in &self.diagnostics {
            obs.counter(&format!("lint.rule.{}", d.rule.code())).inc();
        }
    }
}

/// Re-certifies every path; see the module docs for the rule set. The
/// PATH003 witness replay runs 64 certificates per pass through the
/// bit-parallel simulator, with a scalar fallback on any failing lane —
/// the diagnostics are byte-identical to calling [`verify_path`] per
/// path.
pub fn verify_paths(
    nl: &Netlist,
    lib: &Library,
    tlib: &TimingLibrary,
    paths: &[TruePath],
    input_slew: f64,
    corner: Corner,
) -> PathVerifyOutcome {
    let mut out = PathVerifyOutcome::default();
    let mut eng = ImplicationEngine::new(nl, lib);

    // Stage 1: structural + metadata checks, scalar (cheap). Survivors
    // queue one batch lane per claimed launch polarity.
    let mut pre: Vec<Vec<Diagnostic>> = Vec::with_capacity(paths.len());
    let mut lanes: Vec<(usize, bool)> = Vec::new();
    for (i, p) in paths.iter().enumerate() {
        let ds = structural_checks(nl, lib, p, i);
        if ds.is_empty() {
            if p.rise.is_some() {
                lanes.push((i, true));
            }
            if p.fall.is_some() {
                lanes.push((i, false));
            }
        }
        pre.push(ds);
    }

    // Stage 2: batch witness replay, 64 lanes per pass.
    let mut replay_ok = vec![true; paths.len()];
    if !lanes.is_empty() {
        let sched = Schedule::compile(nl, lib);
        let mut sim = BitSim::new(&sched);
        for chunk in lanes.chunks(64) {
            let failed = replay_batch(&sched, &mut sim, nl, lib, paths, chunk);
            out.batch_words += 2;
            for (bit, &(idx, _)) in chunk.iter().enumerate() {
                if failed & (1u64 << bit) != 0 {
                    replay_ok[idx] = false;
                    out.scalar_fallbacks += 1;
                }
            }
        }
    }

    // Stage 3: assemble per-path results in path order; failing batch
    // lanes rerun the scalar replay for byte-identical diagnostics.
    for (i, p) in paths.iter().enumerate() {
        let mut ds = std::mem::take(&mut pre[i]);
        if ds.is_empty() {
            if !replay_ok[i] {
                replay_checks(&mut eng, nl, lib, p, i, &mut ds);
            }
            timing_checks(nl, tlib, p, input_slew, corner, i, &mut ds);
        }
        out.checked += 1;
        if ds.is_empty() {
            out.certified += 1;
        }
        out.diagnostics.extend(ds);
    }
    out
}

/// Re-certifies one path. Returns an empty list iff the certificate holds.
pub fn verify_path(
    nl: &Netlist,
    lib: &Library,
    tlib: &TimingLibrary,
    path: &TruePath,
    input_slew: f64,
    corner: Corner,
) -> Vec<Diagnostic> {
    let mut eng = ImplicationEngine::new(nl, lib);
    verify_path_with(&mut eng, nl, lib, tlib, path, input_slew, corner, 0)
}

/// Absolute tolerance (ps) on arrival/slew/stage-delay agreement between
/// the certificate and the stand-alone calculator. Both run the identical
/// polynomial arithmetic, so this only absorbs summation-order noise.
const TIMING_TOL: f64 = 1e-6;

#[allow(clippy::too_many_arguments)]
fn verify_path_with(
    eng: &mut ImplicationEngine<'_>,
    nl: &Netlist,
    lib: &Library,
    tlib: &TimingLibrary,
    path: &TruePath,
    input_slew: f64,
    corner: Corner,
    index: usize,
) -> Vec<Diagnostic> {
    let mut out = structural_checks(nl, lib, path, index);
    if !out.is_empty() {
        return out;
    }
    replay_checks(eng, nl, lib, path, index, &mut out);
    timing_checks(nl, tlib, path, input_slew, corner, index, &mut out);
    out
}

/// `circuit:path[index] src->dst`, the location string of every PATHxxx
/// diagnostic.
fn loc_of(nl: &Netlist, path: &TruePath, index: usize) -> String {
    let src = nl.net_label(path.source);
    let dst = path
        .nodes
        .last()
        .map_or_else(|| "?".to_string(), |&n| nl.net_label(n));
    format!("{}:path[{index}] {src}->{dst}", nl.name())
}

/// PATH001 + PATH002: structural chain and library metadata. Returns the
/// diagnostics; non-empty means the replay/timing stages must be skipped.
fn structural_checks(
    nl: &Netlist,
    lib: &Library,
    path: &TruePath,
    index: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = || loc_of(nl, path, index);
    let broken = |out: &mut Vec<Diagnostic>, msg: String| {
        out.push(Diagnostic::new(RuleCode::PathBrokenChain, loc(), msg));
    };

    // ---- PATH001: structural chain --------------------------------------
    if path.nodes.len() != path.arcs.len() + 1 || path.nodes.is_empty() {
        broken(
            &mut out,
            format!(
                "{} nodes vs {} arcs (want arcs + 1)",
                path.nodes.len(),
                path.arcs.len()
            ),
        );
        return out;
    }
    if path.nodes[0] != path.source {
        broken(
            &mut out,
            "first node differs from the recorded source".into(),
        );
    }
    if !nl.net(path.source).is_input() {
        broken(&mut out, "source net is not a primary input".into());
    }
    let endpoint = *path.nodes.last().expect("non-empty checked above");
    if !nl.outputs().contains(&endpoint) {
        broken(&mut out, "endpoint net is not a primary output".into());
    }
    for (k, arc) in path.arcs.iter().enumerate() {
        if arc.gate.index() >= nl.num_gates() {
            broken(&mut out, format!("arc {k} references missing gate"));
            return out;
        }
        let gate = nl.gate(arc.gate);
        if gate.inputs().get(arc.pin as usize) != Some(&path.nodes[k]) {
            broken(
                &mut out,
                format!(
                    "arc {k}: gate #{} pin {} is not driven by net {}",
                    arc.gate.index(),
                    arc.pin,
                    nl.net_label(path.nodes[k])
                ),
            );
        }
        if gate.output() != path.nodes[k + 1] {
            broken(
                &mut out,
                format!(
                    "arc {k}: gate #{} does not drive net {}",
                    arc.gate.index(),
                    nl.net_label(path.nodes[k + 1])
                ),
            );
        }
    }
    if path.input_vector.len() != nl.inputs().len() {
        broken(
            &mut out,
            format!(
                "witness vector has {} entries for {} primary inputs",
                path.input_vector.len(),
                nl.inputs().len()
            ),
        );
    }
    let transitions = path
        .input_vector
        .iter()
        .filter(|v| **v == PiValue::Transition)
        .count();
    let source_pos = nl.inputs().iter().position(|&n| n == path.source);
    let source_is_t = source_pos
        .and_then(|p| path.input_vector.get(p))
        .is_some_and(|v| *v == PiValue::Transition);
    if transitions != 1 || !source_is_t {
        broken(
            &mut out,
            format!("witness vector must launch exactly at the source ({transitions} transitions)"),
        );
    }
    if path.rise.is_none() && path.fall.is_none() {
        broken(&mut out, "no launch polarity recorded".into());
    }
    if !out.is_empty() {
        return out;
    }

    // ---- PATH002: vectors and recorded metadata -------------------------
    for (k, arc) in path.arcs.iter().enumerate() {
        let gate = nl.gate(arc.gate);
        let cell = match gate.kind() {
            GateKind::Cell(c) => c,
            GateKind::Prim(op) => {
                out.push(Diagnostic::new(
                    RuleCode::PathVectorMismatch,
                    loc(),
                    format!("arc {k} traverses unmapped primitive {op}; vectors are undefined"),
                ));
                return out;
            }
        };
        let vectors = lib.cell(cell).vectors_of(arc.pin);
        let Some(want) = vectors.get(arc.vector) else {
            out.push(Diagnostic::new(
                RuleCode::PathVectorMismatch,
                loc(),
                format!(
                    "arc {k}: vector index {} out of range ({} vectors for {}.{})",
                    arc.vector,
                    vectors.len(),
                    lib.cell(cell).name(),
                    sta_cells::func::pin_name(arc.pin),
                ),
            ));
            return out;
        };
        if want.polarity != arc.polarity {
            out.push(Diagnostic::new(
                RuleCode::PathVectorMismatch,
                loc(),
                format!(
                    "arc {k}: recorded polarity {:?} but {} case {} is {:?}",
                    arc.polarity,
                    lib.cell(cell).name(),
                    want.case,
                    want.polarity
                ),
            ));
        }
    }
    let parity_edge = |launch: Edge| -> Edge {
        path.arcs
            .iter()
            .fold(launch, |e, arc| e.through(arc.polarity))
    };
    for (timing, launch) in [(&path.rise, Edge::Rise), (&path.fall, Edge::Fall)] {
        let Some(t) = timing else { continue };
        if t.launch_edge != launch {
            out.push(Diagnostic::new(
                RuleCode::PathVectorMismatch,
                loc(),
                format!(
                    "{launch} branch records launch_edge {}, expected {launch}",
                    t.launch_edge
                ),
            ));
        }
        if t.final_edge != parity_edge(launch) {
            out.push(Diagnostic::new(
                RuleCode::PathVectorMismatch,
                loc(),
                format!(
                    "{launch} launch: final_edge {} disagrees with arc polarities ({})",
                    t.final_edge,
                    parity_edge(launch)
                ),
            ));
        }
        if t.gate_delays.len() != path.arcs.len() {
            out.push(Diagnostic::new(
                RuleCode::PathVectorMismatch,
                loc(),
                format!(
                    "{launch} launch: {} stage delays for {} arcs",
                    t.gate_delays.len(),
                    path.arcs.len()
                ),
            ));
        }
    }
    out
}

/// PATH003: scalar witness replay through the nine-valued engine.
fn replay_checks(
    eng: &mut ImplicationEngine<'_>,
    nl: &Netlist,
    lib: &Library,
    path: &TruePath,
    index: usize,
    out: &mut Vec<Diagnostic>,
) {
    let loc = || loc_of(nl, path, index);
    let claimed = Mask {
        r: path.rise.is_some(),
        f: path.fall.is_some(),
    };
    eng.reset();
    let mut alive = claimed;
    for (&pi, value) in nl.inputs().iter().zip(&path.input_vector) {
        let want = match value {
            PiValue::Transition => Dual::transition(false),
            PiValue::Zero => Dual::stable(false),
            PiValue::One => Dual::stable(true),
            PiValue::X => continue,
        };
        alive = alive.minus(eng.assign(pi, want, alive));
        if !alive.any() {
            break;
        }
    }
    for (pol, launch) in [('r', Edge::Rise), ('f', Edge::Fall)] {
        let claimed_here = match pol {
            'r' => path.rise.is_some(),
            _ => path.fall.is_some(),
        };
        if !claimed_here {
            continue;
        }
        let alive_here = match pol {
            'r' => alive.r,
            _ => alive.f,
        };
        let component = |d: Dual| match pol {
            'r' => d.r,
            _ => d.f,
        };
        if !alive_here {
            out.push(Diagnostic::new(
                RuleCode::PathNotSensitized,
                loc(),
                format!("witness vector conflicts under a {launch} launch"),
            ));
            continue;
        }
        // The launched transition must appear at every node with the
        // correct cumulative parity...
        let mut edge = launch;
        let mut bad = false;
        for (k, &node) in path.nodes.iter().enumerate() {
            let want = match edge {
                Edge::Rise => V9::R,
                Edge::Fall => V9::F,
            };
            let got = component(eng.value(node));
            if got != want {
                out.push(Diagnostic::new(
                    RuleCode::PathNotSensitized,
                    loc(),
                    format!(
                        "{launch} launch: net {} carries {got:?}, expected {want:?}",
                        nl.net_label(node)
                    ),
                ));
                bad = true;
                break;
            }
            if let Some(arc) = path.arcs.get(k) {
                edge = edge.through(arc.polarity);
            }
        }
        if bad {
            continue;
        }
        // ...and every side pin must sit at its vector's stable value.
        'arcs: for (k, arc) in path.arcs.iter().enumerate() {
            let gate = nl.gate(arc.gate);
            let cell = match gate.kind() {
                GateKind::Cell(c) => c,
                GateKind::Prim(_) => unreachable!("rejected in PATH002"),
            };
            let vector = &lib.cell(cell).vectors_of(arc.pin)[arc.vector];
            for (q, &net) in gate.inputs().iter().enumerate() {
                let Some(required) = vector.side_value(q as u8) else {
                    continue;
                };
                let got = component(eng.value(net));
                if got != V9::stable(required) {
                    out.push(Diagnostic::new(
                        RuleCode::PathNotSensitized,
                        loc(),
                        format!(
                            "{launch} launch, arc {k}: side pin {} (net {}) carries \
                             {got:?}, vector requires stable {}",
                            sta_cells::func::pin_name(q as u8),
                            nl.net_label(net),
                            u8::from(required)
                        ),
                    ));
                    break 'arcs;
                }
            }
        }
    }
    eng.reset();
}

/// PATH004: timing cross-check against the stand-alone delay calculator.
fn timing_checks(
    nl: &Netlist,
    tlib: &TimingLibrary,
    path: &TruePath,
    input_slew: f64,
    corner: Corner,
    index: usize,
    out: &mut Vec<Diagnostic>,
) {
    let loc = || loc_of(nl, path, index);
    for (timing, launch) in [(&path.rise, Edge::Rise), (&path.fall, Edge::Fall)] {
        let Some(t) = timing else { continue };
        let breakdown = match path_delay(nl, tlib, path, launch, input_slew, corner) {
            Ok(b) => b,
            Err(e) => {
                out.push(Diagnostic::new(
                    RuleCode::PathTimingMismatch,
                    loc(),
                    format!("{launch} launch: delay recomputation failed: {e}"),
                ));
                continue;
            }
        };
        if (breakdown.total - t.arrival).abs() > TIMING_TOL {
            out.push(Diagnostic::new(
                RuleCode::PathTimingMismatch,
                loc(),
                format!(
                    "{launch} launch: recomputed arrival {:.6} ps vs reported {:.6} ps",
                    breakdown.total, t.arrival
                ),
            ));
        }
        let recomputed_slew = breakdown
            .stages
            .last()
            .map_or(input_slew, |&(_, slew)| slew);
        if (recomputed_slew - t.slew).abs() > TIMING_TOL {
            out.push(Diagnostic::new(
                RuleCode::PathTimingMismatch,
                loc(),
                format!(
                    "{launch} launch: recomputed endpoint slew {recomputed_slew:.6} ps \
                     vs reported {:.6} ps",
                    t.slew
                ),
            ));
        }
        for (k, (&(d, _), &claimed)) in breakdown.stages.iter().zip(&t.gate_delays).enumerate() {
            if (d - claimed).abs() > TIMING_TOL {
                out.push(Diagnostic::new(
                    RuleCode::PathTimingMismatch,
                    loc(),
                    format!(
                        "{launch} launch, arc {k}: recomputed stage delay {d:.6} ps \
                         vs reported {claimed:.6} ps"
                    ),
                ));
                break;
            }
        }
    }
}

/// One three-valued timeframe component of a witness PI value under the
/// given launch polarity.
fn witness_component(value: PiValue, pol_r: bool, init: bool) -> TriVal {
    let d = match value {
        PiValue::Transition => Dual::transition(false),
        PiValue::Zero => Dual::stable(false),
        PiValue::One => Dual::stable(true),
        PiValue::X => return TriVal::X,
    };
    let v = if pol_r { d.r } else { d.f };
    if init {
        v.init()
    } else {
        v.fin()
    }
}

/// Replays up to 64 (certificate, launch polarity) lanes through the
/// bit-parallel simulator; two program passes, one per timeframe plane.
/// Returns the mask of lanes whose replay *disagrees* with the
/// certificate. A nine-valued value equals its expectation iff both
/// timeframe components do, so a clear mask is exactly a scalar PATH003
/// pass (see the module docs).
fn replay_batch(
    sched: &Schedule,
    sim: &mut BitSim,
    nl: &Netlist,
    lib: &Library,
    paths: &[TruePath],
    chunk: &[(usize, bool)],
) -> u64 {
    let lanes: u64 = if chunk.len() == 64 {
        !0
    } else {
        (1u64 << chunk.len()) - 1
    };
    let mut failed = 0u64;
    for init in [true, false] {
        sim.begin(sched);
        for (bit, &(idx, pol_r)) in chunk.iter().enumerate() {
            let path = &paths[idx];
            for (&pi, &value) in nl.inputs().iter().zip(&path.input_vector) {
                let v = witness_component(value, pol_r, init);
                if v != TriVal::X {
                    sim.require(pi, 1u64 << bit, v);
                }
            }
        }
        // Witness vectors only constrain primary inputs, so no lane can
        // conflict; the dead mask is folded in anyway for robustness.
        failed |= sim.run(sched, lanes);
        for (bit, &(idx, pol_r)) in chunk.iter().enumerate() {
            if failed & (1u64 << bit) != 0 {
                continue;
            }
            let path = &paths[idx];
            let launch = if pol_r { Edge::Rise } else { Edge::Fall };
            let mut edge = launch;
            let mut ok = true;
            'nodes: for (k, &node) in path.nodes.iter().enumerate() {
                let want = match (edge, init) {
                    (Edge::Rise, true) | (Edge::Fall, false) => TriVal::Zero,
                    (Edge::Rise, false) | (Edge::Fall, true) => TriVal::One,
                };
                if sim.get(node, bit as u32) != Some(want) {
                    ok = false;
                    break 'nodes;
                }
                if let Some(arc) = path.arcs.get(k) {
                    edge = edge.through(arc.polarity);
                }
            }
            if ok {
                'arcs: for arc in &path.arcs {
                    let gate = nl.gate(arc.gate);
                    let cell = match gate.kind() {
                        GateKind::Cell(c) => c,
                        GateKind::Prim(_) => unreachable!("rejected in PATH002"),
                    };
                    let vector = &lib.cell(cell).vectors_of(arc.pin)[arc.vector];
                    for (q, &net) in gate.inputs().iter().enumerate() {
                        let Some(required) = vector.side_value(q as u8) else {
                            continue;
                        };
                        if sim.get(net, bit as u32) != Some(TriVal::from_bool(required)) {
                            ok = false;
                            break 'arcs;
                        }
                    }
                }
            }
            if !ok {
                failed |= 1u64 << bit;
            }
        }
    }
    failed & lanes
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_core::{EnumerationConfig, PathEnumerator, PiValue};

    /// Enumerate c17-like logic mapped onto the standard library and check
    /// the oracle certifies everything, then that mutations are caught.
    fn setup() -> (Netlist, Library, TimingLibrary, Corner, Vec<TruePath>) {
        let lib = Library::standard();
        let bench = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\n\
u = NAND(a, b)\nv = NAND(b, c)\nz = NAND(u, v)\n";
        let prim = sta_netlist::bench_fmt::parse(bench, "mini").unwrap();
        let nl = sta_circuits::map_netlist(&prim, &lib).unwrap();
        let tlib = test_timing(&lib);
        let corner = Corner::nominal(&tlib.tech);
        let cfg = EnumerationConfig::new(corner);
        let (paths, _stats) = PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
        (nl, lib, tlib, corner, paths)
    }

    /// A fast synthetic characterization: linear models per arc, no esim.
    fn test_timing(lib: &Library) -> TimingLibrary {
        use sta_charlib::{ArcModel, ArcVariant, CellTiming, Lut2d, LutArc, PolyModel, Sample};
        let fit = |base: f64| -> PolyModel {
            let samples: Vec<Sample> = [0.5, 2.0, 8.0]
                .iter()
                .flat_map(|&fo| {
                    [10.0, 60.0, 120.0].iter().map(move |&t_in| Sample {
                        fo,
                        t_in,
                        temperature: 25.0,
                        vdd: 1.2,
                        value: base + 5.0 * fo + 0.1 * t_in,
                    })
                })
                .collect();
            PolyModel::fit(&samples, [1, 1, 0, 0]).unwrap()
        };
        let cells = lib
            .iter()
            .map(|cell| {
                let mut variants = Vec::new();
                let mut variant_index = Vec::new();
                for pin in 0..cell.num_pins() {
                    let mut per_pin = Vec::new();
                    for v in cell.vectors_of(pin) {
                        per_pin.push(variants.len());
                        variants.push(ArcVariant {
                            pin,
                            case: v.case,
                            polarity: v.polarity,
                            rise: ArcModel {
                                delay: fit(20.0 + pin as f64),
                                slew: fit(12.0),
                                max_sample_delay: 300.0,
                            },
                            fall: ArcModel {
                                delay: fit(22.0 + pin as f64),
                                slew: fit(14.0),
                                max_sample_delay: 300.0,
                            },
                        });
                    }
                    variant_index.push(per_pin);
                }
                let luts = (0..cell.num_pins())
                    .map(|pin| LutArc {
                        pin,
                        polarity: sta_cells::Polarity::Inverting,
                        rise_delay: Lut2d::tabulate(vec![0.5, 8.0], vec![10.0, 120.0], |fo, t| {
                            20.0 + 5.0 * fo + 0.1 * t
                        }),
                        rise_slew: Lut2d::tabulate(vec![0.5, 8.0], vec![10.0, 120.0], |fo, t| {
                            12.0 + 5.0 * fo + 0.1 * t
                        }),
                        fall_delay: Lut2d::tabulate(vec![0.5, 8.0], vec![10.0, 120.0], |fo, t| {
                            22.0 + 5.0 * fo + 0.1 * t
                        }),
                        fall_slew: Lut2d::tabulate(vec![0.5, 8.0], vec![10.0, 120.0], |fo, t| {
                            14.0 + 5.0 * fo + 0.1 * t
                        }),
                    })
                    .collect();
                CellTiming {
                    cell: cell.id(),
                    name: cell.name().to_string(),
                    input_caps: vec![2.0; cell.num_pins() as usize],
                    avg_input_cap: 2.0,
                    variants,
                    variant_index,
                    luts,
                }
            })
            .collect();
        TimingLibrary {
            tech: sta_cells::Technology::n90(),
            cells,
        }
    }

    #[test]
    fn enumerated_paths_recertify() {
        let (nl, lib, tlib, corner, paths) = setup();
        assert!(!paths.is_empty(), "enumeration found no paths");
        let outcome = verify_paths(&nl, &lib, &tlib, &paths, 60.0, corner);
        assert!(
            outcome.all_certified(),
            "false rejections: {:?}",
            outcome.diagnostics
        );
        assert_eq!(outcome.checked, paths.len());
        // Every certificate went through the batch path; none fell back.
        assert!(outcome.batch_words >= 2);
        assert_eq!(outcome.scalar_fallbacks, 0);
    }

    /// The batch driver and the one-at-a-time oracle agree diagnostic for
    /// diagnostic, on clean and on corrupted certificates alike.
    #[test]
    fn batch_replay_matches_scalar_oracle() {
        let (nl, lib, tlib, corner, paths) = setup();
        let mut mixed: Vec<TruePath> = paths.clone();
        // Corrupt a witness (PATH003 material) and an arrival (PATH004).
        for p in &mut mixed {
            if let Some(pos) = p
                .input_vector
                .iter()
                .position(|v| matches!(v, PiValue::Zero | PiValue::One))
            {
                p.input_vector[pos] = match p.input_vector[pos] {
                    PiValue::Zero => PiValue::One,
                    _ => PiValue::Zero,
                };
                break;
            }
        }
        if let Some(t) = mixed
            .last_mut()
            .and_then(|p| p.rise.as_mut().or(p.fall.as_mut()))
        {
            t.arrival += 5.0;
        }
        let batch = verify_paths(&nl, &lib, &tlib, &mixed, 60.0, corner);
        let scalar: Vec<Diagnostic> = mixed
            .iter()
            .enumerate()
            .flat_map(|(i, p)| {
                let mut eng = ImplicationEngine::new(&nl, &lib);
                verify_path_with(&mut eng, &nl, &lib, &tlib, p, 60.0, corner, i)
            })
            .collect();
        assert_eq!(batch.diagnostics, scalar);
        assert!(!batch.all_certified());
        assert!(batch.scalar_fallbacks >= 1, "corrupt witness fell back");
    }

    #[test]
    fn broken_chain_is_path001() {
        let (nl, lib, tlib, corner, paths) = setup();
        let mut p = paths[0].clone();
        // Reroute an intermediate node to an unrelated net.
        p.nodes[0] = *nl.inputs().iter().find(|&&n| n != p.source).unwrap();
        let ds = verify_path(&nl, &lib, &tlib, &p, 60.0, corner);
        assert!(ds.iter().any(|d| d.rule.code() == "PATH001"), "{ds:?}");
    }

    #[test]
    fn wrong_vector_is_path002() {
        let (nl, lib, tlib, corner, paths) = setup();
        let mut p = paths[0].clone();
        p.arcs[0].vector = 99;
        let ds = verify_path(&nl, &lib, &tlib, &p, 60.0, corner);
        assert!(ds.iter().any(|d| d.rule.code() == "PATH002"), "{ds:?}");
    }

    #[test]
    fn corrupted_witness_is_path003() {
        let (nl, lib, tlib, corner, paths) = setup();
        // Find a path whose witness pins some side input to a constant,
        // then flip that constant: the transition no longer propagates.
        for p in &paths {
            if let Some(pos) = p
                .input_vector
                .iter()
                .position(|v| matches!(v, PiValue::Zero | PiValue::One))
            {
                let mut bad = p.clone();
                bad.input_vector[pos] = match bad.input_vector[pos] {
                    PiValue::Zero => PiValue::One,
                    _ => PiValue::Zero,
                };
                let ds = verify_path(&nl, &lib, &tlib, &bad, 60.0, corner);
                assert!(
                    ds.iter().any(|d| d.rule.code() == "PATH003"),
                    "flipping a pinned side input was not caught: {ds:?}"
                );
                return;
            }
        }
        panic!("no path with a pinned side input");
    }

    #[test]
    fn tampered_arrival_is_path004() {
        let (nl, lib, tlib, corner, paths) = setup();
        let mut p = paths[0].clone();
        if let Some(t) = p.rise.as_mut().or(p.fall.as_mut()) {
            t.arrival += 5.0;
        }
        let ds = verify_path(&nl, &lib, &tlib, &p, 60.0, corner);
        assert!(ds.iter().any(|d| d.rule.code() == "PATH004"), "{ds:?}");
    }
}
