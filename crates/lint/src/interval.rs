//! Interval abstract interpretation over the timing graph.
//!
//! One forward topological pass propagates sound `[lo, hi]` envelopes of
//! *event arrival time* and *endpoint slew* per net, built on the swept
//! two-sided per-arc intervals of `sta_core::arrival::ArcIntervals` (the
//! interval refinement of the PR 7 dominance bounds). The abstract domain
//! is the flat interval lattice over `f64` with an explicit bottom —
//! "no event can ever occur on this net" — encoded as `[+inf, -inf]`.
//!
//! Transfer function of a gate output `o` with input pins `p`:
//!
//! ```text
//! arrival_hi[o] = max over active p, vectors v: arrival_hi[in_p] + delay_hi(p, v)
//! arrival_lo[o] = min over active p, vectors v: arrival_lo[in_p] + delay_lo(p, v)
//! slew_hi[o]    = max over active p, vectors v: slew_hi(p, v)
//! slew_lo[o]    = min over active p, vectors v: slew_lo(p, v)
//! ```
//!
//! where a pin is *active* when its input net is not bottom and the arc
//! family has at least one characterized vector. An output with no active
//! pin stays bottom. Soundness: every concrete event at `o` is caused by
//! one concrete event at some input traversing one arc, and the swept arc
//! intervals bound that arc's delay and output slew over the whole
//! clamped slew domain (see `sta_core::arrival::arc_intervals` for why a
//! dense sweep — not endpoint evaluation — is required for the
//! non-monotone fitted models). Induction over the topological order does
//! the rest.
//!
//! Two seeding modes matter to the audit rules:
//!
//! * [`hull`] seeds every primary input — the envelope of *all* events
//!   the circuit can produce (AI002, AI004).
//! * [`for_source`] seeds a single primary input and leaves the rest
//!   bottom — the envelope of events launched *from that source* (AI001,
//!   and the per-source change test behind ECO001: the single-source DP
//!   only traverses arcs reachable from its seed, so an edit outside the
//!   source's fanout cone provably cannot move its table).

use sta_core::{ArcIntervals, TruePath};
use sta_netlist::{NetId, Netlist};

/// Absolute tolerance, ps, when testing a concrete value against an
/// interval end — covers prefix-sum reassociation between the search's
/// incremental arrival accumulation and the audit's recomputation.
pub const ENCLOSURE_TOL: f64 = 1e-6;

/// Sound per-net `[lo, hi]` envelopes of event arrival and slew, indexed
/// by `NetId`. Bottom (no event reachable) is `[+inf, -inf]`.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeIntervals {
    /// Earliest possible event arrival per net, ps (`+inf` = bottom).
    pub arrival_lo: Vec<f64>,
    /// Latest possible event arrival per net, ps (`-inf` = bottom).
    pub arrival_hi: Vec<f64>,
    /// Smallest possible transition time per net, ps.
    pub slew_lo: Vec<f64>,
    /// Largest possible transition time per net, ps.
    pub slew_hi: Vec<f64>,
}

impl NodeIntervals {
    /// Whether any event can occur on `net` (the net is not bottom).
    #[inline]
    pub fn has_events(&self, net: NetId) -> bool {
        self.arrival_lo[net.index()] <= self.arrival_hi[net.index()]
    }

    /// Whether a concrete arrival lies inside the net's interval
    /// (tolerance-widened). Bottom contains nothing.
    #[inline]
    pub fn contains_arrival(&self, net: NetId, t: f64) -> bool {
        t >= self.arrival_lo[net.index()] - ENCLOSURE_TOL
            && t <= self.arrival_hi[net.index()] + ENCLOSURE_TOL
    }

    /// Whether a concrete slew lies inside the net's slew interval
    /// (tolerance-widened). Bottom contains nothing.
    #[inline]
    pub fn contains_slew(&self, net: NetId, s: f64) -> bool {
        s >= self.slew_lo[net.index()] - ENCLOSURE_TOL
            && s <= self.slew_hi[net.index()] + ENCLOSURE_TOL
    }

    /// Bitwise equality of all four tables — the change detector behind
    /// the ECO001 audit (NaN-free: bottoms compare equal by bits too).
    pub fn bitwise_eq(&self, other: &NodeIntervals) -> bool {
        fn eq(a: &[f64], b: &[f64]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        eq(&self.arrival_lo, &other.arrival_lo)
            && eq(&self.arrival_hi, &other.arrival_hi)
            && eq(&self.slew_lo, &other.slew_lo)
            && eq(&self.slew_hi, &other.slew_hi)
    }
}

/// The all-sources envelope: every primary input seeded with arrival
/// `[0, 0]` and slew `[input_slew, input_slew]`.
pub fn hull(nl: &Netlist, arcs: &ArcIntervals, input_slew: f64) -> NodeIntervals {
    compute(nl, arcs, nl.inputs(), input_slew)
}

/// The single-source envelope: only `source` launches events; every
/// other primary input is stable (bottom).
pub fn for_source(
    nl: &Netlist,
    arcs: &ArcIntervals,
    source: NetId,
    input_slew: f64,
) -> NodeIntervals {
    compute(nl, arcs, &[source], input_slew)
}

fn compute(nl: &Netlist, arcs: &ArcIntervals, seeds: &[NetId], input_slew: f64) -> NodeIntervals {
    let n = nl.num_nets();
    let mut iv = NodeIntervals {
        arrival_lo: vec![f64::INFINITY; n],
        arrival_hi: vec![f64::NEG_INFINITY; n],
        slew_lo: vec![f64::INFINITY; n],
        slew_hi: vec![f64::NEG_INFINITY; n],
    };
    for &s in seeds {
        iv.arrival_lo[s.index()] = 0.0;
        iv.arrival_hi[s.index()] = 0.0;
        iv.slew_lo[s.index()] = input_slew;
        iv.slew_hi[s.index()] = input_slew;
    }
    for g in nl.topo_gates() {
        let gate = nl.gate(g);
        let o = gate.output().index();
        for (pin, &inp) in gate.inputs().iter().enumerate() {
            if !iv.has_events(inp) {
                continue;
            }
            let pin = pin as u8;
            for v in 0..arcs.num_vectors(g, pin) {
                let a = arcs.get(g, pin, v);
                let lo = iv.arrival_lo[inp.index()] + a.delay_lo;
                let hi = iv.arrival_hi[inp.index()] + a.delay_hi;
                if lo < iv.arrival_lo[o] {
                    iv.arrival_lo[o] = lo;
                }
                if hi > iv.arrival_hi[o] {
                    iv.arrival_hi[o] = hi;
                }
                if a.slew_lo < iv.slew_lo[o] {
                    iv.slew_lo[o] = a.slew_lo;
                }
                if a.slew_hi > iv.slew_hi[o] {
                    iv.slew_hi[o] = a.slew_hi;
                }
            }
        }
    }
    iv
}

/// The arrival prefix sums of one launch timing of a certificate: entry
/// `i` is the event time at `path.nodes[i]` (0 at the source). Shared by
/// the AI001 intermediate-node check and its tests.
pub fn arrival_prefix(path: &TruePath, gate_delays: &[f64]) -> Vec<f64> {
    let mut pre = Vec::with_capacity(gate_delays.len() + 1);
    let mut t = 0.0;
    pre.push(t);
    for &d in gate_delays {
        t += d;
        pre.push(t);
    }
    debug_assert_eq!(pre.len(), path.nodes.len().max(1));
    pre
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::{Corner, Library, Technology};
    use sta_charlib::{characterize, CharConfig};
    use sta_circuits::catalog;
    use sta_core::{arc_intervals, ARC_SWEEP_MARGIN};

    fn c17() -> (Netlist, ArcIntervals) {
        let lib = Library::standard();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let corner = Corner::nominal(&tech);
        let nl = catalog::mapped("c17", &lib).unwrap().unwrap();
        let arcs = arc_intervals(&nl, &tlib, corner, 60.0, ARC_SWEEP_MARGIN);
        (nl, arcs)
    }

    #[test]
    fn hull_reaches_every_output_and_is_well_formed() {
        let (nl, arcs) = c17();
        let iv = hull(&nl, &arcs, 60.0);
        for &po in nl.outputs() {
            assert!(iv.has_events(po), "PO unreachable in the hull");
            assert!(iv.arrival_lo[po.index()] > 0.0);
            assert!(iv.arrival_lo[po.index()] <= iv.arrival_hi[po.index()]);
            assert!(iv.slew_lo[po.index()] <= iv.slew_hi[po.index()]);
        }
    }

    #[test]
    fn single_source_is_tighter_than_hull_and_misses_unreachable_nets() {
        let (nl, arcs) = c17();
        let all = hull(&nl, &arcs, 60.0);
        for &pi in nl.inputs() {
            let one = for_source(&nl, &arcs, pi, 60.0);
            let mut reached_some_po = false;
            for net in 0..nl.num_nets() {
                let lo = one.arrival_lo[net];
                let hi = one.arrival_hi[net];
                if lo <= hi {
                    // Single-source envelopes are enclosed in the hull.
                    assert!(all.arrival_lo[net] <= lo + ENCLOSURE_TOL);
                    assert!(all.arrival_hi[net] >= hi - ENCLOSURE_TOL);
                }
            }
            for &po in nl.outputs() {
                reached_some_po |= one.has_events(po);
            }
            assert!(reached_some_po, "every c17 input reaches some output");
        }
    }

    #[test]
    fn bitwise_eq_detects_any_change() {
        let (nl, arcs) = c17();
        let a = hull(&nl, &arcs, 60.0);
        let mut b = a.clone();
        assert!(a.bitwise_eq(&b));
        b.arrival_hi[0] += 1.0;
        assert!(!a.bitwise_eq(&b));
    }
}
