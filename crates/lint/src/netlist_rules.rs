//! `NLxxx`: structural checks over the netlist graph.

use sta_netlist::{GateId, NetId, Netlist};

use crate::diag::{Diagnostic, RuleCode};

/// Runs every structural rule over `nl` and returns the findings.
///
/// Works on primitive and technology-mapped netlists alike (no library is
/// consulted). The checks deliberately re-derive driver information from
/// the gate list instead of trusting the per-net `driver` index, so
/// corrupted (hand-edited or deserialized) netlists are caught too —
/// `Netlist::validate` only sees what the builder API can construct.
pub fn lint_netlist(nl: &Netlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = |id: NetId| nl.net_ref(id).to_string();
    let is_po: Vec<bool> = {
        let mut v = vec![false; nl.num_nets()];
        for &o in nl.outputs() {
            v[o.index()] = true;
        }
        v
    };

    // NL003 — recompute drivers from the gate list and cross-check.
    let mut claims: Vec<Vec<GateId>> = vec![Vec::new(); nl.num_nets()];
    for g in nl.gate_ids() {
        claims[nl.gate(g).output().index()].push(g);
    }
    for id in nl.net_ids() {
        let net = nl.net(id);
        let c = &claims[id.index()];
        if c.len() > 1 {
            out.push(Diagnostic::new(
                RuleCode::NlMultiplyDriven,
                loc(id),
                format!(
                    "net is claimed as output by {} gates (#{})",
                    c.len(),
                    c.iter()
                        .map(|g| g.index().to_string())
                        .collect::<Vec<_>>()
                        .join(", #")
                ),
            ));
        } else if net.is_input() && !c.is_empty() {
            out.push(Diagnostic::new(
                RuleCode::NlMultiplyDriven,
                loc(id),
                format!("primary input is also driven by gate #{}", c[0].index()),
            ));
        } else if net.driver() != c.first().copied() {
            out.push(Diagnostic::new(
                RuleCode::NlMultiplyDriven,
                loc(id),
                format!(
                    "driver index {:?} disagrees with the gate list {:?}",
                    net.driver().map(|g| g.index()),
                    c.first().map(|g| g.index())
                ),
            ));
        }
    }

    // NL002 / NL004 / NL005 — driverless, dangling and disconnected nets.
    for id in nl.net_ids() {
        let net = nl.net(id);
        let driven = !claims[id.index()].is_empty();
        let used = !net.fanout().is_empty() || is_po[id.index()];
        if net.is_input() {
            if !used {
                out.push(Diagnostic::new(
                    RuleCode::NlDisconnectedInput,
                    loc(id),
                    "primary input feeds no gate and is not an output",
                ));
            }
        } else if !driven && used {
            out.push(Diagnostic::new(
                RuleCode::NlUndriven,
                loc(id),
                "net is used but never driven",
            ));
        } else if !used {
            out.push(Diagnostic::new(
                RuleCode::NlDanglingNet,
                loc(id),
                "net drives nothing and is not a primary output",
            ));
        }
    }

    // NL001 — combinational cycles via iterative Tarjan SCC.
    for scc in cyclic_sccs(nl) {
        let mut nets: Vec<String> = scc
            .iter()
            .take(6)
            .map(|&g| nl.net_label(nl.gate(g).output()))
            .collect();
        if scc.len() > 6 {
            nets.push(format!("… {} more", scc.len() - 6));
        }
        out.push(Diagnostic::new(
            RuleCode::NlCycle,
            loc(nl.gate(scc[0]).output()),
            format!(
                "combinational cycle through {} gate(s): {}",
                scc.len(),
                nets.join(" -> ")
            ),
        ));
    }

    // NL006 — primary outputs whose cone never settles from the inputs.
    let settled = settled_from_inputs(nl);
    for &o in nl.outputs() {
        if !settled[o.index()] {
            out.push(Diagnostic::new(
                RuleCode::NlConstantOutput,
                loc(o),
                "output never settles from the primary inputs (cyclic cone)",
            ));
        }
    }

    // NL007 — fanout-count outliers (mean + 6 sigma, and at least 16).
    let counts: Vec<f64> = nl
        .net_ids()
        .map(|id| nl.net(id).fanout().len() as f64)
        .collect();
    if !counts.is_empty() {
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<f64>() / n;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n;
        let threshold = (mean + 6.0 * var.sqrt()).max(16.0);
        for id in nl.net_ids() {
            let f = nl.net(id).fanout().len() as f64;
            if f > threshold {
                out.push(Diagnostic::new(
                    RuleCode::NlFanoutOutlier,
                    loc(id),
                    format!(
                        "fanout {} exceeds {:.1} (mean {:.2} + 6 sigma {:.2})",
                        f as usize,
                        threshold,
                        mean,
                        var.sqrt()
                    ),
                ));
            }
        }
    }

    out
}

/// Which nets settle to a well-defined function of the primary inputs.
///
/// A gate output settles once *all* its inputs have settled; primary
/// inputs settle by definition, and undriven nets are treated as settled
/// so their failure is reported once (as NL002) rather than cascading.
/// Nets on a combinational cycle — or fed by one — mutually wait on each
/// other and therefore never settle, which is exactly what NL006 reports.
///
/// Deliberately avoids `Netlist::topo_gates`: that routine assumes the
/// driver/fanout bookkeeping is consistent, which is exactly what a
/// corrupted (deserialized) netlist violates. A gate-sweep fixpoint only
/// reads each gate's own pins, so it cannot be derailed; it converges in
/// (logic depth) sweeps.
fn settled_from_inputs(nl: &Netlist) -> Vec<bool> {
    let mut driven = vec![false; nl.num_nets()];
    for g in nl.gate_ids() {
        driven[nl.gate(g).output().index()] = true;
    }
    let mut settled = vec![false; nl.num_nets()];
    for id in nl.net_ids() {
        if nl.net(id).is_input() || !driven[id.index()] {
            settled[id.index()] = true;
        }
    }
    loop {
        let mut changed = false;
        for g in nl.gate_ids() {
            let gate = nl.gate(g);
            let o = gate.output().index();
            if !settled[o]
                && !nl.net(gate.output()).is_input()
                && gate.inputs().iter().all(|n| settled[n.index()])
            {
                settled[o] = true;
                changed = true;
            }
        }
        if !changed {
            return settled;
        }
    }
}

/// Iterative Tarjan SCC over the gate graph (gate → gates fed by its
/// output). Returns only the *cyclic* components — size > 1, or a single
/// gate feeding its own input — each sorted ascending, the list ordered by
/// its smallest gate id. Iterative on an explicit stack: ISCAS-sized
/// netlists produce recursion depths far beyond the call stack.
fn cyclic_sccs(nl: &Netlist) -> Vec<Vec<GateId>> {
    const UNVISITED: usize = usize::MAX;
    let n = nl.num_gates();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<GateId>> = Vec::new();

    // (gate, next successor position) — the explicit DFS frame.
    let mut frames: Vec<(usize, usize)> = Vec::new();
    // Out-of-range fanout entries (possible on corrupted netlists) are
    // dropped rather than trusted.
    let successors = |g: usize| -> Vec<usize> {
        nl.net(nl.gate(GateId::from_index(g)).output())
            .fanout()
            .iter()
            .map(|pr| pr.gate.index())
            .filter(|&w| w < n)
            .collect()
    };

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let succ = successors(v);
            if *pos < succ.len() {
                let w = succ[*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = comp.len() > 1 || successors(v).contains(&v);
                    if cyclic {
                        comp.sort_unstable();
                        sccs.push(comp.into_iter().map(GateId::from_index).collect());
                    }
                }
            }
        }
    }
    sccs.sort_by_key(|c| c[0].index());
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_netlist::{GateKind, PrimOp};

    fn codes(ds: &[Diagnostic]) -> Vec<&'static str> {
        ds.iter().map(|d| d.rule.code()).collect()
    }

    fn clean() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[a, b], Some("x"))
            .unwrap();
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Not), &[x], Some("z"))
            .unwrap();
        nl.mark_output(z);
        nl
    }

    #[test]
    fn clean_netlist_has_no_findings() {
        assert_eq!(lint_netlist(&clean()), vec![]);
    }

    #[test]
    fn undriven_and_dangling_are_distinguished() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let hole = nl.add_named_net("hole");
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::And), &[a, hole], Some("z"))
            .unwrap();
        let _unused = nl
            .add_gate(GateKind::Prim(PrimOp::Not), &[a], Some("unused"))
            .unwrap();
        nl.mark_output(z);
        let ds = lint_netlist(&nl);
        assert!(codes(&ds).contains(&"NL002"), "{ds:?}");
        assert!(codes(&ds).contains(&"NL004"), "{ds:?}");
        let undriven = ds.iter().find(|d| d.rule.code() == "NL002").unwrap();
        assert!(undriven.location.contains("t:hole"), "{undriven:?}");
    }

    #[test]
    fn cycle_is_reported_with_member_nets() {
        let mut nl = Netlist::new("loop");
        let a = nl.add_input("a");
        let x = nl.add_named_net("x");
        let y = nl.add_named_net("y");
        nl.add_gate_driving(GateKind::Prim(PrimOp::And), &[a, y], x)
            .unwrap();
        nl.add_gate_driving(GateKind::Prim(PrimOp::Not), &[x], y)
            .unwrap();
        nl.mark_output(y);
        let ds = lint_netlist(&nl);
        let cyc: Vec<_> = ds.iter().filter(|d| d.rule.code() == "NL001").collect();
        assert_eq!(cyc.len(), 1, "{ds:?}");
        assert!(cyc[0].message.contains('x') && cyc[0].message.contains('y'));
        // The cyclic PO also has no PI in its (settled) cone.
        assert!(codes(&ds).contains(&"NL006"));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut nl = Netlist::new("selfie");
        let a = nl.add_input("a");
        let x = nl.add_named_net("x");
        nl.add_gate_driving(GateKind::Prim(PrimOp::And), &[a, x], x)
            .unwrap();
        nl.mark_output(x);
        let ds = lint_netlist(&nl);
        assert!(codes(&ds).contains(&"NL001"), "{ds:?}");
    }

    #[test]
    fn disconnected_input_is_info() {
        let mut nl = clean();
        nl.add_input("nc");
        let ds = lint_netlist(&nl);
        assert_eq!(codes(&ds), vec!["NL005"]);
        assert!(ds[0].location.contains("t:nc"));
        // The original ISCAS85 netlists ship unconnected inputs; this is
        // an observation, not a warning (it must survive `--deny
        // warnings` over the catalog).
        assert_eq!(ds[0].severity, crate::Severity::Info);
    }

    #[test]
    fn input_marked_as_output_is_fine() {
        let mut nl = clean();
        let feedthrough = nl.add_input("ft");
        nl.mark_output(feedthrough);
        assert_eq!(lint_netlist(&nl), vec![]);
    }

    #[test]
    fn fanout_outlier_is_info() {
        let mut nl = Netlist::new("star");
        let a = nl.add_input("a");
        let mut last = a;
        for i in 0..200 {
            last = nl
                .add_gate(GateKind::Prim(PrimOp::Not), &[a], Some(&format!("g{i}")))
                .unwrap();
        }
        nl.mark_output(last);
        let ds = lint_netlist(&nl);
        let outliers: Vec<_> = ds.iter().filter(|d| d.rule.code() == "NL007").collect();
        assert!(!outliers.is_empty(), "{ds:?}");
        // Everything else in this intentionally silly netlist is dangling,
        // not an error.
        assert!(!ds.iter().any(|d| d.severity == crate::Severity::Error));
    }

    #[test]
    fn multiply_driven_is_caught_on_deserialized_netlists() {
        // The builder API cannot create a doubly-claimed net, but serde
        // can: corrupt the JSON so both gates claim the same output net.
        let nl = clean();
        let js = serde_json::to_string(&nl).unwrap();
        let x = nl.net_by_name("x").unwrap().index();
        let z = nl.net_by_name("z").unwrap().index();
        // Id newtypes serialize as single-element sequences in the shim.
        let needle = format!("\"output\":[{z}]");
        assert!(js.contains(&needle), "{js}");
        let corrupted = js.replace(&needle, &format!("\"output\":[{x}]"));
        let bad: Netlist = serde_json::from_str(&corrupted).unwrap();
        let ds = lint_netlist(&bad);
        assert!(codes(&ds).contains(&"NL003"), "{ds:?}");
    }
}
