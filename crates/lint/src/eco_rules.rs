//! ECO-family audit rules: the incremental re-analysis invariants.
//!
//! The PR 8 daemon's ECO path is only byte-identical to a cold run
//! because of two invariants proved in `sta_core::eco`: the dirty-source
//! set *over*-approximates the sources an edit can affect, and every
//! `SourceCache` slot stays a canonically-sorted, truncated, correctly
//! filed per-source answer. These rules audit both statically.
//!
//! * **ECO001** — for a sampled edit, every source the mask marks clean
//!   must have a bitwise-unchanged *single-source* interval table between
//!   the pre- and post-edit netlists. The single-source DP only traverses
//!   arcs reachable from its seed, so if a clean source's table moved,
//!   the edit reached it — and `dirty_sources` under-approximated.
//!   (Checking "every source whose interval changed is dirty" via cones
//!   would be unsound under reconvergence; the per-source table *is* the
//!   reachability argument.)
//! * **ECO002** — structural `SourceCache` invariants behind the splice:
//!   slot count equals the PI count, each slot is canonically sorted and
//!   within `n_worst`, every cached path is filed under its own source,
//!   and (when the live certificate set is supplied) the splice
//!   reproduces it exactly.
//! * **ECO003** — the dirty mask itself is malformed: wrong length, or a
//!   function-changing edit whose mask is not all-dirty (the dirty-cone
//!   argument only covers delay-only edits).

use crate::diag::{Diagnostic, RuleCode};
use crate::interval::for_source;
use sta_circuits::GateEdit;
use sta_core::{ArcIntervals, CertificateSet, SourceCache, TruePath};
use sta_netlist::Netlist;

/// ECO001 + ECO003: audits one sampled edit's dirty-source mask against
/// per-source abstract intervals of the pre- and post-edit netlists.
/// `arcs_before`/`arcs_after` must be built with the same corner, slew
/// and margin so bitwise table comparison is meaningful.
#[allow(clippy::too_many_arguments)]
pub fn audit_dirty_sources(
    circuit: &str,
    nl_before: &Netlist,
    arcs_before: &ArcIntervals,
    nl_after: &Netlist,
    arcs_after: &ArcIntervals,
    edit: &GateEdit,
    dirty: &[bool],
    input_slew: f64,
) -> Vec<Diagnostic> {
    let mut ds = Vec::new();
    let inputs = nl_after.inputs();
    if dirty.len() != inputs.len() {
        ds.push(Diagnostic::new(
            RuleCode::EcoDirtyMaskMalformed,
            format!("{circuit}:edit"),
            format!(
                "dirty mask has {} entries for {} primary inputs",
                dirty.len(),
                inputs.len()
            ),
        ));
        return ds; // per-source comparison is meaningless on a bad shape
    }
    if edit.function_changed && !dirty.iter().all(|&d| d) {
        ds.push(Diagnostic::new(
            RuleCode::EcoDirtyMaskMalformed,
            format!("{circuit}:edit"),
            "function-changing edit must mark every source dirty".to_string(),
        ));
    }
    if nl_before.inputs() != inputs {
        // ECO edits never add or remove PIs; bail rather than misalign.
        ds.push(Diagnostic::new(
            RuleCode::EcoDirtyMaskMalformed,
            format!("{circuit}:edit"),
            "primary-input set changed across the edit".to_string(),
        ));
        return ds;
    }
    for (i, (&pi, &is_dirty)) in inputs.iter().zip(dirty).enumerate() {
        if is_dirty {
            continue; // over-approximation: dirty sources get re-enumerated
        }
        let before = for_source(nl_before, arcs_before, pi, input_slew);
        let after = for_source(nl_after, arcs_after, pi, input_slew);
        if !before.bitwise_eq(&after) {
            ds.push(Diagnostic::new(
                RuleCode::EcoDirtyUnderapprox,
                format!("{circuit}:{}", nl_after.net_label(pi)),
                format!(
                    "source {i} is marked clean but its per-source interval table changed \
                     under the edit — dirty_sources under-approximates"
                ),
            ));
        }
    }
    ds
}

/// ECO002: structural invariants of a built [`SourceCache`], optionally
/// cross-checked against the certificate set its splice is meant to
/// reproduce. Pass `certs` only when neither side truncated its search
/// (the splice identity does not hold under truncation).
pub fn audit_source_cache(
    circuit: &str,
    nl: &Netlist,
    cache: &SourceCache,
    certs: Option<&CertificateSet>,
) -> Vec<Diagnostic> {
    let mut ds = Vec::new();
    let inputs = nl.inputs();
    if cache.num_sources() != inputs.len() {
        ds.push(Diagnostic::new(
            RuleCode::EcoCacheInvariant,
            format!("{circuit}:cache"),
            format!(
                "cache has {} source slots for {} primary inputs",
                cache.num_sources(),
                inputs.len()
            ),
        ));
        return ds;
    }
    for (i, &pi) in inputs.iter().enumerate() {
        let slot = cache.source_paths(i);
        if let Some(n) = cache.n_worst() {
            if slot.len() > n {
                ds.push(Diagnostic::new(
                    RuleCode::EcoCacheInvariant,
                    format!("{circuit}:{}", nl.net_label(pi)),
                    format!("slot {i} holds {} paths past n_worst {n}", slot.len()),
                ));
            }
        }
        for w in slot.windows(2) {
            if TruePath::canonical_cmp(&w[0], &w[1]).is_gt() {
                ds.push(Diagnostic::new(
                    RuleCode::EcoCacheInvariant,
                    format!("{circuit}:{}", nl.net_label(pi)),
                    format!("slot {i} is not in canonical order"),
                ));
                break;
            }
        }
        for p in slot {
            if p.source != pi {
                ds.push(Diagnostic::new(
                    RuleCode::EcoCacheInvariant,
                    format!("{circuit}:{}", nl.net_label(pi)),
                    format!(
                        "slot {i} holds a path launched from {} — misfiled source",
                        nl.net_label(p.source)
                    ),
                ));
                break;
            }
        }
    }
    if let Some(certs) = certs {
        if cache.splice() != certs.paths {
            ds.push(Diagnostic::new(
                RuleCode::EcoCacheInvariant,
                format!("{circuit}:cache"),
                "splice of the per-source cache does not reproduce the certificate set".to_string(),
            ));
        }
    }
    ds
}
