//! SRV-family audit rules: the serve daemon's NDJSON protocol contract.
//!
//! The daemon's request parser (`sta-serve`) and the checked-in JSON
//! schema (`docs/serve.schema.json`) describe the same wire protocol from
//! two sides, and nothing ties them together at compile time — a new op
//! added to the parser but not the schema (or vice versa) only surfaced
//! at a live session. These rules validate the pair statically, at lint
//! time.
//!
//! `sta-lint` deliberately does not depend on `sta-serve` (the daemon
//! depends on the linter, not the other way around), so the serve crate
//! *describes itself* through a [`ProtocolSpec`]: its enum sets, its
//! field universe, and a battery of exemplar request lines annotated with
//! what its parser and the schema should each say.
//!
//! * **SRV001** — exemplar conformance. For every exemplar: the schema's
//!   verdict must match `schema_should_accept`, and any line the schema
//!   accepts must also be accepted by the parser. (The parser is allowed
//!   to be *more* lenient — it ignores unknown fields — so the reverse
//!   direction is not required.)
//! * **SRV002** — structural drift. The schema's `op`/`kind`/`tech` enum
//!   sets must equal the spec's, its property set must equal the spec's
//!   field universe, `required` must be exactly `["op"]`, and unknown
//!   fields must stay rejected (`additionalProperties: false`).

use crate::diag::{Diagnostic, RuleCode};
use serde::Value;
use std::collections::BTreeSet;

/// One annotated wire-protocol exemplar line.
#[derive(Clone, Debug)]
pub struct ProtocolExemplar {
    /// What the exemplar demonstrates (goes into diagnostics).
    pub description: String,
    /// The raw NDJSON request line.
    pub line: String,
    /// Whether the live parser accepts the line (computed by the serve
    /// crate against its real `parse_request`).
    pub parser_accepts: bool,
    /// Whether the schema is supposed to accept the line.
    pub schema_should_accept: bool,
}

/// The serve crate's self-description, checked against the schema.
#[derive(Clone, Debug)]
pub struct ProtocolSpec {
    /// Every request op the parser knows.
    pub ops: Vec<String>,
    /// Every edit kind the parser knows.
    pub kinds: Vec<String>,
    /// Every technology name the daemon accepts.
    pub techs: Vec<String>,
    /// The full field universe of the wire protocol.
    pub fields: Vec<String>,
    /// Annotated exemplar lines.
    pub exemplars: Vec<ProtocolExemplar>,
}

fn str_set(v: Option<&Value>) -> Option<BTreeSet<String>> {
    match v {
        Some(Value::Seq(items)) => items
            .iter()
            .map(|i| match i {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

fn map_get<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, val)| val),
        _ => None,
    }
}

fn enum_drift(ds: &mut Vec<Diagnostic>, props: &Value, prop: &str, expected: &[String]) {
    let schema_set = map_get(props, prop).and_then(|p| str_set(map_get(p, "enum")));
    let spec_set: BTreeSet<String> = expected.iter().cloned().collect();
    match schema_set {
        Some(s) if s == spec_set => {}
        Some(s) => {
            let missing: Vec<_> = spec_set.difference(&s).cloned().collect();
            let extra: Vec<_> = s.difference(&spec_set).cloned().collect();
            ds.push(Diagnostic::new(
                RuleCode::SrvSchemaDrift,
                format!("serve.schema:{prop}"),
                format!("`{prop}` enum drifted: schema missing {missing:?}, schema-only {extra:?}"),
            ));
        }
        None => ds.push(Diagnostic::new(
            RuleCode::SrvSchemaDrift,
            format!("serve.schema:{prop}"),
            format!("`{prop}` has no string enum in the schema"),
        )),
    }
}

/// Validates the checked-in serve schema against the daemon's
/// [`ProtocolSpec`] (SRV001 exemplar conformance, SRV002 drift).
pub fn check_serve_protocol(schema: &Value, spec: &ProtocolSpec) -> Vec<Diagnostic> {
    let mut ds = Vec::new();

    // SRV002 — structural drift.
    match map_get(schema, "properties") {
        Some(props) => {
            enum_drift(&mut ds, props, "op", &spec.ops);
            enum_drift(&mut ds, props, "kind", &spec.kinds);
            enum_drift(&mut ds, props, "tech", &spec.techs);
            let schema_fields: BTreeSet<String> = match props {
                Value::Map(entries) => entries.iter().map(|(k, _)| k.clone()).collect(),
                _ => BTreeSet::new(),
            };
            let spec_fields: BTreeSet<String> = spec.fields.iter().cloned().collect();
            if schema_fields != spec_fields {
                let missing: Vec<_> = spec_fields.difference(&schema_fields).cloned().collect();
                let extra: Vec<_> = schema_fields.difference(&spec_fields).cloned().collect();
                ds.push(Diagnostic::new(
                    RuleCode::SrvSchemaDrift,
                    "serve.schema:properties".to_string(),
                    format!(
                        "field universe drifted: schema missing {missing:?}, schema-only {extra:?}"
                    ),
                ));
            }
        }
        None => ds.push(Diagnostic::new(
            RuleCode::SrvSchemaDrift,
            "serve.schema:properties".to_string(),
            "schema has no `properties` map".to_string(),
        )),
    }
    match str_set(map_get(schema, "required")) {
        Some(req) if req.len() == 1 && req.contains("op") => {}
        other => ds.push(Diagnostic::new(
            RuleCode::SrvSchemaDrift,
            "serve.schema:required".to_string(),
            format!("`required` must be exactly [\"op\"], schema has {other:?}"),
        )),
    }
    if map_get(schema, "additionalProperties") != Some(&Value::Bool(false)) {
        ds.push(Diagnostic::new(
            RuleCode::SrvSchemaDrift,
            "serve.schema:additionalProperties".to_string(),
            "unknown fields must stay rejected (`additionalProperties: false`)".to_string(),
        ));
    }

    // SRV001 — exemplar conformance.
    for ex in &spec.exemplars {
        let doc: Value = match serde_json::from_str(&ex.line) {
            Ok(d) => d,
            Err(e) => {
                ds.push(Diagnostic::new(
                    RuleCode::SrvSchemaParserDisagree,
                    format!("serve.exemplar:{}", ex.description),
                    format!("exemplar line is not valid JSON: {e}"),
                ));
                continue;
            }
        };
        let schema_accepts = sta_obs::schema::validate(schema, &doc).is_ok();
        if schema_accepts != ex.schema_should_accept {
            ds.push(Diagnostic::new(
                RuleCode::SrvSchemaParserDisagree,
                format!("serve.exemplar:{}", ex.description),
                format!(
                    "schema {} `{}` but the exemplar expects {}",
                    if schema_accepts { "accepts" } else { "rejects" },
                    ex.line,
                    if ex.schema_should_accept {
                        "accept"
                    } else {
                        "reject"
                    },
                ),
            ));
        }
        if schema_accepts && !ex.parser_accepts {
            ds.push(Diagnostic::new(
                RuleCode::SrvSchemaParserDisagree,
                format!("serve.exemplar:{}", ex.description),
                format!(
                    "schema accepts `{}` but the daemon parser rejects it",
                    ex.line
                ),
            ));
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_schema() -> Value {
        serde_json::from_str(
            r#"{
              "type": "object",
              "required": ["op"],
              "additionalProperties": false,
              "properties": {
                "op": {"type": "string", "enum": ["status"]}
              }
            }"#,
        )
        .unwrap()
    }

    fn tiny_spec() -> ProtocolSpec {
        ProtocolSpec {
            ops: vec!["status".into()],
            kinds: vec![],
            techs: vec![],
            fields: vec!["op".into()],
            exemplars: vec![ProtocolExemplar {
                description: "status".into(),
                line: r#"{"op":"status"}"#.into(),
                parser_accepts: true,
                schema_should_accept: true,
            }],
        }
    }

    #[test]
    fn aligned_schema_and_spec_are_clean_modulo_missing_enums() {
        // kind/tech enums are absent from the tiny schema, so exactly two
        // SRV002 findings fire — and nothing else.
        let ds = check_serve_protocol(&tiny_schema(), &tiny_spec());
        assert_eq!(ds.len(), 2, "{ds:?}");
        assert!(ds.iter().all(|d| d.rule.code() == "SRV002"));
    }

    #[test]
    fn op_enum_drift_is_srv002() {
        let schema = tiny_schema();
        let mut spec = tiny_spec();
        spec.ops.push("audit".into());
        let ds = check_serve_protocol(&schema, &spec);
        assert!(ds
            .iter()
            .any(|d| d.rule.code() == "SRV002" && d.message.contains("audit")));
    }

    #[test]
    fn schema_parser_disagreement_is_srv001() {
        let schema = tiny_schema();
        let mut spec = tiny_spec();
        spec.exemplars[0].parser_accepts = false;
        let ds = check_serve_protocol(&schema, &spec);
        assert!(ds.iter().any(|d| d.rule.code() == "SRV001"), "{ds:?}");
    }
}
