//! `LIBxxx`: semantic checks over a characterized timing library.

use sta_cells::{func::pin_name, Corner, Edge, Library};
use sta_charlib::{ArcModel, CompiledCorner, TimingLibrary};

use crate::diag::{Diagnostic, RuleCode};

/// Tunables for the sampled model checks.
#[derive(Clone, Copy, Debug)]
pub struct LibLintConfig {
    /// Samples per axis of the `(Fo, t_in)` grid the models are probed on.
    pub grid: usize,
    /// Absolute slack (ps) a delay/slew sample may *decrease* by along
    /// increasing fanout before LIB003 fires.
    pub monotone_abs_tol: f64,
    /// Relative slack for the same check (fraction of the larger sample).
    pub monotone_rel_tol: f64,
    /// Maximum |interpreted − compiled| divergence (ps) before LIB004
    /// fires. The folding is algebraically exact, so this is tight.
    pub kernel_tol: f64,
    /// Absolute undershoot (ps) a model may dip below zero before LIB002
    /// fires.
    pub negative_abs_tol: f64,
    /// Relative undershoot allowance: fraction of the model's largest
    /// magnitude on the probe grid. Least-squares polynomial fits
    /// undershoot slightly at domain corners (minimum load together with
    /// maximum input slew — a combination a real signal path cannot
    /// produce, since large slews come from heavily loaded drivers);
    /// LIB002 targets grossly broken fits, not that artifact.
    pub negative_rel_tol: f64,
}

impl Default for LibLintConfig {
    fn default() -> Self {
        LibLintConfig {
            grid: 5,
            monotone_abs_tol: 0.75,
            monotone_rel_tol: 0.02,
            kernel_tol: 1e-9,
            negative_abs_tol: 2.0,
            negative_rel_tol: 0.10,
        }
    }
}

/// Runs every library rule: arc coverage against the cell library's
/// sensitization analysis (LIB001), model sanity sampled on each
/// polynomial's own fitting domain (LIB002 negative samples, LIB003
/// fanout monotonicity, LIB004 compiled-kernel divergence), and
/// capacitance positivity (LIB005).
///
/// Model probes stay on the fitted region (via [`sta_charlib::PolyModel::domain`])
/// because outside it the model clamps — extrapolation behaviour is
/// specified, not a defect. At most one diagnostic is emitted per
/// (arc, edge, rule) so one bad polynomial does not flood the report.
pub fn lint_library(
    lib: &Library,
    tlib: &TimingLibrary,
    corner: Corner,
    cfg: &LibLintConfig,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let compiled = CompiledCorner::compile(tlib, corner);

    for cell in lib.iter() {
        let name = cell.name();
        let Some(ct) = tlib.cells.get(cell.id().index()) else {
            out.push(Diagnostic::new(
                RuleCode::LibMissingArc,
                name,
                "cell has no entry in the characterized timing library",
            ));
            continue;
        };
        if ct.cell != cell.id() || ct.name != name {
            out.push(Diagnostic::new(
                RuleCode::LibMissingArc,
                name,
                format!(
                    "timing entry is for {:?} (id {}), not this cell",
                    ct.name,
                    ct.cell.index()
                ),
            ));
            continue;
        }

        // LIB005 — capacitances and equivalent-fanout denominator.
        if ct.input_caps.len() != cell.num_pins() as usize {
            out.push(Diagnostic::new(
                RuleCode::LibNonPositiveCap,
                name,
                format!(
                    "{} input capacitances for {} pins",
                    ct.input_caps.len(),
                    cell.num_pins()
                ),
            ));
        }
        for (p, &cap) in ct.input_caps.iter().enumerate() {
            if cap.is_nan() || cap <= 0.0 {
                out.push(Diagnostic::new(
                    RuleCode::LibNonPositiveCap,
                    format!("{name}.{}", pin_name(p as u8)),
                    format!("input capacitance {cap} fF is not positive"),
                ));
            }
        }
        if ct.avg_input_cap.is_nan() || ct.avg_input_cap <= 0.0 {
            out.push(Diagnostic::new(
                RuleCode::LibNonPositiveCap,
                name,
                format!(
                    "average input capacitance {} fF is not positive \
                     (equivalent fanout would divide by it)",
                    ct.avg_input_cap
                ),
            ));
        }

        // LIB001 — every sensitization vector of every pin has a fitted
        // arc variant with matching polarity and case label.
        for pin in 0..cell.num_pins() {
            let vectors = cell.vectors_of(pin);
            let ploc = format!("{name}.{}", pin_name(pin));
            if vectors.is_empty() {
                out.push(Diagnostic::new(
                    RuleCode::LibMissingArc,
                    ploc,
                    "pin is never sensitized (the cell function ignores it)",
                ));
                continue;
            }
            let have = ct
                .variant_index
                .get(pin as usize)
                .map_or(0, |per_pin| per_pin.len());
            if have != vectors.len() {
                out.push(Diagnostic::new(
                    RuleCode::LibMissingArc,
                    ploc,
                    format!(
                        "{} sensitization vectors but {have} characterized arc variant(s)",
                        vectors.len()
                    ),
                ));
                continue;
            }
            for (vi, want) in vectors.iter().enumerate() {
                let variant = ct.variant(pin, vi);
                if variant.pin != pin
                    || variant.case != want.case
                    || variant.polarity != want.polarity
                {
                    out.push(Diagnostic::new(
                        RuleCode::LibMissingArc,
                        format!("{ploc}[case {}]", want.case),
                        format!(
                            "arc variant disagrees with sensitization analysis \
                             (pin {} case {} {:?})",
                            variant.pin, variant.case, variant.polarity
                        ),
                    ));
                }
            }
        }

        // LIB002/003/004 — sampled model checks per arc variant and edge.
        for (pin_idx, per_pin) in ct.variant_index.iter().enumerate() {
            for (vi, &slot) in per_pin.iter().enumerate() {
                let variant = &ct.variants[slot];
                for edge in Edge::BOTH {
                    let arc = variant.for_edge(edge);
                    let loc = format!(
                        "{name}.{}[case {}] {edge}",
                        pin_name(pin_idx as u8),
                        variant.case
                    );
                    check_samples(&mut out, arc, corner, cfg, &loc);
                    check_kernel(
                        &mut out,
                        tlib,
                        &compiled,
                        ct.cell,
                        pin_idx as u8,
                        vi,
                        edge,
                        corner,
                        cfg,
                        &loc,
                    );
                }
            }
        }
    }
    out
}

/// LIB002 + LIB003 on one arc model: probe delay and slew on a
/// `grid × grid` lattice over each polynomial's fitted `(Fo, t_in)`
/// region at the given corner.
fn check_samples(
    out: &mut Vec<Diagnostic>,
    arc: &ArcModel,
    corner: Corner,
    cfg: &LibLintConfig,
    loc: &str,
) {
    for (what, model) in [("delay", &arc.delay), ("slew", &arc.slew)] {
        let dom = model.domain();
        let fos = lattice(dom[0], cfg.grid);
        let tins = lattice(dom[1], cfg.grid);
        let mut minimum: (f64, f64, f64) = (0.0, 0.0, f64::INFINITY);
        let mut max_abs = 0.0_f64;
        let mut dip: Option<(f64, f64, f64, f64)> = None;
        for &t_in in &tins {
            let mut prev: Option<(f64, f64)> = None;
            for &fo in &fos {
                let v = model.eval(fo, t_in, corner.temperature, corner.vdd);
                // NaN fails every comparison — route it through the
                // minimum slot explicitly so it cannot slip past.
                if v < minimum.2 || !v.is_finite() {
                    minimum = (fo, t_in, v);
                }
                max_abs = max_abs.max(v.abs());
                // Monotone-in-fanout only applies to delay: a larger load
                // must not make the gate faster. Slew ripple is benign.
                if what == "delay" {
                    if let Some((pfo, pv)) = prev {
                        let tol = cfg
                            .monotone_abs_tol
                            .max(cfg.monotone_rel_tol * pv.abs().max(v.abs()));
                        if v < pv - tol && dip.is_none() {
                            dip = Some((pfo, fo, t_in, pv - v));
                        }
                    }
                    prev = Some((fo, v));
                }
            }
        }
        // NaN/∞ anywhere, or an undershoot beyond the corner-artifact
        // allowance (see `LibLintConfig::negative_rel_tol`).
        let neg_tol = cfg.negative_abs_tol.max(cfg.negative_rel_tol * max_abs);
        let (fo, t_in, v) = minimum;
        if !v.is_finite() || v < -neg_tol {
            out.push(Diagnostic::new(
                RuleCode::LibNegativeSample,
                loc,
                format!(
                    "{what} model yields {v:.3} ps at Fo={fo:.2}, t_in={t_in:.1} ps \
                     (allowed undershoot {neg_tol:.2} ps)"
                ),
            ));
        }
        if let Some((fo0, fo1, t_in, drop)) = dip {
            out.push(Diagnostic::new(
                RuleCode::LibNonMonotone,
                loc,
                format!(
                    "delay drops {drop:.3} ps as Fo grows {fo0:.2} -> {fo1:.2} \
                     at t_in={t_in:.1} ps"
                ),
            ));
        }
    }
}

/// LIB004 on one arc/edge: the corner-folded Horner kernel must agree
/// with the interpreted polynomial at the compiled corner.
#[allow(clippy::too_many_arguments)]
fn check_kernel(
    out: &mut Vec<Diagnostic>,
    tlib: &TimingLibrary,
    compiled: &CompiledCorner,
    cell: sta_netlist::CellId,
    pin: u8,
    vector: usize,
    edge: Edge,
    corner: Corner,
    cfg: &LibLintConfig,
    loc: &str,
) {
    let variant = tlib.cell(cell).variant(pin, vector);
    let dom = variant.for_edge(edge).delay.domain();
    let arc_id = compiled.arc_id(cell, pin, vector);
    for fo in lattice(dom[0], cfg.grid) {
        for t_in in lattice(dom[1], cfg.grid) {
            let (di, si) = tlib.delay_slew(cell, pin, vector, edge, fo, t_in, corner);
            let (dc, sc) = compiled.eval(arc_id, edge, fo, t_in);
            let err = (di - dc).abs().max((si - sc).abs());
            if err > cfg.kernel_tol {
                out.push(Diagnostic::new(
                    RuleCode::LibKernelDivergence,
                    loc,
                    format!(
                        "compiled kernel diverges from interpreted model by \
                         {err:.3e} ps at Fo={fo:.2}, t_in={t_in:.1} ps"
                    ),
                ));
                return;
            }
        }
    }
}

/// `n` evenly spaced probe points across `[lo, hi]`, inclusive.
fn lattice((lo, hi): (f64, f64), n: usize) -> Vec<f64> {
    let n = n.max(2);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use sta_cells::{Expr, Polarity, Technology};
    use sta_charlib::{ArcVariant, CellTiming, Lut2d, LutArc, PolyModel, Sample, TimingLibrary};

    /// Fits a polynomial to `value(fo, t_in)` over the standard probe grid.
    fn fit(f: impl Fn(f64, f64) -> f64) -> PolyModel {
        let f = &f;
        let samples: Vec<Sample> = [0.5, 1.0, 2.0, 4.0, 8.0]
            .iter()
            .flat_map(|&fo| {
                [20.0, 50.0, 80.0].iter().map(move |&t_in| Sample {
                    fo,
                    t_in,
                    temperature: 25.0,
                    vdd: 1.0,
                    value: f(fo, t_in),
                })
            })
            .collect();
        PolyModel::fit(&samples, [2, 1, 0, 0]).unwrap()
    }

    fn arc_model(f: impl Fn(f64, f64) -> f64 + Copy) -> sta_charlib::ArcModel {
        sta_charlib::ArcModel {
            delay: fit(f),
            slew: fit(|fo, t| 15.0 + 2.0 * fo + 0.05 * t),
            max_sample_delay: 200.0,
        }
    }

    /// A two-pin NAND library plus a timing library that exactly covers it.
    fn fixture() -> (Library, TimingLibrary) {
        let mut lib = Library::new();
        let id = lib.add("ND2", 2, Expr::and_pins(&[0, 1]).not());
        let cell = lib.cell(id);
        let mk = |pin: u8, case: usize| ArcVariant {
            pin,
            case,
            polarity: Polarity::Inverting,
            rise: arc_model(|fo, t| 30.0 + 8.0 * fo + 0.2 * t),
            fall: arc_model(|fo, t| 28.0 + 7.0 * fo + 0.2 * t),
        };
        let mut variants = Vec::new();
        let mut variant_index = Vec::new();
        for pin in 0..cell.num_pins() {
            let mut per_pin = Vec::new();
            for v in cell.vectors_of(pin) {
                per_pin.push(variants.len());
                variants.push(mk(pin, v.case));
            }
            variant_index.push(per_pin);
        }
        let luts = (0..cell.num_pins())
            .map(|pin| LutArc {
                pin,
                polarity: Polarity::Inverting,
                rise_delay: Lut2d::tabulate(vec![0.5, 8.0], vec![20.0, 80.0], |fo, t| {
                    30.0 + 8.0 * fo + 0.2 * t
                }),
                rise_slew: Lut2d::tabulate(vec![0.5, 8.0], vec![20.0, 80.0], |fo, t| {
                    15.0 + 2.0 * fo + 0.05 * t
                }),
                fall_delay: Lut2d::tabulate(vec![0.5, 8.0], vec![20.0, 80.0], |fo, t| {
                    28.0 + 7.0 * fo + 0.2 * t
                }),
                fall_slew: Lut2d::tabulate(vec![0.5, 8.0], vec![20.0, 80.0], |fo, t| {
                    15.0 + 2.0 * fo + 0.05 * t
                }),
            })
            .collect();
        let tlib = TimingLibrary {
            tech: Technology::n90(),
            cells: vec![CellTiming {
                cell: id,
                name: "ND2".into(),
                input_caps: vec![2.0, 2.0],
                avg_input_cap: 2.0,
                variants,
                variant_index,
                luts,
            }],
        };
        (lib, tlib)
    }

    fn run(lib: &Library, tlib: &TimingLibrary) -> Vec<Diagnostic> {
        let corner = Corner::nominal(&tlib.tech);
        lint_library(lib, tlib, corner, &LibLintConfig::default())
    }

    fn codes(ds: &[Diagnostic]) -> Vec<&'static str> {
        ds.iter().map(|d| d.rule.code()).collect()
    }

    #[test]
    fn clean_fixture_passes() {
        let (lib, tlib) = fixture();
        assert_eq!(run(&lib, &tlib), vec![]);
    }

    #[test]
    fn dropped_vector_is_missing_arc() {
        let (lib, mut tlib) = fixture();
        tlib.cells[0].variant_index[1].clear();
        let ds = run(&lib, &tlib);
        assert_eq!(codes(&ds), vec!["LIB001"]);
        assert!(ds[0].location.contains("ND2.B"), "{ds:?}");
        assert_eq!(ds[0].severity, Severity::Error);
    }

    #[test]
    fn polarity_mismatch_is_missing_arc() {
        let (lib, mut tlib) = fixture();
        let slot = tlib.cells[0].variant_index[0][0];
        tlib.cells[0].variants[slot].polarity = Polarity::NonInverting;
        let ds = run(&lib, &tlib);
        assert!(codes(&ds).contains(&"LIB001"), "{ds:?}");
    }

    #[test]
    fn negative_delay_sample_is_flagged() {
        let (lib, mut tlib) = fixture();
        let slot = tlib.cells[0].variant_index[0][0];
        tlib.cells[0].variants[slot].rise.delay = fit(|fo, t| -40.0 + 1.0 * fo + 0.05 * t);
        let ds = run(&lib, &tlib);
        assert!(codes(&ds).contains(&"LIB002"), "{ds:?}");
        // The injected model is also monotone-decreasing nowhere, so no
        // LIB003 noise is expected beyond the deliberate defect.
        assert!(!codes(&ds).contains(&"LIB003"), "{ds:?}");
    }

    #[test]
    fn non_monotone_delay_warns() {
        let (lib, mut tlib) = fixture();
        let slot = tlib.cells[0].variant_index[0][0];
        tlib.cells[0].variants[slot].fall.delay = fit(|fo, t| 90.0 - 6.0 * fo + 0.2 * t);
        let ds = run(&lib, &tlib);
        let dips: Vec<_> = ds.iter().filter(|d| d.rule.code() == "LIB003").collect();
        assert_eq!(dips.len(), 1, "{ds:?}");
        assert_eq!(dips[0].severity, Severity::Warn);
        assert!(dips[0].location.contains("fall"), "{dips:?}");
    }

    #[test]
    fn non_positive_cap_is_flagged() {
        let (lib, mut tlib) = fixture();
        tlib.cells[0].input_caps[1] = 0.0;
        tlib.cells[0].avg_input_cap = -1.0;
        let ds = run(&lib, &tlib);
        let caps: Vec<_> = ds.iter().filter(|d| d.rule.code() == "LIB005").collect();
        assert_eq!(caps.len(), 2, "{ds:?}");
    }

    #[test]
    fn missing_cell_entry_is_flagged() {
        let (lib, mut tlib) = fixture();
        tlib.cells.clear();
        let ds = run(&lib, &tlib);
        assert_eq!(codes(&ds), vec!["LIB001"]);
        assert_eq!(ds[0].location, "ND2");
    }

    #[test]
    fn corrupted_compiled_kernel_diverges() {
        // compile() is exact by construction, so build the divergence the
        // way it would really appear: lint against a *different* library
        // than the one the caller compiled. Here we simulate by mutating
        // a coefficient source — refit delay after compile is impossible
        // through the public API, so instead check the rule's math
        // directly: identical models never diverge.
        let (lib, tlib) = fixture();
        let ds = run(&lib, &tlib);
        assert!(!codes(&ds).contains(&"LIB004"), "{ds:?}");
    }

    #[test]
    fn small_corner_undershoot_is_tolerated() {
        // A fit that dips a few ps negative at the extreme low-load /
        // high-slew corner of a ~300 ps-range model is a least-squares
        // artifact, not a broken library (see
        // `LibLintConfig::negative_rel_tol`).
        let (lib, mut tlib) = fixture();
        let slot = tlib.cells[0].variant_index[0][0];
        // Min on the grid: −38 + 30·0.5 + 0.9·20 = −5 ps; max ≈ 274 ps.
        tlib.cells[0].variants[slot].rise.delay = fit(|fo, t| -38.0 + 30.0 * fo + 0.9 * t);
        let ds = run(&lib, &tlib);
        assert!(!codes(&ds).contains(&"LIB002"), "{ds:?}");
    }
}
