//! Fault-injection properties: every defect planted by
//! `sta_circuits::transforms` is flagged with its designated rule code,
//! and the clean catalog circuits stay free of error-severity findings.

use proptest::prelude::*;

use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize, CharConfig};
use sta_circuits::{catalog, transforms};
use sta_lint::{lint_library, lint_netlist, Diagnostic, LibLintConfig, Severity};

const CIRCUITS: [&str; 5] = ["c17", "c432", "c499", "c880", "sample"];

fn codes(ds: &[Diagnostic]) -> Vec<&'static str> {
    ds.iter().map(|d| d.rule.code()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Each injector trips exactly the rule it documents, on both the
    /// primitive and the technology-mapped view of a catalog circuit.
    #[test]
    fn injected_defects_are_flagged(
        which in 0usize..CIRCUITS.len(),
        victim in 0usize..10_000,
        mapped in 0usize..2,
    ) {
        let name = CIRCUITS[which];
        let lib = Library::standard();
        let nl = if mapped == 1 {
            catalog::mapped(name, &lib).unwrap().unwrap()
        } else {
            catalog::primitive(name).unwrap()
        };

        // The pristine circuit carries no error-severity finding.
        let clean = lint_netlist(&nl);
        prop_assert!(
            clean.iter().all(|d| d.severity != Severity::Error),
            "{name}: {clean:?}"
        );

        let broken = lint_netlist(&transforms::break_net(&nl, victim));
        prop_assert!(codes(&broken).contains(&"NL002"), "{name}: {broken:?}");

        let cyclic = lint_netlist(&transforms::inject_cycle(&nl));
        prop_assert!(codes(&cyclic).contains(&"NL001"), "{name}: {cyclic:?}");
        prop_assert!(codes(&cyclic).contains(&"NL006"), "{name}: {cyclic:?}");

        let dangling = lint_netlist(&transforms::inject_dangling_net(&nl));
        prop_assert!(codes(&dangling).contains(&"NL004"), "{name}: {dangling:?}");

        let dead = lint_netlist(&transforms::inject_dead_input(&nl));
        prop_assert!(codes(&dead).contains(&"NL005"), "{name}: {dead:?}");
    }
}

/// Dropping a characterized sensitization vector is a LIB001 coverage gap
/// pinned to the damaged cell, and only to it.
#[test]
fn dropped_vector_is_a_coverage_gap() {
    let lib = Library::standard();
    let tech = Technology::n90();
    let mut tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
    let corner = Corner::nominal(&tech);
    let cfg = LibLintConfig::default();

    let before = lint_library(&lib, &tlib, corner, &cfg);
    assert!(
        !codes(&before).contains(&"LIB001"),
        "fixture library already has gaps: {before:?}"
    );

    let aoi21 = lib.cell_by_name("AOI21").unwrap().id();
    assert!(transforms::drop_sensitization_vector(&mut tlib, aoi21, 2));
    let after = lint_library(&lib, &tlib, corner, &cfg);
    let gaps: Vec<_> = after.iter().filter(|d| d.rule.code() == "LIB001").collect();
    assert!(!gaps.is_empty(), "{after:?}");
    assert!(
        gaps.iter().all(|d| d.location.contains("AOI21")),
        "{gaps:?}"
    );
}
