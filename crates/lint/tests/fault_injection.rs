//! Fault-injection properties: every defect planted by
//! `sta_circuits::transforms` is flagged with its designated rule code,
//! and the clean catalog circuits stay free of error-severity findings.

use proptest::prelude::*;

use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize, CharConfig};
use sta_circuits::{catalog, transforms};
use sta_lint::{lint_library, lint_netlist, Diagnostic, LibLintConfig, Severity};

const CIRCUITS: [&str; 5] = ["c17", "c432", "c499", "c880", "sample"];

fn codes(ds: &[Diagnostic]) -> Vec<&'static str> {
    ds.iter().map(|d| d.rule.code()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Each injector trips exactly the rule it documents, on both the
    /// primitive and the technology-mapped view of a catalog circuit.
    #[test]
    fn injected_defects_are_flagged(
        which in 0usize..CIRCUITS.len(),
        victim in 0usize..10_000,
        mapped in 0usize..2,
    ) {
        let name = CIRCUITS[which];
        let lib = Library::standard();
        let nl = if mapped == 1 {
            catalog::mapped(name, &lib).unwrap().unwrap()
        } else {
            catalog::primitive(name).unwrap()
        };

        // The pristine circuit carries no error-severity finding.
        let clean = lint_netlist(&nl);
        prop_assert!(
            clean.iter().all(|d| d.severity != Severity::Error),
            "{name}: {clean:?}"
        );

        let broken = lint_netlist(&transforms::break_net(&nl, victim));
        prop_assert!(codes(&broken).contains(&"NL002"), "{name}: {broken:?}");

        let cyclic = lint_netlist(&transforms::inject_cycle(&nl));
        prop_assert!(codes(&cyclic).contains(&"NL001"), "{name}: {cyclic:?}");
        prop_assert!(codes(&cyclic).contains(&"NL006"), "{name}: {cyclic:?}");

        let dangling = lint_netlist(&transforms::inject_dangling_net(&nl));
        prop_assert!(codes(&dangling).contains(&"NL004"), "{name}: {dangling:?}");

        let dead = lint_netlist(&transforms::inject_dead_input(&nl));
        prop_assert!(codes(&dead).contains(&"NL005"), "{name}: {dead:?}");
    }
}

/// Dropping a characterized sensitization vector is a LIB001 coverage gap
/// pinned to the damaged cell, and only to it.
#[test]
fn dropped_vector_is_a_coverage_gap() {
    let lib = Library::standard();
    let tech = Technology::n90();
    let mut tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
    let corner = Corner::nominal(&tech);
    let cfg = LibLintConfig::default();

    let before = lint_library(&lib, &tlib, corner, &cfg);
    assert!(
        !codes(&before).contains(&"LIB001"),
        "fixture library already has gaps: {before:?}"
    );

    let aoi21 = lib.cell_by_name("AOI21").unwrap().id();
    assert!(transforms::drop_sensitization_vector(&mut tlib, aoi21, 2));
    let after = lint_library(&lib, &tlib, corner, &cfg);
    let gaps: Vec<_> = after.iter().filter(|d| d.rule.code() == "LIB001").collect();
    assert!(!gaps.is_empty(), "{after:?}");
    assert!(
        gaps.iter().all(|d| d.location.contains("AOI21")),
        "{gaps:?}"
    );
}

// ---------------------------------------------------------------------------
// Whole-flow audit injectors (AI / ECO rule families)
// ---------------------------------------------------------------------------

use std::sync::OnceLock;

use sta_charlib::TimingLibrary;
use sta_circuits::resize_gate;
use sta_core::{
    arc_intervals, corrupt_source_cache, dirty_sources, static_bounds, CacheCorruption,
    CertificateSet, EnumerationConfig, PathEnumerator, SourceCache, ARC_SWEEP_MARGIN,
};
use sta_lint::audit_rules::inject;
use sta_netlist::Netlist;

/// Fast-grid timing library shared by the audit-injector tests.
fn fast_tlib() -> &'static TimingLibrary {
    static TLIB: OnceLock<TimingLibrary> = OnceLock::new();
    TLIB.get_or_init(|| {
        characterize(
            &Library::standard(),
            &Technology::n90(),
            &CharConfig::fast(),
        )
        .expect("characterization succeeds")
    })
}

const INPUT_SLEW: f64 = 60.0;

fn nominal() -> Corner {
    Corner::nominal(&Technology::n90())
}

fn enumerate(nl: &Netlist, lib: &Library, n_worst: usize) -> CertificateSet {
    let cfg = EnumerationConfig::new(nominal()).with_n_worst(n_worst);
    let (paths, _) = PathEnumerator::new(nl, lib, fast_tlib(), cfg).run();
    CertificateSet::new(nl, INPUT_SLEW, paths)
}

/// Resizes the first resizable gate at or after the middle of the gate
/// list — the same deterministic sampling the CLI's `--audit-flow` uses.
fn sample_resize(nl: &mut Netlist, lib: &Library) -> Option<sta_circuits::GateEdit> {
    let gids: Vec<_> = nl.gate_ids().collect();
    let n = gids.len();
    for off in 0..n {
        let gid = gids[(n / 2 + off) % n];
        let instance = nl.net_label(nl.gate(gid).output());
        if let Ok(edit) = resize_gate(nl, lib, &instance) {
            return Some(edit);
        }
    }
    None
}

/// Every AI-family injector trips exactly its designated rule code, and
/// the pristine flow stays clean (100 % certificate enclosure).
#[test]
fn audit_injectors_pin_ai_rule_codes() {
    let lib = Library::standard();
    let nl = catalog::mapped("c432", &lib).unwrap().unwrap();
    let corner = nominal();
    let arcs = arc_intervals(&nl, fast_tlib(), corner, INPUT_SLEW, ARC_SWEEP_MARGIN);
    let certs = enumerate(&nl, &lib, 25);
    assert!(!certs.paths.is_empty());

    let clean = sta_lint::audit_certificates(&nl, "c432", &arcs, &certs, INPUT_SLEW);
    assert!(clean.diagnostics.is_empty(), "{:?}", clean.diagnostics);
    assert_eq!(clean.enclosed, clean.certificates, "100% enclosure");

    let mut bad = certs.clone();
    assert!(inject::inflate_certificate_arrival(&mut bad));
    let ds = sta_lint::audit_certificates(&nl, "c432", &arcs, &bad, INPUT_SLEW).diagnostics;
    assert!(codes(&ds).contains(&"AI001"), "{ds:?}");

    let mut bad = certs.clone();
    assert!(inject::corrupt_arc_delay(&mut bad));
    let ds = sta_lint::audit_certificates(&nl, "c432", &arcs, &bad, INPUT_SLEW).diagnostics;
    assert!(codes(&ds).contains(&"AI003"), "{ds:?}");

    let mut bad = certs.clone();
    assert!(inject::corrupt_endpoint_slew(&mut bad));
    let ds = sta_lint::audit_certificates(&nl, "c432", &arcs, &bad, INPUT_SLEW).diagnostics;
    assert!(codes(&ds).contains(&"AI004"), "{ds:?}");

    // AI002: the pruning bound dominates the hull until it is shrunk.
    let hull = sta_lint::hull(&nl, &arcs, INPUT_SLEW);
    let prune_margin = EnumerationConfig::new(corner).prune_margin;
    let mut st = static_bounds(&nl, fast_tlib(), corner, INPUT_SLEW, prune_margin);
    let ds = sta_lint::audit_structural_dominance("c432", &nl, &hull, &st);
    assert!(ds.is_empty(), "{ds:?}");
    assert!(inject::shrink_structural_arrival(&mut st));
    let ds = sta_lint::audit_structural_dominance("c432", &nl, &hull, &st);
    assert!(codes(&ds).contains(&"AI002"), "{ds:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The ECO-family injectors trip their designated rule codes: a
    /// shrunk dirty cone is an ECO001 under-approximation, malformed
    /// masks are ECO003, and every cache corruption mode is ECO002.
    #[test]
    fn eco_injectors_pin_eco_rule_codes(
        which in 0usize..2,
        n_worst in 3usize..8,
    ) {
        let name = ["c17", "sample"][which];
        let lib = Library::standard();
        let nl = catalog::mapped(name, &lib).unwrap().unwrap();
        let corner = nominal();
        let arcs = arc_intervals(&nl, fast_tlib(), corner, INPUT_SLEW, ARC_SWEEP_MARGIN);

        let mut edited = nl.clone();
        let edit = sample_resize(&mut edited, &lib).expect("catalog circuits have a resizable gate");
        prop_assert!(!edit.function_changed);
        let arcs_after = arc_intervals(&edited, fast_tlib(), corner, INPUT_SLEW, ARC_SWEEP_MARGIN);
        let dirty = dirty_sources(&edited, &edit);
        prop_assert!(dirty.iter().any(|&d| d), "a resize dirties its fanin sources");

        let audit = |mask: &[bool], e: &sta_circuits::GateEdit| {
            sta_lint::audit_dirty_sources(
                name, &nl, &arcs, &edited, &arcs_after, e, mask, INPUT_SLEW,
            )
        };

        // The honest mask is clean.
        let ds = audit(&dirty, &edit);
        prop_assert!(ds.is_empty(), "{ds:?}");

        // ECO001 — dropping a genuinely dirty source from the mask.
        let mut shrunk = dirty.clone();
        let dropped = sta_circuits::shrink_dirty_cone(&mut shrunk);
        prop_assert!(dropped.is_some());
        let ds = audit(&shrunk, &edit);
        prop_assert!(codes(&ds).contains(&"ECO001"), "{ds:?}");

        // ECO003 — wrong mask shape.
        let mut short = dirty.clone();
        short.pop();
        let ds = audit(&short, &edit);
        prop_assert!(codes(&ds).contains(&"ECO003"), "{ds:?}");

        // ECO003 — a function-changing edit must dirty every source.
        let mut fedit = edit.clone();
        fedit.function_changed = true;
        let mut partial = vec![true; dirty.len()];
        partial[0] = false;
        let ds = audit(&partial, &fedit);
        prop_assert!(codes(&ds).contains(&"ECO003"), "{ds:?}");

        // ECO002 — every cache corruption mode breaks an invariant the
        // auditor checks; the pristine cache passes with the splice
        // cross-check attached.
        let cfg = EnumerationConfig::new(corner)
            .with_n_worst(n_worst)
            .with_per_source_n_worst(true);
        let enumr = PathEnumerator::new(&nl, &lib, fast_tlib(), cfg);
        let (cache, stats) = SourceCache::build(&enumr);
        drop(enumr);
        let certs = enumerate(&nl, &lib, n_worst);
        let splice_certs = (!stats.truncated).then_some(&certs);
        let ds = sta_lint::audit_source_cache(name, &nl, &cache, splice_certs);
        prop_assert!(ds.is_empty(), "{ds:?}");
        for mode in [
            CacheCorruption::Misfile,
            CacheCorruption::Unsort,
            CacheCorruption::Overfill,
        ] {
            let mut broken = cache.clone();
            if corrupt_source_cache(&mut broken, mode) {
                let ds = sta_lint::audit_source_cache(name, &nl, &broken, None);
                prop_assert!(codes(&ds).contains(&"ECO002"), "{mode:?}: {ds:?}");
            }
        }
    }
}
