//! Array multiplier generator — the structure-faithful surrogate for
//! ISCAS-85 c6288 (a 16×16 array multiplier).
//!
//! Partial products feed a carry-save reduction tree of half/full adders
//! and a final ripple adder. The full-adder carry (`a·b + (a⊕b)·cin`) is a
//! textbook sum-of-products the technology mapper covers with an AO22 —
//! exactly the complex-gate-rich fabric the paper's experiments need.

use sta_netlist::{GateKind, NetId, Netlist, PrimOp};

/// Generates an `n × n` array multiplier (`2n` inputs, `2n` outputs).
///
/// # Panics
///
/// Panics if `n < 2` (a 1×1 "multiplier" is a single AND gate, not a
/// benchmark).
pub fn array_multiplier(n: usize) -> Netlist {
    assert!(n >= 2, "multiplier width must be at least 2");
    let mut nl = Netlist::new(format!("mult{n}x{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let gate = |nl: &mut Netlist, op: PrimOp, ins: &[NetId]| -> NetId {
        nl.add_gate(GateKind::Prim(op), ins, None)
            .expect("generator produces valid gates")
    };
    // Partial products, bucketed by weight.
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 2 * n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = gate(&mut nl, PrimOp::And, &[ai, bj]);
            columns[i + j].push(pp);
        }
    }
    // Carry-save reduction: full/half adders until every column has ≤ 2
    // bits.
    loop {
        let needs_work = columns.iter().any(|c| c.len() > 2);
        if !needs_work {
            break;
        }
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); columns.len() + 1];
        for (w, col) in columns.iter().enumerate() {
            let mut bits = col.clone();
            while bits.len() >= 3 {
                let (x, y, z) = (bits.remove(0), bits.remove(0), bits.remove(0));
                let (s, c) = full_adder(&mut nl, x, y, z);
                next[w].push(s);
                next[w + 1].push(c);
            }
            if bits.len() == 2 && col.len() > 2 {
                let (x, y) = (bits.remove(0), bits.remove(0));
                let (s, c) = half_adder(&mut nl, x, y);
                next[w].push(s);
                next[w + 1].push(c);
            }
            next[w].append(&mut bits);
        }
        while next.last().is_some_and(Vec::is_empty) {
            next.pop();
        }
        columns = next;
    }
    // Final ripple adder over the remaining two rows.
    let mut carry: Option<NetId> = None;
    let mut product = Vec::with_capacity(2 * n);
    for col in &columns {
        let sum = match (col.len(), carry) {
            (0, None) => continue,
            (0, Some(c)) => {
                carry = None;
                c
            }
            (1, None) => col[0],
            (1, Some(c)) => {
                let (s, co) = half_adder(&mut nl, col[0], c);
                carry = Some(co);
                s
            }
            (2, None) => {
                let (s, co) = half_adder(&mut nl, col[0], col[1]);
                carry = Some(co);
                s
            }
            (2, Some(c)) => {
                let (s, co) = full_adder(&mut nl, col[0], col[1], c);
                carry = Some(co);
                s
            }
            _ => unreachable!("columns reduced to ≤ 2 bits"),
        };
        product.push(sum);
    }
    if let Some(c) = carry {
        product.push(c);
    }
    for &p in product.iter().take(2 * n) {
        nl.mark_output(p);
    }
    nl.validate().expect("generated multiplier is a valid DAG");
    nl
}

/// Full adder: `s = a ⊕ b ⊕ cin`, `cout = a·b + (a⊕b)·cin`.
fn full_adder(nl: &mut Netlist, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
    let g = |nl: &mut Netlist, op: PrimOp, ins: &[NetId]| -> NetId {
        nl.add_gate(GateKind::Prim(op), ins, None).expect("valid")
    };
    let x = g(nl, PrimOp::Xor, &[a, b]);
    let s = g(nl, PrimOp::Xor, &[x, cin]);
    let p1 = g(nl, PrimOp::And, &[a, b]);
    let p2 = g(nl, PrimOp::And, &[x, cin]);
    let cout = g(nl, PrimOp::Or, &[p1, p2]);
    (s, cout)
}

/// Half adder: `s = a ⊕ b`, `cout = a·b`.
fn half_adder(nl: &mut Netlist, a: NetId, b: NetId) -> (NetId, NetId) {
    let s = nl
        .add_gate(GateKind::Prim(PrimOp::Xor), &[a, b], None)
        .expect("valid");
    let c = nl
        .add_gate(GateKind::Prim(PrimOp::And), &[a, b], None)
        .expect("valid");
    (s, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_mult(nl: &Netlist, n: usize, a: u64, b: u64) -> u64 {
        let mut assignment = Vec::with_capacity(2 * n);
        for i in 0..n {
            assignment.push(a >> i & 1 == 1);
        }
        for i in 0..n {
            assignment.push(b >> i & 1 == 1);
        }
        let out = nl.eval_prim(&assignment);
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i))
    }

    #[test]
    fn four_bit_multiplier_is_exact() {
        let nl = array_multiplier(4);
        assert_eq!(nl.inputs().len(), 8);
        assert_eq!(nl.outputs().len(), 8);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(eval_mult(&nl, 4, a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn sixteen_bit_spot_checks() {
        let nl = array_multiplier(16);
        assert_eq!(nl.inputs().len(), 32);
        assert_eq!(nl.outputs().len(), 32);
        for (a, b) in [
            (0u64, 0u64),
            (65535, 65535),
            (12345, 54321),
            (40000, 3),
            (256, 256),
        ] {
            assert_eq!(eval_mult(&nl, 16, a, b), a * b, "{a}*{b}");
        }
        // Size in the c6288 ballpark (c6288: 2406 gates).
        let gates = nl.num_gates();
        assert!(
            (1200..4000).contains(&gates),
            "unexpected gate count {gates}"
        );
    }
}
