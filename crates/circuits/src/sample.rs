//! The paper's Fig. 4 sample circuit: a small network whose critical path
//! runs through input A of an AO22 complex gate.
//!
//! The AO22 can be sensitized through A three ways (Table 1). The easiest
//! assignment — both pins of the *other* AND branch at 0, which needs no
//! justification beyond a couple of direct input values — is also the
//! *fastest* one, so a tool that stops at the easiest vector (the
//! commercial baseline) reports an optimistic critical-path delay. The
//! harder vector, which requires justifying the internal node `n13`
//! through a NAND gate, is ~7 % slower in the paper's Table 5 — and it is
//! the one the developed tool additionally reports.

use sta_netlist::{GateKind, Netlist, PrimOp};

/// Builds the Fig.-4-style sample circuit (primitive gates; run the
/// technology mapper to obtain the AO22).
///
/// Structure (inputs `N1..N7`, output `N20`):
///
/// ```text
/// n10 = NAND(N1, N2)
/// n13 = NAND(N6, N7)
/// n11 = n10·N3 + n13·N4     (maps to AO22: A = n10, B = N3, C = n13, D = N4)
/// n12 = NAND(n11, N5)
/// N20 = NOT(n12)
/// ```
///
/// The critical path is `N1 → n10 → n11 → n12 → N20`. Sensitizing the
/// AO22's A pin with Case 1 needs `n13 = 0, N4 = 0` (easy: `N6 = N7 = 1`);
/// Case 2 needs `n13 = 1` — a justification through the NAND — and is the
/// slower vector the baseline misses.
pub fn sample_circuit() -> Netlist {
    let mut nl = Netlist::new("fig4_sample");
    let n1 = nl.add_input("N1");
    let n2 = nl.add_input("N2");
    let n3 = nl.add_input("N3");
    let n4 = nl.add_input("N4");
    let n5 = nl.add_input("N5");
    let n6 = nl.add_input("N6");
    let n7 = nl.add_input("N7");
    let n10 = nl
        .add_gate(GateKind::Prim(PrimOp::Nand), &[n1, n2], Some("n10"))
        .expect("valid");
    let n13 = nl
        .add_gate(GateKind::Prim(PrimOp::Nand), &[n6, n7], Some("n13"))
        .expect("valid");
    let t1 = nl
        .add_gate(GateKind::Prim(PrimOp::And), &[n10, n3], None)
        .expect("valid");
    let t2 = nl
        .add_gate(GateKind::Prim(PrimOp::And), &[n13, n4], None)
        .expect("valid");
    let n11 = nl
        .add_gate(GateKind::Prim(PrimOp::Or), &[t1, t2], Some("n11"))
        .expect("valid");
    let n12 = nl
        .add_gate(GateKind::Prim(PrimOp::Nand), &[n11, n5], Some("n12"))
        .expect("valid");
    let n20 = nl
        .add_gate(GateKind::Prim(PrimOp::Not), &[n12], Some("N20"))
        .expect("valid");
    nl.mark_output(n20);
    nl.validate().expect("sample circuit is valid");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::map_netlist;
    use sta_cells::Library;

    #[test]
    fn maps_with_an_ao22_on_the_path() {
        let lib = Library::standard();
        let raw = sample_circuit();
        let mapped = map_netlist(&raw, &lib).unwrap();
        let names: Vec<&str> = mapped
            .gate_ids()
            .map(|g| match mapped.gate(g).kind() {
                GateKind::Cell(c) => lib.cell(c).name(),
                GateKind::Prim(_) => "prim",
            })
            .collect();
        assert!(names.contains(&"AO22"), "{names:?}");
        assert_eq!(mapped.num_gates(), 5, "{names:?}");
        // Equivalence on all 128 input patterns.
        for bits in 0..128u32 {
            let v: Vec<bool> = (0..7).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(raw.eval_prim(&v), lib.eval_netlist(&mapped, &v));
        }
    }
}
