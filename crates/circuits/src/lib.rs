//! Benchmark circuits and technology mapping for the STA reproduction.
//!
//! The paper evaluates on the ISCAS-85 combinational benchmarks
//! synthesized for three technologies. The published netlists are not
//! shipped here, so this crate provides (see DESIGN.md §4):
//!
//! * the exact, tiny [`catalog::C17_BENCH`];
//! * *structure-faithful generators* for the rest — an array multiplier
//!   ([`mult`], c6288), a 32-bit SEC circuit ([`ecc`], c499/c1355), an
//!   8-bit ALU ([`alu`], c880), a 27-channel priority interrupt
//!   controller ([`priority`], c432), and seeded random logic at matched
//!   sizes ([`randlogic`], c1908/c2670/c3540/c5315/c7552);
//! * the paper's Fig. 4 [`sample`] circuit;
//! * a [`mapper`] that covers primitive netlists with the standard-cell
//!   library, introducing the AO22/OA12/AOI/OAI complex gates the paper's
//!   experiments study;
//! * netlist [`transforms`] (XOR → NAND expansion, the c499 → c1355
//!   relationship).
//!
//! # Example
//!
//! ```
//! use sta_cells::Library;
//! use sta_circuits::catalog;
//!
//! # fn main() -> Result<(), sta_netlist::NetlistError> {
//! let lib = Library::standard();
//! let mapped = catalog::mapped("c17", &lib)?.expect("known benchmark");
//! assert_eq!(mapped.num_gates(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
pub mod catalog;
pub mod ecc;
pub mod mapper;
pub mod mult;
pub mod priority;
pub mod randlogic;
pub mod sample;
pub mod transforms;

pub use catalog::{
    benchmark_info, from_bench_file, mapped, names, primitive, primitive_with_overrides,
    BenchmarkInfo, BENCHMARKS,
};
pub use mapper::map_netlist;
pub use sample::sample_circuit;
pub use transforms::{resize_gate, rewire_net, shrink_dirty_cone, swap_gate, EditError, GateEdit};
