//! Netlist-to-netlist transformations used by the benchmark generators.

use std::collections::HashMap;

use sta_netlist::{GateKind, NetId, Netlist, PrimOp};

/// Rewrites every XOR/XNOR into the classic four-NAND structure (the
/// relationship between ISCAS-85 c499 and c1355). Wide XORs are first
/// split into 2-input trees.
///
/// ```text
/// a ⊕ b:  n1 = NAND(a, b); n2 = NAND(a, n1); n3 = NAND(b, n1);
///         z = NAND(n2, n3)
/// ```
pub fn expand_xor(nl: &Netlist) -> Netlist {
    let mut out = Netlist::new(format!("{}_nand", nl.name()));
    let mut newid: HashMap<NetId, NetId> = HashMap::new();
    for &pi in nl.inputs() {
        newid.insert(pi, out.add_input(nl.net_label(pi)));
    }
    let g = |out: &mut Netlist, op: PrimOp, ins: &[NetId]| -> NetId {
        out.add_gate(GateKind::Prim(op), ins, None).expect("valid")
    };
    let xor2 = |out: &mut Netlist, a: NetId, b: NetId| -> NetId {
        let n1 = g(out, PrimOp::Nand, &[a, b]);
        let n2 = g(out, PrimOp::Nand, &[a, n1]);
        let n3 = g(out, PrimOp::Nand, &[b, n1]);
        g(out, PrimOp::Nand, &[n2, n3])
    };
    for gid in nl.topo_gates() {
        let gate = nl.gate(gid);
        let op = match gate.kind() {
            GateKind::Prim(op) => op,
            GateKind::Cell(_) => panic!("expand_xor operates on primitive netlists"),
        };
        let ins: Vec<NetId> = gate.inputs().iter().map(|n| newid[n]).collect();
        let result = match op {
            PrimOp::Xor | PrimOp::Xnor => {
                let mut acc = ins[0];
                for &i in &ins[1..] {
                    acc = xor2(&mut out, acc, i);
                }
                if op == PrimOp::Xnor {
                    g(&mut out, PrimOp::Not, &[acc])
                } else {
                    acc
                }
            }
            other => g(&mut out, other, &ins),
        };
        newid.insert(gate.output(), result);
    }
    for &po in nl.outputs() {
        out.mark_output(newid[&po]);
    }
    out.validate().expect("expansion preserves validity");
    out
}

// ---------------------------------------------------------------------------
// Fault injectors.
// ---------------------------------------------------------------------------
//
// Deliberately damaged copies of a netlist (or timing library) for
// exercising `sta-lint`'s rule codes. The builder API refuses to construct
// most of these defects directly, so each injector either rebuilds the
// netlist around the defect or appends a broken fragment; the input is
// never modified. Injected nets carry a `lint_` name prefix so diagnostics
// are easy to trace back to the injection site.

/// Reroutes one input pin of the `victim`-th gate (topological order,
/// modulo the gate count) to a fresh net that nothing drives. The damaged
/// connection makes `sta-lint` report the fresh net as undriven (NL002).
///
/// # Panics
///
/// Panics if the netlist has no gates.
pub fn break_net(nl: &Netlist, victim: usize) -> Netlist {
    let mut out = Netlist::new(format!("{}_broken", nl.name()));
    let mut newid: HashMap<NetId, NetId> = HashMap::new();
    for &pi in nl.inputs() {
        newid.insert(pi, out.add_input(nl.net_label(pi)));
    }
    let order = nl.topo_gates();
    let victim = order[victim % order.len()];
    for &gid in &order {
        let gate = nl.gate(gid);
        let mut ins: Vec<NetId> = gate.inputs().iter().map(|n| newid[n]).collect();
        if gid == victim {
            ins[0] = out.add_named_net("lint_break");
        }
        // Only genuine names survive: `net_label`'s synthesized "nN"
        // fallbacks would collide with real ISCAS net names.
        let z = out
            .add_gate(gate.kind(), &ins, nl.net(gate.output()).name())
            .expect("rebuild preserves validity");
        newid.insert(gate.output(), z);
    }
    for &po in nl.outputs() {
        out.mark_output(newid[&po]);
    }
    out
}

/// Appends a two-gate combinational feedback loop feeding a new primary
/// output. `sta-lint` reports the loop as NL001 (and the new output, whose
/// cone never settles, as NL006).
pub fn inject_cycle(nl: &Netlist) -> Netlist {
    let mut out = nl.clone();
    let seed = out
        .inputs()
        .first()
        .copied()
        .unwrap_or_else(|| out.add_input("lint_seed"));
    let x = out.add_named_net("lint_cycle_x");
    let y = out.add_named_net("lint_cycle_y");
    out.add_gate_driving(GateKind::Prim(PrimOp::And), &[seed, y], x)
        .expect("fresh nets are drivable");
    out.add_gate_driving(GateKind::Prim(PrimOp::Not), &[x], y)
        .expect("fresh nets are drivable");
    out.mark_output(y);
    out
}

/// Appends a gate whose output drives nothing and is not marked as a
/// primary output — a dangling net (NL004).
pub fn inject_dangling_net(nl: &Netlist) -> Netlist {
    let mut out = nl.clone();
    let seed = out
        .inputs()
        .first()
        .copied()
        .unwrap_or_else(|| out.add_input("lint_seed"));
    out.add_gate(GateKind::Prim(PrimOp::Not), &[seed], Some("lint_dangle"))
        .expect("fresh nets are drivable");
    out
}

/// Appends a primary input that feeds nothing (NL005).
pub fn inject_dead_input(nl: &Netlist) -> Netlist {
    let mut out = nl.clone();
    out.add_input("lint_dead");
    out
}

/// Removes the last characterized arc variant of `(cell, pin)` from the
/// timing library, leaving a sensitization-vector coverage gap (LIB001).
/// Returns `false` if the cell or pin has no variant to drop.
pub fn drop_sensitization_vector(
    tlib: &mut sta_charlib::TimingLibrary,
    cell: sta_netlist::CellId,
    pin: u8,
) -> bool {
    let Some(ct) = tlib.cells.get_mut(cell.index()) else {
        return false;
    };
    match ct.variant_index.get_mut(pin as usize) {
        Some(per_pin) if !per_pin.is_empty() => {
            per_pin.pop();
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_preserves_parity_function() {
        let mut nl = Netlist::new("p");
        let ins: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Xor), &ins, Some("z"))
            .unwrap();
        let w = nl
            .add_gate(GateKind::Prim(PrimOp::Xnor), &[ins[0], ins[1]], Some("w"))
            .unwrap();
        nl.mark_output(z);
        nl.mark_output(w);
        let expanded = expand_xor(&nl);
        assert!(expanded.gate_ids().all(|g| !matches!(
            expanded.gate(g).kind(),
            GateKind::Prim(PrimOp::Xor | PrimOp::Xnor)
        )));
        for bits in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(nl.eval_prim(&v), expanded.eval_prim(&v), "{bits:04b}");
        }
    }

    fn two_gate() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[a, b], Some("x"))
            .unwrap();
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Not), &[x], Some("z"))
            .unwrap();
        nl.mark_output(z);
        nl
    }

    // Structural facts only — the rule-code assertions live in
    // `sta-lint`'s fault-injection tests (lint depends on this crate, not
    // the other way around).

    #[test]
    fn break_net_reroutes_one_pin_to_a_floating_net() {
        let nl = two_gate();
        let broken = break_net(&nl, 0);
        let hole = broken.net_by_name("lint_break").unwrap();
        assert!(broken.net(hole).driver().is_none());
        assert!(!broken.net(hole).fanout().is_empty());
        assert_eq!(broken.num_gates(), nl.num_gates());
        // The victim cycles modulo the gate count.
        assert!(break_net(&nl, 7).net_by_name("lint_break").is_some());
    }

    #[test]
    fn inject_cycle_feeds_a_gate_from_its_own_cone() {
        let nl = two_gate();
        let cyclic = inject_cycle(&nl);
        let x = cyclic.net_by_name("lint_cycle_x").unwrap();
        let y = cyclic.net_by_name("lint_cycle_y").unwrap();
        let and_gate = cyclic.net(x).driver().unwrap();
        assert!(cyclic.gate(and_gate).inputs().contains(&y));
        assert_eq!(
            cyclic.net(y).driver().map(|g| cyclic.gate(g).output()),
            Some(y)
        );
        assert!(cyclic.outputs().contains(&y));
    }

    #[test]
    fn dangling_and_dead_injections_add_disconnected_nets() {
        let nl = two_gate();
        let dangle = inject_dangling_net(&nl);
        let d = dangle.net_by_name("lint_dangle").unwrap();
        assert!(dangle.net(d).fanout().is_empty() && !dangle.outputs().contains(&d));
        let dead = inject_dead_input(&nl);
        let i = dead.net_by_name("lint_dead").unwrap();
        assert!(dead.net(i).is_input() && dead.net(i).fanout().is_empty());
    }
}
