//! Netlist-to-netlist transformations used by the benchmark generators,
//! plus the in-place ECO edit operations (`swap_gate`, `resize_gate`,
//! `rewire_net`) the timing daemon's incremental re-analysis path applies.

use std::collections::HashMap;
use std::fmt;

use sta_cells::Library;
use sta_netlist::{GateId, GateKind, NetId, Netlist, NetlistError, PrimOp};

/// Rewrites every XOR/XNOR into the classic four-NAND structure (the
/// relationship between ISCAS-85 c499 and c1355). Wide XORs are first
/// split into 2-input trees.
///
/// ```text
/// a ⊕ b:  n1 = NAND(a, b); n2 = NAND(a, n1); n3 = NAND(b, n1);
///         z = NAND(n2, n3)
/// ```
pub fn expand_xor(nl: &Netlist) -> Netlist {
    let mut out = Netlist::new(format!("{}_nand", nl.name()));
    let mut newid: HashMap<NetId, NetId> = HashMap::new();
    for &pi in nl.inputs() {
        newid.insert(pi, out.add_input(nl.net_label(pi)));
    }
    let g = |out: &mut Netlist, op: PrimOp, ins: &[NetId]| -> NetId {
        out.add_gate(GateKind::Prim(op), ins, None).expect("valid")
    };
    let xor2 = |out: &mut Netlist, a: NetId, b: NetId| -> NetId {
        let n1 = g(out, PrimOp::Nand, &[a, b]);
        let n2 = g(out, PrimOp::Nand, &[a, n1]);
        let n3 = g(out, PrimOp::Nand, &[b, n1]);
        g(out, PrimOp::Nand, &[n2, n3])
    };
    for gid in nl.topo_gates() {
        let gate = nl.gate(gid);
        let op = match gate.kind() {
            GateKind::Prim(op) => op,
            GateKind::Cell(_) => panic!("expand_xor operates on primitive netlists"),
        };
        let ins: Vec<NetId> = gate.inputs().iter().map(|n| newid[n]).collect();
        let result = match op {
            PrimOp::Xor | PrimOp::Xnor => {
                let mut acc = ins[0];
                for &i in &ins[1..] {
                    acc = xor2(&mut out, acc, i);
                }
                if op == PrimOp::Xnor {
                    g(&mut out, PrimOp::Not, &[acc])
                } else {
                    acc
                }
            }
            other => g(&mut out, other, &ins),
        };
        newid.insert(gate.output(), result);
    }
    for &po in nl.outputs() {
        out.mark_output(newid[&po]);
    }
    out.validate().expect("expansion preserves validity");
    out
}

// ---------------------------------------------------------------------------
// ECO edit operations.
// ---------------------------------------------------------------------------
//
// Unlike the fault injectors below, these mutate the netlist *in place* —
// they are the legal edits an optimization client issues against a loaded
// design (gate swap, drive resize, net rewire). Gates are addressed by the
// name of the net they drive, the same convention the rest of the tool uses
// in diagnostics. Every edit returns a `GateEdit` receipt describing what
// changed; `sta-core::eco` turns that receipt into a dirty source cone.

/// A failed ECO edit. Each variant names the offending entity so daemon
/// clients get an actionable error instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EditError {
    /// No net with the given name exists in the design.
    UnknownNet(String),
    /// The named net is not driven by a gate (it is a primary input), so it
    /// does not address a gate instance.
    UnknownInstance(String),
    /// The named cell type does not exist in the library.
    UnknownCell(String),
    /// The replacement cell's pin count differs from the instance's fan-in.
    IncompatiblePinCount {
        /// Replacement cell name.
        cell: String,
        /// Pins the replacement cell has.
        want: usize,
        /// Pins the instance actually wires.
        got: usize,
    },
    /// The addressed gate is a raw primitive, not a library cell — ECO
    /// edits operate on technology-mapped netlists.
    NotACell(String),
    /// The instance's cell type has no alternate drive strength in the
    /// library.
    NoDriveVariant(String),
    /// The pin index is out of range for the addressed gate.
    BadPin {
        /// Instance (output-net) name.
        instance: String,
        /// Requested pin.
        pin: usize,
        /// The gate's fan-in.
        fanin: usize,
    },
    /// The rewire would create a combinational cycle; the netlist is
    /// unchanged.
    WouldCycle(String),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownNet(n) => write!(f, "unknown net {n:?}"),
            EditError::UnknownInstance(n) => {
                write!(f, "net {n:?} is not driven by a gate instance")
            }
            EditError::UnknownCell(c) => write!(f, "unknown library cell {c:?}"),
            EditError::IncompatiblePinCount { cell, want, got } => {
                write!(
                    f,
                    "cell {cell} has {want} pins but the instance wires {got}"
                )
            }
            EditError::NotACell(n) => {
                write!(f, "gate driving {n:?} is a primitive, not a library cell")
            }
            EditError::NoDriveVariant(c) => {
                write!(f, "cell {c} has no alternate drive strength in the library")
            }
            EditError::BadPin {
                instance,
                pin,
                fanin,
            } => {
                write!(
                    f,
                    "pin {pin} out of range for {instance:?} (fan-in {fanin})"
                )
            }
            EditError::WouldCycle(n) => {
                write!(f, "rewiring {n:?} would create a combinational cycle")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// Receipt of an applied ECO edit: which gate changed, the nets whose
/// timing context the edit touched, and whether the gate's logic function
/// changed (a function change invalidates justification reasoning globally,
/// not just structurally — see `sta-core::eco`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateEdit {
    /// The edited gate.
    pub gate: GateId,
    /// Nets whose delay/slew/load context changed: the gate's input nets
    /// and output net (for a rewire, both the old and new source nets).
    pub touched: Vec<NetId>,
    /// Whether the gate's truth table (and hence its sensitization-vector
    /// sets) changed.
    pub function_changed: bool,
}

/// Resolves an instance name (the name of the net a gate drives) to the
/// driving gate.
fn resolve_instance(nl: &Netlist, instance: &str) -> Result<GateId, EditError> {
    let net = nl
        .net_by_name(instance)
        .ok_or_else(|| EditError::UnknownNet(instance.to_string()))?;
    nl.net(net)
        .driver()
        .ok_or_else(|| EditError::UnknownInstance(instance.to_string()))
}

fn touched_nets(nl: &Netlist, gate: GateId) -> Vec<NetId> {
    let g = nl.gate(gate);
    let mut nets = g.inputs().to_vec();
    nets.push(g.output());
    nets
}

/// Swaps the gate driving net `instance` to library cell `new_cell`,
/// keeping the pin wiring. The pin count must match; the function may
/// change (the receipt records whether it did).
///
/// # Errors
///
/// [`EditError::UnknownNet`] / [`EditError::UnknownInstance`] for a bad
/// target, [`EditError::NotACell`] on unmapped gates,
/// [`EditError::UnknownCell`] / [`EditError::IncompatiblePinCount`] for a
/// bad replacement.
pub fn swap_gate(
    nl: &mut Netlist,
    lib: &Library,
    instance: &str,
    new_cell: &str,
) -> Result<GateEdit, EditError> {
    let gid = resolve_instance(nl, instance)?;
    let old = match nl.gate(gid).kind() {
        GateKind::Cell(c) => c,
        GateKind::Prim(_) => return Err(EditError::NotACell(instance.to_string())),
    };
    let cell = lib
        .cell_by_name(new_cell)
        .ok_or_else(|| EditError::UnknownCell(new_cell.to_string()))?;
    let fanin = nl.gate(gid).fanin();
    if cell.num_pins() as usize != fanin {
        return Err(EditError::IncompatiblePinCount {
            cell: new_cell.to_string(),
            want: cell.num_pins() as usize,
            got: fanin,
        });
    }
    let function_changed = lib.cell(old).truth_table() != cell.truth_table();
    nl.set_gate_kind(gid, GateKind::Cell(cell.id()));
    Ok(GateEdit {
        gate: gid,
        touched: touched_nets(nl, gid),
        function_changed,
    })
}

/// Resizes the gate driving net `instance` to its alternate drive strength
/// (`NAND2` ↔ `NAND2_X2`). Always delay-only: the variant shares the base
/// cell's truth table and sensitization arcs by construction.
///
/// # Errors
///
/// [`EditError::UnknownNet`] / [`EditError::UnknownInstance`] /
/// [`EditError::NotACell`] for a bad target and
/// [`EditError::NoDriveVariant`] if the library has no variant.
pub fn resize_gate(nl: &mut Netlist, lib: &Library, instance: &str) -> Result<GateEdit, EditError> {
    let gid = resolve_instance(nl, instance)?;
    let old = match nl.gate(gid).kind() {
        GateKind::Cell(c) => c,
        GateKind::Prim(_) => return Err(EditError::NotACell(instance.to_string())),
    };
    let variant = lib
        .resize_target(old)
        .ok_or_else(|| EditError::NoDriveVariant(lib.cell(old).name().to_string()))?;
    nl.set_gate_kind(gid, GateKind::Cell(variant));
    Ok(GateEdit {
        gate: gid,
        touched: touched_nets(nl, gid),
        function_changed: false,
    })
}

/// Reconnects input pin `pin` of the gate driving net `instance` to the
/// net named `new_source`. Structure-changing: the receipt is marked
/// function-changed even though the gate's cell stays the same, because
/// the cone of logic feeding the pin changed.
///
/// # Errors
///
/// [`EditError::UnknownNet`] / [`EditError::UnknownInstance`] for a bad
/// target, [`EditError::BadPin`] for an out-of-range pin and
/// [`EditError::WouldCycle`] if the edit would close a loop (the netlist
/// is left unchanged in that case).
pub fn rewire_net(
    nl: &mut Netlist,
    instance: &str,
    pin: usize,
    new_source: &str,
) -> Result<GateEdit, EditError> {
    let gid = resolve_instance(nl, instance)?;
    let new_net = nl
        .net_by_name(new_source)
        .ok_or_else(|| EditError::UnknownNet(new_source.to_string()))?;
    let fanin = nl.gate(gid).fanin();
    let old_net = *nl
        .gate(gid)
        .inputs()
        .get(pin)
        .ok_or_else(|| EditError::BadPin {
            instance: instance.to_string(),
            pin,
            fanin,
        })?;
    match nl.rewire_pin(gid, pin, new_net) {
        Ok(()) => {}
        Err(NetlistError::Cycle(_)) => return Err(EditError::WouldCycle(instance.to_string())),
        Err(NetlistError::BadArity { got, .. }) => {
            return Err(EditError::BadPin {
                instance: instance.to_string(),
                pin: got,
                fanin,
            })
        }
        Err(e) => unreachable!("rewire_pin returned unexpected error {e}"),
    }
    let mut touched = touched_nets(nl, gid);
    if !touched.contains(&old_net) {
        touched.push(old_net);
    }
    Ok(GateEdit {
        gate: gid,
        touched,
        function_changed: true,
    })
}

// ---------------------------------------------------------------------------
// Fault injectors.
// ---------------------------------------------------------------------------
//
// Deliberately damaged copies of a netlist (or timing library) for
// exercising `sta-lint`'s rule codes. The builder API refuses to construct
// most of these defects directly, so each injector either rebuilds the
// netlist around the defect or appends a broken fragment; the input is
// never modified. Injected nets carry a `lint_` name prefix so diagnostics
// are easy to trace back to the injection site.

/// Reroutes one input pin of the `victim`-th gate (topological order,
/// modulo the gate count) to a fresh net that nothing drives. The damaged
/// connection makes `sta-lint` report the fresh net as undriven (NL002).
///
/// # Panics
///
/// Panics if the netlist has no gates.
pub fn break_net(nl: &Netlist, victim: usize) -> Netlist {
    let mut out = Netlist::new(format!("{}_broken", nl.name()));
    let mut newid: HashMap<NetId, NetId> = HashMap::new();
    for &pi in nl.inputs() {
        newid.insert(pi, out.add_input(nl.net_label(pi)));
    }
    let order = nl.topo_gates();
    let victim = order[victim % order.len()];
    for &gid in &order {
        let gate = nl.gate(gid);
        let mut ins: Vec<NetId> = gate.inputs().iter().map(|n| newid[n]).collect();
        if gid == victim {
            ins[0] = out.add_named_net("lint_break");
        }
        // Only genuine names survive: `net_label`'s synthesized "nN"
        // fallbacks would collide with real ISCAS net names.
        let z = out
            .add_gate(gate.kind(), &ins, nl.net(gate.output()).name())
            .expect("rebuild preserves validity");
        newid.insert(gate.output(), z);
    }
    for &po in nl.outputs() {
        out.mark_output(newid[&po]);
    }
    out
}

/// Appends a two-gate combinational feedback loop feeding a new primary
/// output. `sta-lint` reports the loop as NL001 (and the new output, whose
/// cone never settles, as NL006).
pub fn inject_cycle(nl: &Netlist) -> Netlist {
    let mut out = nl.clone();
    let seed = out
        .inputs()
        .first()
        .copied()
        .unwrap_or_else(|| out.add_input("lint_seed"));
    let x = out.add_named_net("lint_cycle_x");
    let y = out.add_named_net("lint_cycle_y");
    out.add_gate_driving(GateKind::Prim(PrimOp::And), &[seed, y], x)
        .expect("fresh nets are drivable");
    out.add_gate_driving(GateKind::Prim(PrimOp::Not), &[x], y)
        .expect("fresh nets are drivable");
    out.mark_output(y);
    out
}

/// Appends a gate whose output drives nothing and is not marked as a
/// primary output — a dangling net (NL004).
pub fn inject_dangling_net(nl: &Netlist) -> Netlist {
    let mut out = nl.clone();
    let seed = out
        .inputs()
        .first()
        .copied()
        .unwrap_or_else(|| out.add_input("lint_seed"));
    out.add_gate(GateKind::Prim(PrimOp::Not), &[seed], Some("lint_dangle"))
        .expect("fresh nets are drivable");
    out
}

/// Appends a primary input that feeds nothing (NL005).
pub fn inject_dead_input(nl: &Netlist) -> Netlist {
    let mut out = nl.clone();
    out.add_input("lint_dead");
    out
}

/// Removes the last characterized arc variant of `(cell, pin)` from the
/// timing library, leaving a sensitization-vector coverage gap (LIB001).
/// Returns `false` if the cell or pin has no variant to drop.
pub fn drop_sensitization_vector(
    tlib: &mut sta_charlib::TimingLibrary,
    cell: sta_netlist::CellId,
    pin: u8,
) -> bool {
    let Some(ct) = tlib.cells.get_mut(cell.index()) else {
        return false;
    };
    match ct.variant_index.get_mut(pin as usize) {
        Some(per_pin) if !per_pin.is_empty() => {
            per_pin.pop();
            true
        }
        _ => false,
    }
}

/// Clears the last set bit of a dirty-source mask, turning the sound
/// over-approximation computed by `sta_core::eco::dirty_sources` into an
/// under-approximation (ECO001/ECO003 in `sta-lint`). Returns the index
/// of the cleared source, or `None` when the mask was already all-clean
/// (nothing to shrink — the audit has nothing to miss).
pub fn shrink_dirty_cone(dirty: &mut [bool]) -> Option<usize> {
    let i = dirty.iter().rposition(|&d| d)?;
    dirty[i] = false;
    Some(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_preserves_parity_function() {
        let mut nl = Netlist::new("p");
        let ins: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Xor), &ins, Some("z"))
            .unwrap();
        let w = nl
            .add_gate(GateKind::Prim(PrimOp::Xnor), &[ins[0], ins[1]], Some("w"))
            .unwrap();
        nl.mark_output(z);
        nl.mark_output(w);
        let expanded = expand_xor(&nl);
        assert!(expanded.gate_ids().all(|g| !matches!(
            expanded.gate(g).kind(),
            GateKind::Prim(PrimOp::Xor | PrimOp::Xnor)
        )));
        for bits in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(nl.eval_prim(&v), expanded.eval_prim(&v), "{bits:04b}");
        }
    }

    fn two_gate() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[a, b], Some("x"))
            .unwrap();
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Not), &[x], Some("z"))
            .unwrap();
        nl.mark_output(z);
        nl
    }

    // Structural facts only — the rule-code assertions live in
    // `sta-lint`'s fault-injection tests (lint depends on this crate, not
    // the other way around).

    fn mapped_c17() -> (Netlist, &'static Library) {
        use std::sync::OnceLock;
        static LIB: OnceLock<Library> = OnceLock::new();
        let lib = LIB.get_or_init(Library::standard);
        let nl = crate::catalog::mapped("c17", lib)
            .expect("mapping succeeds")
            .expect("known benchmark");
        (nl, lib)
    }

    #[test]
    fn swap_gate_changes_kind_and_reports_function_change() {
        let (mut nl, lib) = mapped_c17();
        let instance = nl.net_label(nl.outputs()[0]);
        // c17 output gates are NAND2; swap to NOR2 (function change).
        let edit = swap_gate(&mut nl, lib, &instance, "NOR2").unwrap();
        assert!(edit.function_changed);
        let gid = edit.gate;
        assert_eq!(
            nl.gate(gid).kind(),
            GateKind::Cell(lib.cell_by_name("NOR2").unwrap().id())
        );
        assert_eq!(edit.touched.len(), nl.gate(gid).fanin() + 1);
        nl.validate().unwrap();
        // Swapping to the same function's drive variant is not a function
        // change.
        let edit = swap_gate(&mut nl, lib, &instance, "NOR2_X2").unwrap();
        assert!(!edit.function_changed);
        // Typed errors, netlist untouched.
        assert_eq!(
            swap_gate(&mut nl, lib, "no_such_net", "NOR2"),
            Err(EditError::UnknownNet("no_such_net".into()))
        );
        let pi = nl.net_label(nl.inputs()[0]);
        assert_eq!(
            swap_gate(&mut nl, lib, &pi, "NOR2"),
            Err(EditError::UnknownInstance(pi.clone()))
        );
        assert_eq!(
            swap_gate(&mut nl, lib, &instance, "NOPE"),
            Err(EditError::UnknownCell("NOPE".into()))
        );
        assert_eq!(
            swap_gate(&mut nl, lib, &instance, "NAND3"),
            Err(EditError::IncompatiblePinCount {
                cell: "NAND3".into(),
                want: 3,
                got: 2,
            })
        );
    }

    #[test]
    fn resize_gate_is_an_involution() {
        let (mut nl, lib) = mapped_c17();
        let instance = nl.net_label(nl.outputs()[0]);
        let before = nl.clone();
        let e1 = resize_gate(&mut nl, lib, &instance).unwrap();
        assert!(!e1.function_changed);
        let k1 = nl.gate(e1.gate).kind();
        assert!(matches!(k1, GateKind::Cell(c)
            if lib.cell(c).name().ends_with("_X2")));
        let e2 = resize_gate(&mut nl, lib, &instance).unwrap();
        assert_eq!(e1.gate, e2.gate);
        assert_eq!(nl, before, "resize twice restores the original");
    }

    #[test]
    fn rewire_net_moves_a_pin_and_rejects_cycles() {
        let (mut nl, _lib) = mapped_c17();
        let out = nl.outputs()[0];
        let instance = nl.net_label(out);
        let gid = nl.net(out).driver().unwrap();
        let old_net = nl.gate(gid).inputs()[0];
        let pi = nl.net_label(nl.inputs()[0]);
        let pi_net = nl.inputs()[0];
        let edit = rewire_net(&mut nl, &instance, 0, &pi).unwrap();
        assert!(edit.function_changed);
        assert_eq!(nl.gate(gid).inputs()[0], pi_net);
        assert!(edit.touched.contains(&old_net));
        assert!(edit.touched.contains(&pi_net));
        nl.validate().unwrap();
        // Feeding the gate its own output is a cycle.
        assert_eq!(
            rewire_net(&mut nl, &instance, 0, &instance),
            Err(EditError::WouldCycle(instance.clone()))
        );
        assert_eq!(
            rewire_net(&mut nl, &instance, 9, &pi),
            Err(EditError::BadPin {
                instance: instance.clone(),
                pin: 9,
                fanin: 2,
            })
        );
        nl.validate().unwrap();
    }

    #[test]
    fn break_net_reroutes_one_pin_to_a_floating_net() {
        let nl = two_gate();
        let broken = break_net(&nl, 0);
        let hole = broken.net_by_name("lint_break").unwrap();
        assert!(broken.net(hole).driver().is_none());
        assert!(!broken.net(hole).fanout().is_empty());
        assert_eq!(broken.num_gates(), nl.num_gates());
        // The victim cycles modulo the gate count.
        assert!(break_net(&nl, 7).net_by_name("lint_break").is_some());
    }

    #[test]
    fn inject_cycle_feeds_a_gate_from_its_own_cone() {
        let nl = two_gate();
        let cyclic = inject_cycle(&nl);
        let x = cyclic.net_by_name("lint_cycle_x").unwrap();
        let y = cyclic.net_by_name("lint_cycle_y").unwrap();
        let and_gate = cyclic.net(x).driver().unwrap();
        assert!(cyclic.gate(and_gate).inputs().contains(&y));
        assert_eq!(
            cyclic.net(y).driver().map(|g| cyclic.gate(g).output()),
            Some(y)
        );
        assert!(cyclic.outputs().contains(&y));
    }

    #[test]
    fn dangling_and_dead_injections_add_disconnected_nets() {
        let nl = two_gate();
        let dangle = inject_dangling_net(&nl);
        let d = dangle.net_by_name("lint_dangle").unwrap();
        assert!(dangle.net(d).fanout().is_empty() && !dangle.outputs().contains(&d));
        let dead = inject_dead_input(&nl);
        let i = dead.net_by_name("lint_dead").unwrap();
        assert!(dead.net(i).is_input() && dead.net(i).fanout().is_empty());
    }
}
