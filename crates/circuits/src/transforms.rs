//! Netlist-to-netlist transformations used by the benchmark generators.

use std::collections::HashMap;

use sta_netlist::{GateKind, NetId, Netlist, PrimOp};

/// Rewrites every XOR/XNOR into the classic four-NAND structure (the
/// relationship between ISCAS-85 c499 and c1355). Wide XORs are first
/// split into 2-input trees.
///
/// ```text
/// a ⊕ b:  n1 = NAND(a, b); n2 = NAND(a, n1); n3 = NAND(b, n1);
///         z = NAND(n2, n3)
/// ```
pub fn expand_xor(nl: &Netlist) -> Netlist {
    let mut out = Netlist::new(format!("{}_nand", nl.name()));
    let mut newid: HashMap<NetId, NetId> = HashMap::new();
    for &pi in nl.inputs() {
        newid.insert(pi, out.add_input(nl.net_label(pi)));
    }
    let g = |out: &mut Netlist, op: PrimOp, ins: &[NetId]| -> NetId {
        out.add_gate(GateKind::Prim(op), ins, None).expect("valid")
    };
    let xor2 = |out: &mut Netlist, a: NetId, b: NetId| -> NetId {
        let n1 = g(out, PrimOp::Nand, &[a, b]);
        let n2 = g(out, PrimOp::Nand, &[a, n1]);
        let n3 = g(out, PrimOp::Nand, &[b, n1]);
        g(out, PrimOp::Nand, &[n2, n3])
    };
    for gid in nl.topo_gates() {
        let gate = nl.gate(gid);
        let op = match gate.kind() {
            GateKind::Prim(op) => op,
            GateKind::Cell(_) => panic!("expand_xor operates on primitive netlists"),
        };
        let ins: Vec<NetId> = gate.inputs().iter().map(|n| newid[n]).collect();
        let result = match op {
            PrimOp::Xor | PrimOp::Xnor => {
                let mut acc = ins[0];
                for &i in &ins[1..] {
                    acc = xor2(&mut out, acc, i);
                }
                if op == PrimOp::Xnor {
                    g(&mut out, PrimOp::Not, &[acc])
                } else {
                    acc
                }
            }
            other => g(&mut out, other, &ins),
        };
        newid.insert(gate.output(), result);
    }
    for &po in nl.outputs() {
        out.mark_output(newid[&po]);
    }
    out.validate().expect("expansion preserves validity");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_preserves_parity_function() {
        let mut nl = Netlist::new("p");
        let ins: Vec<NetId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Xor), &ins, Some("z"))
            .unwrap();
        let w = nl
            .add_gate(GateKind::Prim(PrimOp::Xnor), &[ins[0], ins[1]], Some("w"))
            .unwrap();
        nl.mark_output(z);
        nl.mark_output(w);
        let expanded = expand_xor(&nl);
        assert!(expanded.gate_ids().all(|g| !matches!(
            expanded.gate(g).kind(),
            GateKind::Prim(PrimOp::Xor | PrimOp::Xnor)
        )));
        for bits in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(nl.eval_prim(&v), expanded.eval_prim(&v), "{bits:04b}");
        }
    }
}
