//! Single-error-correcting (Hamming) decoder generator — the
//! structure-faithful surrogate for ISCAS-85 c499/c1355 (32-bit SEC
//! circuits; c1355 is c499 with every XOR expanded into NAND2s).

use sta_netlist::{GateKind, NetId, Netlist, PrimOp};

/// Number of data bits of the generated SEC circuit (matches c499's
/// 32-bit payload).
pub const SEC_DATA_BITS: usize = 32;
/// Number of check bits (Hamming code over 32 data bits).
pub const SEC_CHECK_BITS: usize = 6;

/// Generates the 32-bit single-error-correction circuit: inputs are the
/// received data and check bits, outputs the corrected data word.
///
/// Structure: six syndrome XOR trees (received check bit vs recomputed
/// parity), a 6-input position decoder per data bit, and an output XOR
/// that flips the bit the syndrome points at.
pub fn sec_circuit() -> Netlist {
    let mut nl = Netlist::new("sec32");
    let data: Vec<NetId> = (0..SEC_DATA_BITS)
        .map(|i| nl.add_input(format!("d{i}")))
        .collect();
    let check: Vec<NetId> = (0..SEC_CHECK_BITS)
        .map(|i| nl.add_input(format!("c{i}")))
        .collect();
    let g = |nl: &mut Netlist, op: PrimOp, ins: &[NetId]| -> NetId {
        nl.add_gate(GateKind::Prim(op), ins, None).expect("valid")
    };
    // Hamming positions: data bit i sits at the i-th non-power-of-two
    // position ≥ 3.
    let positions: Vec<u32> = (3u32..)
        .filter(|p| !p.is_power_of_two())
        .take(SEC_DATA_BITS)
        .collect();
    // Syndrome bit k = check_k XOR parity over data bits whose position has
    // bit k set. Balanced XOR trees, like the real c499 — tree depth
    // controls the number of sensitization-vector combinations per path
    // (2^depth), so a linear chain here would explode the path space far
    // beyond the original benchmark's.
    let mut syndrome = Vec::with_capacity(SEC_CHECK_BITS);
    for (k, &ck) in check.iter().enumerate() {
        let mut layer: Vec<NetId> = std::iter::once(ck)
            .chain(
                positions
                    .iter()
                    .zip(&data)
                    .filter(|(p, _)| *p & (1 << k) != 0)
                    .map(|(_, &d)| d),
            )
            .collect();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    g(&mut nl, PrimOp::Xor, &[pair[0], pair[1]])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        syndrome.push(layer[0]);
    }
    let syndrome_n: Vec<NetId> = syndrome
        .iter()
        .map(|&s| g(&mut nl, PrimOp::Not, &[s]))
        .collect();
    // Per data bit: decode "syndrome == my position" and flip.
    for (i, (&pos, &d)) in positions.iter().zip(&data).enumerate() {
        let literals: Vec<NetId> = (0..SEC_CHECK_BITS)
            .map(|k| {
                if pos & (1 << k) != 0 {
                    syndrome[k]
                } else {
                    syndrome_n[k]
                }
            })
            .collect();
        let hit = g(&mut nl, PrimOp::And, &literals);
        let corrected = nl
            .add_gate(
                GateKind::Prim(PrimOp::Xor),
                &[d, hit],
                Some(&format!("o{i}")),
            )
            .expect("valid");
        nl.mark_output(corrected);
    }
    nl.validate().expect("generated SEC circuit is valid");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transforms::expand_xor;

    fn encode(word: u32) -> (Vec<bool>, Vec<u32>) {
        // Compute the check bits so the syndrome is zero, mirroring the
        // circuit's parity groups.
        let positions: Vec<u32> = (3u32..)
            .filter(|p| !p.is_power_of_two())
            .take(SEC_DATA_BITS)
            .collect();
        let mut check = vec![false; SEC_CHECK_BITS];
        for (k, c) in check.iter_mut().enumerate() {
            *c = positions
                .iter()
                .enumerate()
                .filter(|(_, p)| **p & (1 << k) != 0)
                .fold(false, |acc, (i, _)| acc ^ (word >> i & 1 == 1));
        }
        let mut inputs: Vec<bool> = (0..SEC_DATA_BITS).map(|i| word >> i & 1 == 1).collect();
        inputs.extend(&check);
        (inputs, positions)
    }

    #[test]
    fn clean_word_passes_through() {
        let nl = sec_circuit();
        for word in [0u32, u32::MAX, 0xDEAD_BEEF, 0x1234_5678] {
            let (inputs, _) = encode(word);
            let out = nl.eval_prim(&inputs);
            let got = out
                .iter()
                .enumerate()
                .fold(0u32, |acc, (i, &b)| acc | (u32::from(b) << i));
            assert_eq!(got, word, "{word:#x}");
        }
    }

    #[test]
    fn single_data_bit_error_is_corrected() {
        let nl = sec_circuit();
        let word = 0xCAFE_F00Du32;
        for flip in [0usize, 7, 15, 31] {
            let (mut inputs, _) = encode(word);
            inputs[flip] = !inputs[flip];
            let out = nl.eval_prim(&inputs);
            let got = out
                .iter()
                .enumerate()
                .fold(0u32, |acc, (i, &b)| acc | (u32::from(b) << i));
            assert_eq!(got, word, "flip {flip}");
        }
    }

    #[test]
    fn check_bit_error_leaves_data_alone() {
        let nl = sec_circuit();
        let word = 0x0F0F_55AAu32;
        let (mut inputs, _) = encode(word);
        inputs[SEC_DATA_BITS + 2] = !inputs[SEC_DATA_BITS + 2];
        let out = nl.eval_prim(&inputs);
        let got = out
            .iter()
            .enumerate()
            .fold(0u32, |acc, (i, &b)| acc | (u32::from(b) << i));
        assert_eq!(got, word);
    }

    /// The c1355-style expansion preserves function while roughly
    /// tripling the gate count.
    #[test]
    fn xor_expanded_variant_is_equivalent() {
        let nl = sec_circuit();
        let expanded = expand_xor(&nl);
        assert!(expanded.num_gates() > nl.num_gates());
        let word = 0x8765_4321u32;
        let (mut inputs, _) = encode(word);
        inputs[11] = !inputs[11];
        assert_eq!(nl.eval_prim(&inputs), expanded.eval_prim(&inputs));
    }
}
