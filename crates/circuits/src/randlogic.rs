//! Seeded random-logic generator — surrogate for the ISCAS-85 circuits
//! without a crisp arithmetic structure (c1908, c2670, c3540, c5315,
//! c7552).
//!
//! The generator reproduces what the experiments need from those
//! benchmarks: DAG shape (bounded depth growth, heavy reconvergent
//! fanout), a realistic operator mix (NAND/NOR-dominated with AND-OR
//! clusters that the technology mapper covers with complex gates), and
//! the gate-count spread from ~900 to ~3500. Generation is fully
//! deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sta_netlist::{GateKind, NetId, Netlist, PrimOp};

/// Parameters of a random circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RandParams {
    /// Design name.
    pub name: String,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Gate count target (exact).
    pub gates: usize,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
    /// Locality window: gate inputs are drawn from the most recent
    /// `window` nets, which controls depth and reconvergence.
    pub window: usize,
}

/// Generates a random combinational netlist.
///
/// Every net is guaranteed to be used (dangling nets are collected into
/// the primary outputs), and the result always validates.
///
/// # Panics
///
/// Panics if any parameter is zero.
pub fn random_logic(params: &RandParams) -> Netlist {
    assert!(
        params.inputs > 0 && params.outputs > 0 && params.gates > 0 && params.window > 0,
        "parameters must be positive"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut nl = Netlist::new(&params.name);
    let mut pool: Vec<NetId> = (0..params.inputs)
        .map(|i| nl.add_input(format!("i{i}")))
        .collect();
    // Operator mix: NAND/NOR-heavy like synthesized ISCAS netlists, with
    // AND/OR pairs that fold into AO/OA complex cells, some XOR, few
    // inverters.
    const OPS: [(PrimOp, u32); 7] = [
        (PrimOp::Nand, 24),
        (PrimOp::Nor, 16),
        (PrimOp::And, 22),
        (PrimOp::Or, 20),
        (PrimOp::Xor, 6),
        (PrimOp::Not, 8),
        (PrimOp::Buf, 4),
    ];
    let total_weight: u32 = OPS.iter().map(|(_, w)| w).sum();
    for _ in 0..params.gates {
        let mut pick = rng.gen_range(0..total_weight);
        let op = OPS
            .iter()
            .find(|(_, w)| {
                if pick < *w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .expect("weights cover the range")
            .0;
        let fanin = if op.is_unary() {
            1
        } else {
            // Mostly 2-input, some 3/4-input.
            match rng.gen_range(0..10) {
                0 => 4,
                1 | 2 => 3,
                _ => 2,
            }
        };
        let lo = pool.len().saturating_sub(params.window);
        let mut ins = Vec::with_capacity(fanin);
        for _ in 0..fanin {
            let idx = rng.gen_range(lo..pool.len());
            let candidate = pool[idx];
            if ins.contains(&candidate) && pool.len() > fanin {
                // Retry once for distinct inputs; duplicates are legal but
                // degenerate.
                let idx2 = rng.gen_range(lo..pool.len());
                ins.push(pool[idx2]);
            } else {
                ins.push(candidate);
            }
        }
        let out = nl
            .add_gate(GateKind::Prim(op), &ins, None)
            .expect("generator produces valid gates");
        pool.push(out);
    }
    // Outputs: dangling nets first (so everything is observable), then the
    // most recent nets.
    let mut po: Vec<NetId> = nl
        .net_ids()
        .filter(|&n| nl.net(n).fanout().is_empty() && !nl.net(n).is_input())
        .collect();
    let mut cursor = pool.len();
    while po.len() < params.outputs && cursor > 0 {
        cursor -= 1;
        let n = pool[cursor];
        if !po.contains(&n) && !nl.net(n).is_input() {
            po.push(n);
        }
    }
    for n in po {
        nl.mark_output(n);
    }
    nl.validate().expect("generated logic is a valid DAG");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_netlist::stats::NetlistStats;

    fn params(gates: usize, seed: u64) -> RandParams {
        RandParams {
            name: format!("r{gates}"),
            inputs: 33,
            outputs: 25,
            gates,
            seed,
            window: 120,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_logic(&params(500, 7));
        let b = random_logic(&params(500, 7));
        assert_eq!(a, b);
        let c = random_logic(&params(500, 8));
        assert_ne!(a, c, "different seeds give different circuits");
    }

    #[test]
    fn meets_size_targets_and_validates() {
        let nl = random_logic(&params(880, 42));
        let stats = NetlistStats::of(&nl);
        assert_eq!(stats.gates, 880);
        assert_eq!(stats.inputs, 33);
        assert!(stats.outputs >= 25);
        assert!(stats.depth > 5, "depth {} too shallow", stats.depth);
        assert!(stats.stems > 50, "wants reconvergent fanout");
    }

    #[test]
    fn no_dangling_internal_nets() {
        let nl = random_logic(&params(300, 3));
        for n in nl.net_ids() {
            let net = nl.net(n);
            if !net.is_input() && net.fanout().is_empty() {
                assert!(
                    nl.outputs().contains(&n),
                    "net {n} is neither used nor a PO"
                );
            }
        }
    }
}
