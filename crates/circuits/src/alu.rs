//! ALU generator — the structure-faithful surrogate for ISCAS-85 c880
//! (an 8-bit ALU).
//!
//! Operations (selected by `op1 op0`): 00 ADD, 01 AND, 10 OR, 11 XOR.
//! Outputs: 8 result bits, carry-out, and a zero flag. The adder carries
//! (`g + p·cin`) and the operand multiplexers are exactly the AO21/MUX2
//! shapes the technology mapper turns into complex gates.

use sta_netlist::{GateKind, NetId, Netlist, PrimOp};

/// Generates an `n`-bit ALU (`2n + 3` inputs, `n + 2` outputs).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn alu(n: usize) -> Netlist {
    assert!(n > 0, "ALU width must be positive");
    let mut nl = Netlist::new(format!("alu{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let cin = nl.add_input("cin");
    let op0 = nl.add_input("op0");
    let op1 = nl.add_input("op1");
    let g = |nl: &mut Netlist, op: PrimOp, ins: &[NetId]| -> NetId {
        nl.add_gate(GateKind::Prim(op), ins, None).expect("valid")
    };
    let nop0 = g(&mut nl, PrimOp::Not, &[op0]);
    let nop1 = g(&mut nl, PrimOp::Not, &[op1]);
    // Operation strobes.
    let is_add = g(&mut nl, PrimOp::And, &[nop1, nop0]);
    let is_and = g(&mut nl, PrimOp::And, &[nop1, op0]);
    let is_or = g(&mut nl, PrimOp::And, &[op1, nop0]);
    let is_xor = g(&mut nl, PrimOp::And, &[op1, op0]);

    // Ripple-carry adder.
    let mut carry = cin;
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let p = g(&mut nl, PrimOp::Xor, &[a[i], b[i]]);
        let s = g(&mut nl, PrimOp::Xor, &[p, carry]);
        let gen = g(&mut nl, PrimOp::And, &[a[i], b[i]]);
        let prop = g(&mut nl, PrimOp::And, &[p, carry]);
        carry = g(&mut nl, PrimOp::Or, &[gen, prop]);
        sums.push(s);
    }
    let cout = g(&mut nl, PrimOp::And, &[carry, is_add]);

    // Logic units + one-hot select per bit: r = add·s + and·(a·b) +
    // or·(a+b) + xor·(a⊕b).
    let mut results = Vec::with_capacity(n);
    for i in 0..n {
        let land = g(&mut nl, PrimOp::And, &[a[i], b[i]]);
        let lor = g(&mut nl, PrimOp::Or, &[a[i], b[i]]);
        let lxor = g(&mut nl, PrimOp::Xor, &[a[i], b[i]]);
        let t0 = g(&mut nl, PrimOp::And, &[is_add, sums[i]]);
        let t1 = g(&mut nl, PrimOp::And, &[is_and, land]);
        let t2 = g(&mut nl, PrimOp::And, &[is_or, lor]);
        let t3 = g(&mut nl, PrimOp::And, &[is_xor, lxor]);
        let u0 = g(&mut nl, PrimOp::Or, &[t0, t1]);
        let u1 = g(&mut nl, PrimOp::Or, &[t2, t3]);
        let r = nl
            .add_gate(
                GateKind::Prim(PrimOp::Or),
                &[u0, u1],
                Some(&format!("r{i}")),
            )
            .expect("valid");
        results.push(r);
        nl.mark_output(r);
    }
    nl.mark_output(cout);
    // Zero flag: NOR over all result bits.
    let zero = nl
        .add_gate(GateKind::Prim(PrimOp::Nor), &results, Some("zero"))
        .expect("valid");
    nl.mark_output(zero);
    nl.validate().expect("generated ALU is valid");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(nl: &Netlist, n: usize, a: u64, b: u64, cin: bool, op: u8) -> (u64, bool, bool) {
        let mut v = Vec::new();
        for i in 0..n {
            v.push(a >> i & 1 == 1);
        }
        for i in 0..n {
            v.push(b >> i & 1 == 1);
        }
        v.push(cin);
        v.push(op & 1 == 1);
        v.push(op & 2 == 2);
        let out = nl.eval_prim(&v);
        let result = (0..n).fold(0u64, |acc, i| acc | (u64::from(out[i]) << i));
        (result, out[n], out[n + 1])
    }

    #[test]
    fn eight_bit_alu_operations() {
        let nl = alu(8);
        assert_eq!(nl.inputs().len(), 19);
        assert_eq!(nl.outputs().len(), 10);
        for (a, b, cin) in [(13u64, 200u64, false), (255, 1, true), (0, 0, false)] {
            let (add, cout, zero) = run(&nl, 8, a, b, cin, 0b00);
            let expect = a + b + u64::from(cin);
            assert_eq!(add, expect & 0xFF, "ADD {a}+{b}+{cin}");
            assert_eq!(cout, expect > 0xFF, "carry {a}+{b}");
            assert_eq!(zero, (expect & 0xFF) == 0);
            let (and, _, _) = run(&nl, 8, a, b, cin, 0b01);
            assert_eq!(and, a & b);
            let (or, _, _) = run(&nl, 8, a, b, cin, 0b10);
            assert_eq!(or, a | b);
            let (xor, _, _) = run(&nl, 8, a, b, cin, 0b11);
            assert_eq!(xor, a ^ b);
        }
    }

    #[test]
    fn non_add_ops_mask_carry() {
        let nl = alu(4);
        let (_, cout, _) = run(&nl, 4, 15, 15, true, 0b01);
        assert!(!cout, "carry suppressed for logic ops");
    }
}
