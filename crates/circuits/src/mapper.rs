//! Technology mapping: covering a primitive-gate netlist with standard
//! cells, including the multi-vector complex gates (AO22, OA12, AOI/OAI…)
//! that the paper's experiments revolve around.
//!
//! The mapper lowers the netlist to 2-input AND/OR/XOR plus NOT, then
//! covers the fanout-free regions greedily with the largest matching cell
//! pattern (classic tree covering): AOI22/AO22/OA22/OAI22 and the 4-input
//! simple gates first, then the 3-input families (AO21, OA12, AOI21,
//! OAI12, AND3…), then 2-input cells, INV and BUF. MUX2 is matched
//! structurally (`a·!s + b·s` with a shared select).

use std::collections::HashMap;

use sta_cells::Library;
use sta_netlist::{GateKind, NetId, Netlist, NetlistError, PrimOp};

/// Maps a primitive netlist onto `lib`'s standard cells.
///
/// # Errors
///
/// Returns an error if the netlist is structurally invalid. All primitive
/// operators of any fan-in are supported.
///
/// # Example
///
/// ```
/// use sta_cells::Library;
/// use sta_circuits::mapper::map_netlist;
/// use sta_netlist::bench_fmt;
///
/// # fn main() -> Result<(), sta_netlist::NetlistError> {
/// let raw = bench_fmt::parse(
///     "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\n\
///      x = AND(a, b)\ny = AND(c, d)\nz = OR(x, y)\n",
///     "sop",
/// )?;
/// let lib = Library::standard();
/// let mapped = map_netlist(&raw, &lib)?;
/// // The whole sum-of-products collapses into a single AO22.
/// assert_eq!(mapped.num_gates(), 1);
/// # Ok(())
/// # }
/// ```
pub fn map_netlist(nl: &Netlist, lib: &Library) -> Result<Netlist, NetlistError> {
    let lowered = lower(nl)?;
    cover(&lowered, lib)
}

/// Lowers arbitrary-fanin primitives to 2-input AND/OR/XOR + NOT/BUF.
fn lower(nl: &Netlist) -> Result<Netlist, NetlistError> {
    let mut out = Netlist::new(nl.name());
    let mut newid: HashMap<NetId, NetId> = HashMap::new();
    for &pi in nl.inputs() {
        let id = out.add_input(nl.net_label(pi));
        newid.insert(pi, id);
    }
    for g in nl.topo_gates() {
        let gate = nl.gate(g);
        let op = match gate.kind() {
            GateKind::Prim(op) => op,
            GateKind::Cell(_) => {
                return Err(NetlistError::UnknownOperator(
                    "cannot re-map an already mapped netlist".into(),
                ))
            }
        };
        let ins: Vec<NetId> = gate.inputs().iter().map(|n| newid[n]).collect();
        let result = lower_gate(&mut out, op, &ins)?;
        newid.insert(gate.output(), result);
    }
    for &po in nl.outputs() {
        out.mark_output(newid[&po]);
    }
    Ok(out)
}

fn lower_gate(out: &mut Netlist, op: PrimOp, ins: &[NetId]) -> Result<NetId, NetlistError> {
    let tree = |out: &mut Netlist, op2: PrimOp, ins: &[NetId]| -> Result<NetId, NetlistError> {
        // Balanced binary tree of 2-input gates.
        let mut layer: Vec<NetId> = ins.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(out.add_gate(GateKind::Prim(op2), pair, None)?);
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        Ok(layer[0])
    };
    match op {
        PrimOp::Not | PrimOp::Buf => out.add_gate(GateKind::Prim(op), ins, None),
        PrimOp::And | PrimOp::Or | PrimOp::Xor => {
            if ins.len() == 1 {
                out.add_gate(GateKind::Prim(PrimOp::Buf), ins, None)
            } else {
                tree(out, op, ins)
            }
        }
        PrimOp::Nand | PrimOp::Nor | PrimOp::Xnor => {
            let base = match op {
                PrimOp::Nand => PrimOp::And,
                PrimOp::Nor => PrimOp::Or,
                _ => PrimOp::Xor,
            };
            let inner = if ins.len() == 1 {
                ins[0]
            } else {
                tree(out, base, ins)?
            };
            out.add_gate(GateKind::Prim(PrimOp::Not), &[inner], None)
        }
    }
}

/// One matched pattern: the cell to instantiate and its leaf nets in pin
/// order.
struct Match {
    cell: &'static str,
    leaves: Vec<NetId>,
}

/// Covers the lowered netlist with library cells.
fn cover(nl: &Netlist, lib: &Library) -> Result<Netlist, NetlistError> {
    let matcher = Matcher { nl };
    let mut out = Netlist::new(nl.name());
    let mut newid: HashMap<NetId, NetId> = HashMap::new();
    for &pi in nl.inputs() {
        newid.insert(pi, out.add_input(nl.net_label(pi)));
    }
    // Roots to realize, discovered backward from the POs; realized in a
    // second forward pass so cell inputs exist before use.
    let mut root_list: Vec<NetId> = Vec::new();
    let mut seen: Vec<bool> = vec![false; nl.num_nets()];
    let mut matches: HashMap<NetId, Match> = HashMap::new();
    let mut stack: Vec<NetId> = nl.outputs().to_vec();
    while let Some(net) = stack.pop() {
        if seen[net.index()] {
            continue;
        }
        seen[net.index()] = true;
        if nl.net(net).is_input() {
            continue;
        }
        let m = matcher.best_match(net);
        for &leaf in &m.leaves {
            stack.push(leaf);
        }
        matches.insert(net, m);
        root_list.push(net);
    }
    // Topologically order the roots by lowered-net level.
    let levels = nl.levelize();
    root_list.sort_by_key(|n| levels[n.index()]);
    for root in root_list {
        let m = &matches[&root];
        let cell = lib
            .cell_by_name(m.cell)
            .unwrap_or_else(|| panic!("mapper references unknown cell {}", m.cell));
        let ins: Vec<NetId> = m.leaves.iter().map(|l| newid[l]).collect();
        let id = out.add_gate(GateKind::Cell(cell.id()), &ins, Some(&nl.net_label(root)))?;
        newid.insert(root, id);
    }
    for &po in nl.outputs() {
        out.mark_output(newid[&po]);
    }
    out.validate()?;
    Ok(out)
}

struct Matcher<'a> {
    nl: &'a Netlist,
}

impl Matcher<'_> {
    /// The driver op and inputs of `net`, if `net` may be absorbed as an
    /// internal node of a pattern (single fanout, not a PO, not a PI).
    fn internal(&self, net: NetId, root: bool) -> Option<(PrimOp, Vec<NetId>)> {
        let n = self.nl.net(net);
        if !root && (n.fanout().len() != 1 || self.nl.outputs().contains(&net)) {
            return None;
        }
        let driver = n.driver()?;
        let g = self.nl.gate(driver);
        match g.kind() {
            GateKind::Prim(op) => Some((op, g.inputs().to_vec())),
            GateKind::Cell(_) => None,
        }
    }

    /// Like [`Matcher::internal`], but refuses to absorb a child that is
    /// itself the root of a 22-type pattern (`OP(DUAL(·,·), DUAL(·,·))`).
    /// Ripping such a child apart to feed a smaller pattern would destroy
    /// an AO22/OA22 match one level down — and those complex gates are
    /// the whole point of this library.
    fn absorbable(&self, net: NetId) -> Option<(PrimOp, Vec<NetId>)> {
        let (op, ins) = self.internal(net, false)?;
        if self.is_22_root(op, &ins) {
            return None;
        }
        Some((op, ins))
    }

    fn is_22_root(&self, op: PrimOp, ins: &[NetId]) -> bool {
        if !matches!(op, PrimOp::And | PrimOp::Or) || ins.len() != 2 {
            return false;
        }
        let dual = dual_of(op);
        ins.iter().all(|&n| {
            matches!(self.internal(n, false), Some((k, k_ins)) if k == dual && k_ins.len() == 2)
        })
    }

    /// Finds the largest cell pattern rooted at `net`.
    fn best_match(&self, net: NetId) -> Match {
        let (op, ins) = self
            .internal(net, true)
            .expect("roots are driven by primitive gates");
        match op {
            PrimOp::Not => self.match_under_not(ins[0]),
            PrimOp::Buf => Match {
                cell: "BUF",
                leaves: ins,
            },
            PrimOp::Xor => Match {
                cell: "XOR2",
                leaves: ins,
            },
            PrimOp::And | PrimOp::Or => self.match_and_or(net, false),
            other => unreachable!("lowered netlists have no {other}"),
        }
    }

    /// Matches AND/OR-rooted patterns; `negated` selects the inverting
    /// cell family (reached through a NOT root).
    fn match_and_or(&self, net: NetId, negated: bool) -> Match {
        let (op, ins) = self.internal(net, true).expect("driven root");
        debug_assert!(matches!(op, PrimOp::And | PrimOp::Or));
        let (same, dual) = (op, dual_of(op));
        // Child decompositions (only if absorbable without destroying a
        // 22-pattern below).
        let kids: Vec<Option<(PrimOp, Vec<NetId>)>> =
            ins.iter().map(|&n| self.absorbable(n)).collect();
        let both_dual = |a: &Option<(PrimOp, Vec<NetId>)>, b: &Option<(PrimOp, Vec<NetId>)>| matches!((a, b), (Some((x, _)), Some((y, _))) if *x == dual && *y == dual);
        // MUX2: OR(AND(x, NOT s), AND(y, s)) — only for the positive OR root.
        if !negated && op == PrimOp::Or {
            if let Some(m) = self.match_mux(&ins, &kids) {
                return m;
            }
        }
        // Four-leaf patterns: OP(DUAL(a,b), DUAL(c,d)) → AO22/OA22 family.
        if ins.len() == 2 && both_dual(&kids[0], &kids[1]) {
            let (a, b) = {
                let (_, k) = kids[0].as_ref().expect("checked");
                (k[0], k[1])
            };
            let (c, d) = {
                let (_, k) = kids[1].as_ref().expect("checked");
                (k[0], k[1])
            };
            let cell = match (op, negated) {
                (PrimOp::Or, false) => "AO22",
                (PrimOp::Or, true) => "AOI22",
                (PrimOp::And, false) => "OA22",
                (PrimOp::And, true) => "OAI22",
                _ => unreachable!(),
            };
            return Match {
                cell,
                leaves: vec![a, b, c, d],
            };
        }
        // Same-op trees: AND(AND(a,b), AND(c,d)) → AND4 etc.
        if let Some(m) = self.match_same_tree(op, &ins, &kids, negated) {
            return m;
        }
        // Three-leaf: OP(DUAL(a,b), c) → AO21/OA12 family.
        if ins.len() == 2 {
            for (first, second) in [(0usize, 1usize), (1, 0)] {
                if let Some((k_op, k_ins)) = &kids[first] {
                    if *k_op == dual && k_ins.len() == 2 {
                        let cell = match (op, negated) {
                            (PrimOp::Or, false) => "AO21",
                            (PrimOp::Or, true) => "AOI21",
                            (PrimOp::And, false) => "OA12",
                            (PrimOp::And, true) => "OAI12",
                            _ => unreachable!(),
                        };
                        return Match {
                            cell,
                            leaves: vec![k_ins[0], k_ins[1], ins[second]],
                        };
                    }
                }
            }
        }
        // Plain 2-input cell.
        let cell = match (same, negated) {
            (PrimOp::And, false) => "AND2",
            (PrimOp::And, true) => "NAND2",
            (PrimOp::Or, false) => "OR2",
            (PrimOp::Or, true) => "NOR2",
            _ => unreachable!(),
        };
        Match { cell, leaves: ins }
    }

    /// Flattens same-operator chains into the wide simple cells:
    /// AND(AND(a,b),c) → AND3, AND(AND(a,b),AND(c,d)) → AND4, nested
    /// chains up to four leaves (and the OR/NAND/NOR counterparts).
    fn match_same_tree(
        &self,
        op: PrimOp,
        ins: &[NetId],
        kids: &[Option<(PrimOp, Vec<NetId>)>],
        negated: bool,
    ) -> Option<Match> {
        if ins.len() != 2 {
            return None;
        }
        let _ = kids;
        // Greedy flattening with a four-leaf cap.
        let mut leaves: Vec<NetId> = ins.to_vec();
        let mut expanded = true;
        while expanded && leaves.len() < 4 {
            expanded = false;
            for i in 0..leaves.len() {
                if leaves.len() >= 4 {
                    break;
                }
                if let Some((k_op, k_ins)) = self.absorbable(leaves[i]) {
                    if k_op == op && k_ins.len() == 2 {
                        leaves.splice(i..=i, k_ins);
                        expanded = true;
                        break;
                    }
                }
            }
        }
        let cell = match (op, negated, leaves.len()) {
            (PrimOp::And, false, 3) => "AND3",
            (PrimOp::And, false, 4) => "AND4",
            (PrimOp::And, true, 3) => "NAND3",
            (PrimOp::And, true, 4) => "NAND4",
            (PrimOp::Or, false, 3) => "OR3",
            (PrimOp::Or, false, 4) => "OR4",
            (PrimOp::Or, true, 3) => "NOR3",
            (PrimOp::Or, true, 4) => "NOR4",
            _ => return None,
        };
        Some(Match { cell, leaves })
    }

    fn match_mux(&self, ins: &[NetId], kids: &[Option<(PrimOp, Vec<NetId>)>]) -> Option<Match> {
        if ins.len() != 2 {
            return None;
        }
        let and = |i: usize| -> Option<&[NetId]> {
            match &kids[i] {
                Some((PrimOp::And, k)) if k.len() == 2 => Some(k),
                _ => None,
            }
        };
        let (k0, k1) = (and(0)?, and(1)?);
        // Look for NOT(s) in one AND and a bare s in the other.
        for (inv_side, pos_side) in [(k0, k1), (k1, k0)] {
            for (ni, &maybe_inv) in inv_side.iter().enumerate() {
                if let Some((PrimOp::Not, not_in)) = self.internal(maybe_inv, false) {
                    let s = not_in[0];
                    for (pi, &cand_s) in pos_side.iter().enumerate() {
                        if cand_s == s {
                            let a = inv_side[1 - ni];
                            let b = pos_side[1 - pi];
                            return Some(Match {
                                cell: "MUX2",
                                leaves: vec![a, b, s],
                            });
                        }
                    }
                }
            }
        }
        None
    }

    /// Patterns rooted at a NOT gate: inverting complex cells, NAND/NOR
    /// trees, XNOR2, or a plain INV.
    fn match_under_not(&self, inner: NetId) -> Match {
        if let Some((op, ins)) = self.internal(inner, false) {
            match op {
                PrimOp::And | PrimOp::Or => {
                    // Reuse the AND/OR matcher in negated mode, rooted at
                    // the absorbed inner node.
                    return self.match_and_or_at(op, ins);
                }
                PrimOp::Xor if ins.len() == 2 => {
                    return Match {
                        cell: "XNOR2",
                        leaves: ins,
                    };
                }
                _ => {}
            }
        }
        Match {
            cell: "INV",
            leaves: vec![inner],
        }
    }

    fn match_and_or_at(&self, op: PrimOp, ins: Vec<NetId>) -> Match {
        // Same logic as match_and_or but with the (op, ins) already
        // resolved from an absorbed internal node.
        let dual = dual_of(op);
        let kids: Vec<Option<(PrimOp, Vec<NetId>)>> =
            ins.iter().map(|&n| self.absorbable(n)).collect();
        let both_dual = kids.len() == 2
            && matches!(
                (&kids[0], &kids[1]),
                (Some((x, _)), Some((y, _))) if *x == dual && *y == dual
            );
        if both_dual {
            let (_, k0) = kids[0].as_ref().expect("checked");
            let (_, k1) = kids[1].as_ref().expect("checked");
            let cell = match op {
                PrimOp::Or => "AOI22",
                _ => "OAI22",
            };
            return Match {
                cell,
                leaves: vec![k0[0], k0[1], k1[0], k1[1]],
            };
        }
        if let Some(m) = self.match_same_tree(op, &ins, &kids, true) {
            return m;
        }
        if ins.len() == 2 {
            for (first, second) in [(0usize, 1usize), (1, 0)] {
                if let Some((k_op, k_ins)) = &kids[first] {
                    if *k_op == dual && k_ins.len() == 2 {
                        let cell = match op {
                            PrimOp::Or => "AOI21",
                            _ => "OAI12",
                        };
                        return Match {
                            cell,
                            leaves: vec![k_ins[0], k_ins[1], ins[second]],
                        };
                    }
                }
            }
        }
        let cell = match op {
            PrimOp::And => "NAND2",
            _ => "NOR2",
        };
        Match { cell, leaves: ins }
    }
}

fn dual_of(op: PrimOp) -> PrimOp {
    match op {
        PrimOp::And => PrimOp::Or,
        PrimOp::Or => PrimOp::And,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_netlist::bench_fmt;

    fn lib() -> Library {
        Library::standard()
    }

    fn map_src(src: &str) -> (Netlist, Netlist) {
        let raw = bench_fmt::parse(src, "t").unwrap();
        let mapped = map_netlist(&raw, &lib()).unwrap();
        (raw, mapped)
    }

    fn assert_equivalent(raw: &Netlist, mapped: &Netlist) {
        let l = lib();
        let n = raw.inputs().len();
        assert!(n <= 16, "exhaustive check limited to 16 inputs");
        for bits in 0..(1u32 << n) {
            let v: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(
                raw.eval_prim(&v),
                l.eval_netlist(mapped, &v),
                "mismatch at {bits:b}"
            );
        }
    }

    fn cell_names(mapped: &Netlist) -> Vec<String> {
        let l = lib();
        mapped
            .gate_ids()
            .map(|g| match mapped.gate(g).kind() {
                GateKind::Cell(c) => l.cell(c).name().to_string(),
                GateKind::Prim(op) => op.to_string(),
            })
            .collect()
    }

    #[test]
    fn sop_maps_to_ao22() {
        let (raw, mapped) = map_src(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\n\
             x = AND(a, b)\ny = AND(c, d)\nz = OR(x, y)\n",
        );
        assert_eq!(cell_names(&mapped), vec!["AO22"]);
        assert_equivalent(&raw, &mapped);
    }

    #[test]
    fn inverted_sop_maps_to_aoi22() {
        let (raw, mapped) = map_src(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\n\
             x = AND(a, b)\ny = AND(c, d)\nw = OR(x, y)\nz = NOT(w)\n",
        );
        assert_eq!(cell_names(&mapped), vec!["AOI22"]);
        assert_equivalent(&raw, &mapped);
    }

    #[test]
    fn oa12_pattern() {
        let (raw, mapped) = map_src(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\n\
             x = OR(a, b)\nz = AND(x, c)\n",
        );
        assert_eq!(cell_names(&mapped), vec!["OA12"]);
        assert_equivalent(&raw, &mapped);
    }

    #[test]
    fn wide_nand_becomes_nand4() {
        let (raw, mapped) = map_src(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\n\
             z = NAND(a, b, c, d)\n",
        );
        assert_eq!(cell_names(&mapped), vec!["NAND4"]);
        assert_equivalent(&raw, &mapped);
    }

    #[test]
    fn mux_is_recognized() {
        let (raw, mapped) = map_src(
            "INPUT(a)\nINPUT(b)\nINPUT(s)\nOUTPUT(z)\n\
             ns = NOT(s)\nx = AND(a, ns)\ny = AND(b, s)\nz = OR(x, y)\n",
        );
        assert_eq!(cell_names(&mapped), vec!["MUX2"]);
        assert_equivalent(&raw, &mapped);
    }

    #[test]
    fn fanout_blocks_absorption() {
        // The inner AND feeds two gates: it must stay a separate cell.
        let (raw, mapped) = map_src(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\nOUTPUT(w)\n\
             x = AND(a, b)\ny = AND(c, d)\nz = OR(x, y)\nw = NOT(x)\n",
        );
        let names = cell_names(&mapped);
        assert!(names.contains(&"AND2".to_string()), "{names:?}");
        assert!(!names.contains(&"AO22".to_string()), "{names:?}");
        assert_equivalent(&raw, &mapped);
    }

    #[test]
    fn xor_and_xnor() {
        let (raw, mapped) = map_src(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(w)\n\
             z = XOR(a, b)\nw = XNOR(a, b)\n",
        );
        let mut names = cell_names(&mapped);
        names.sort();
        assert_eq!(names, vec!["XNOR2", "XOR2"]);
        assert_equivalent(&raw, &mapped);
    }

    #[test]
    fn c17_maps_and_stays_equivalent() {
        let (raw, mapped) = map_src(
            "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\n\
             OUTPUT(22)\nOUTPUT(23)\n\
             10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n\
             19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n",
        );
        assert_eq!(mapped.num_gates(), 6, "each NAND2 maps to one cell");
        assert_equivalent(&raw, &mapped);
    }

    #[test]
    fn wide_gates_and_random_equivalence() {
        let (raw, mapped) = map_src(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nINPUT(g)\n\
             OUTPUT(z)\n\
             p = AND(a, b, c, d, e)\nq = NOR(e, f, g)\nr = XOR(a, d, g)\n\
             s = OR(p, q)\nz = AND(s, r)\n",
        );
        assert_equivalent(&raw, &mapped);
    }
}
