//! Priority interrupt controller generator — the structure-faithful
//! surrogate for ISCAS-85 c432 (a 27-channel interrupt controller with
//! 36 inputs and 7 outputs).
//!
//! Channels are organized as `groups × width` (3 × 9 for the c432-like
//! instance): each channel has a request line and each (group, bit)
//! position shares an enable line. The controller grants the
//! highest-priority enabled request (group-major priority) and encodes
//! the winning bit position.

use sta_netlist::{GateKind, NetId, Netlist, PrimOp};

/// Generates a priority interrupt controller with `groups` groups of
/// `width` channels.
///
/// Inputs: `groups·width` request lines + `width` enables
/// (3·9 + 9 = 36 for the c432-like configuration). Outputs: one grant per
/// group plus a binary encode of the winning bit (7 outputs at 3 × 9).
///
/// # Panics
///
/// Panics if `groups == 0` or `width == 0`.
pub fn interrupt_controller(groups: usize, width: usize) -> Netlist {
    assert!(groups > 0 && width > 0, "dimensions must be positive");
    let mut nl = Netlist::new(format!("intctl{groups}x{width}"));
    let req: Vec<Vec<NetId>> = (0..groups)
        .map(|gi| {
            (0..width)
                .map(|b| nl.add_input(format!("r{gi}_{b}")))
                .collect()
        })
        .collect();
    let enable: Vec<NetId> = (0..width).map(|b| nl.add_input(format!("e{b}"))).collect();
    let g = |nl: &mut Netlist, op: PrimOp, ins: &[NetId]| -> NetId {
        nl.add_gate(GateKind::Prim(op), ins, None).expect("valid")
    };
    // Masked requests.
    let masked: Vec<Vec<NetId>> = req
        .iter()
        .map(|row| {
            row.iter()
                .zip(&enable)
                .map(|(&r, &e)| g(&mut nl, PrimOp::And, &[r, e]))
                .collect()
        })
        .collect();
    // Group activity and group-major priority: group gi wins iff it has a
    // masked request and no earlier group does.
    let any: Vec<NetId> = masked
        .iter()
        .map(|row| g(&mut nl, PrimOp::Or, row))
        .collect();
    let mut blocked: Option<NetId> = None;
    let mut grants = Vec::with_capacity(groups);
    for (gi, &a) in any.iter().enumerate() {
        let grant = match blocked {
            None => g(&mut nl, PrimOp::Buf, &[a]),
            Some(b) => {
                let nb = g(&mut nl, PrimOp::Not, &[b]);
                g(&mut nl, PrimOp::And, &[a, nb])
            }
        };
        let grant = {
            let named = nl
                .add_gate(
                    GateKind::Prim(PrimOp::Buf),
                    &[grant],
                    Some(&format!("g{gi}")),
                )
                .expect("valid");
            nl.mark_output(named);
            grant
        };
        blocked = Some(match blocked {
            None => a,
            Some(b) => g(&mut nl, PrimOp::Or, &[b, a]),
        });
        grants.push(grant);
    }
    // Within the winning group, bit-level priority then binary encode.
    // sel[b] = OR over groups of (grant_g AND masked_g[b] AND no earlier
    // masked bit in that group).
    let mut winning_bit = Vec::with_capacity(width);
    for b in 0..width {
        let mut terms = Vec::with_capacity(groups);
        for (gi, row) in masked.iter().enumerate() {
            let mut term = g(&mut nl, PrimOp::And, &[grants[gi], row[b]]);
            if b > 0 {
                let earlier = g(&mut nl, PrimOp::Or, &row[..b]);
                let ne = g(&mut nl, PrimOp::Not, &[earlier]);
                term = g(&mut nl, PrimOp::And, &[term, ne]);
            }
            terms.push(term);
        }
        winning_bit.push(g(&mut nl, PrimOp::Or, &terms));
    }
    // Binary encoder over the one-hot winning bit.
    let code_bits = usize::BITS as usize - (width - 1).leading_zeros() as usize;
    for k in 0..code_bits.max(1) {
        let members: Vec<NetId> = winning_bit
            .iter()
            .enumerate()
            .filter(|(b, _)| b & (1 << k) != 0)
            .map(|(_, &n)| n)
            .collect();
        let bit = if members.is_empty() {
            // Constant-0 code bit: realized as AND(x, !x) over bit 0.
            let n0 = g(&mut nl, PrimOp::Not, &[winning_bit[0]]);
            g(&mut nl, PrimOp::And, &[winning_bit[0], n0])
        } else {
            g(&mut nl, PrimOp::Or, &members)
        };
        let named = nl
            .add_gate(
                GateKind::Prim(PrimOp::Buf),
                &[bit],
                Some(&format!("code{k}")),
            )
            .expect("valid");
        nl.mark_output(named);
    }
    nl.validate().expect("generated controller is valid");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(nl: &Netlist, groups: usize, width: usize, req: &[u32], enable: u32) -> Vec<bool> {
        let mut v = Vec::new();
        for &row in req.iter().take(groups) {
            for b in 0..width {
                v.push(row >> b & 1 == 1);
            }
        }
        for b in 0..width {
            v.push(enable >> b & 1 == 1);
        }
        nl.eval_prim(&v)
    }

    #[test]
    fn c432_like_shape() {
        let nl = interrupt_controller(3, 9);
        assert_eq!(nl.inputs().len(), 36, "matches c432's input count");
        assert_eq!(nl.outputs().len(), 7, "matches c432's output count");
    }

    #[test]
    fn highest_priority_group_wins() {
        let (groups, width) = (3, 9);
        let nl = interrupt_controller(groups, width);
        // Requests in groups 1 and 2; group 1 must win.
        let out = run(&nl, groups, width, &[0, 0b1000, 0b0001], 0x1FF);
        assert!(!out[0] && out[1] && !out[2]);
        // code = 3 (bit 3 of group 1).
        let code =
            out[3] as u32 | (out[4] as u32) << 1 | (out[5] as u32) << 2 | (out[6] as u32) << 3;
        assert_eq!(code, 3);
    }

    #[test]
    fn disabled_channels_are_ignored() {
        let (groups, width) = (3, 9);
        let nl = interrupt_controller(groups, width);
        // Group 0 requests bit 2, but bit 2 is masked off; group 2 bit 5
        // is enabled.
        let out = run(&nl, groups, width, &[0b100, 0, 0b100000], !0b100 & 0x1FF);
        assert!(!out[0] && !out[1] && out[2]);
        let code =
            out[3] as u32 | (out[4] as u32) << 1 | (out[5] as u32) << 2 | (out[6] as u32) << 3;
        assert_eq!(code, 5);
    }

    #[test]
    fn lowest_bit_wins_within_group() {
        let (groups, width) = (3, 9);
        let nl = interrupt_controller(groups, width);
        let out = run(&nl, groups, width, &[0b101000, 0, 0], 0x1FF);
        let code =
            out[3] as u32 | (out[4] as u32) << 1 | (out[5] as u32) << 2 | (out[6] as u32) << 3;
        assert_eq!(code, 3, "bit 3 outranks bit 5");
    }
}
