//! The benchmark catalog: ISCAS-85 names mapped to the exact c17 plus
//! structure-faithful surrogates for the rest (see DESIGN.md §4 for the
//! substitution rationale — the published ISCAS-85 netlists are not
//! shipped with this repository, so each is replaced by a generator that
//! reproduces its function family and size).

use sta_cells::Library;
use sta_netlist::{bench_fmt, Netlist, NetlistError};

use crate::alu::alu;
use crate::ecc::sec_circuit;
use crate::mapper::map_netlist;
use crate::mult::array_multiplier;
use crate::priority::interrupt_controller;
use crate::randlogic::{random_logic, RandParams};
use crate::sample::sample_circuit;
use crate::transforms::expand_xor;

/// The canonical ISCAS-85 c17 netlist (public-domain benchmark, verbatim).
pub const C17_BENCH: &str = "\
# c17 — ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// Description of one catalog entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Benchmark name (ISCAS-85 naming).
    pub name: &'static str,
    /// What the circuit is / what surrogate realizes it.
    pub description: &'static str,
    /// Gate count of the original ISCAS-85 circuit, for reference.
    pub iscas_gates: usize,
    /// Recommended justification-decision budget for N-worst runs of
    /// this circuit (`None` = the engine default suffices). The large
    /// surrogates carry a budget so the shipped flows (CLI defaults,
    /// `bench_mcmm`) terminate in bounded time; budgeted runs report
    /// `truncated` honestly. The values are the ones the pruning
    /// benchmarks established.
    pub decision_budget: Option<u64>,
}

/// All benchmarks, in the paper's Table 6 order.
pub const BENCHMARKS: [BenchmarkInfo; 12] = [
    BenchmarkInfo {
        name: "c17",
        description: "exact ISCAS-85 c17 (6 NAND2)",
        iscas_gates: 6,
        decision_budget: None,
    },
    BenchmarkInfo {
        name: "c432",
        description: "27-channel priority interrupt controller (generator)",
        iscas_gates: 160,
        decision_budget: None,
    },
    BenchmarkInfo {
        name: "c499",
        description: "32-bit single-error-correcting circuit (generator)",
        iscas_gates: 202,
        decision_budget: None,
    },
    BenchmarkInfo {
        name: "c880",
        description: "16-bit ALU (generator; 16-bit to match the c880 gate count)",
        iscas_gates: 383,
        decision_budget: None,
    },
    BenchmarkInfo {
        name: "c1355",
        description: "c499 with XORs expanded to NAND2s",
        iscas_gates: 546,
        decision_budget: None,
    },
    BenchmarkInfo {
        name: "c1908",
        description: "seeded random logic, c1908-sized",
        iscas_gates: 880,
        decision_budget: Some(2_000_000),
    },
    BenchmarkInfo {
        name: "c2670",
        description: "seeded random logic, c2670-sized",
        iscas_gates: 1193,
        decision_budget: Some(2_000_000),
    },
    BenchmarkInfo {
        name: "c3540",
        description: "seeded random logic, c3540-sized",
        iscas_gates: 1669,
        decision_budget: Some(2_000_000),
    },
    BenchmarkInfo {
        name: "c5315",
        description: "seeded random logic, c5315-sized",
        iscas_gates: 2307,
        decision_budget: Some(2_000_000),
    },
    BenchmarkInfo {
        name: "c6288",
        description: "16×16 array multiplier (generator)",
        iscas_gates: 2406,
        decision_budget: Some(1_000_000),
    },
    BenchmarkInfo {
        name: "c7552",
        description: "seeded random logic, c7552-sized",
        iscas_gates: 3512,
        decision_budget: Some(2_000_000),
    },
    BenchmarkInfo {
        name: "sample",
        description: "the paper's Fig. 4 example (AO22 on the critical path)",
        iscas_gates: 5,
        decision_budget: None,
    },
];

/// Benchmark names in catalog order.
pub fn names() -> Vec<&'static str> {
    BENCHMARKS.iter().map(|b| b.name).collect()
}

/// The catalog entry for a benchmark name (`None` for unknown names).
pub fn benchmark_info(name: &str) -> Option<BenchmarkInfo> {
    BENCHMARKS.iter().find(|b| b.name == name).copied()
}

/// Builds the primitive-gate netlist of a benchmark.
///
/// Returns `None` for unknown names.
pub fn primitive(name: &str) -> Option<Netlist> {
    let nl = match name {
        "c17" => bench_fmt::parse(C17_BENCH, "c17").expect("embedded c17 parses"),
        "c432" => renamed(interrupt_controller(3, 9), "c432"),
        "c499" => renamed(sec_circuit(), "c499"),
        "c880" => renamed(alu(16), "c880"),
        "c1355" => renamed(expand_xor(&sec_circuit()), "c1355"),
        "c1908" => random_logic(&RandParams {
            name: "c1908".into(),
            inputs: 33,
            outputs: 25,
            gates: 880,
            seed: 1908,
            window: 110,
        }),
        "c2670" => random_logic(&RandParams {
            name: "c2670".into(),
            inputs: 157,
            outputs: 64,
            gates: 1193,
            seed: 2670,
            window: 150,
        }),
        "c3540" => random_logic(&RandParams {
            name: "c3540".into(),
            inputs: 50,
            outputs: 22,
            gates: 1669,
            seed: 3540,
            window: 140,
        }),
        "c5315" => random_logic(&RandParams {
            name: "c5315".into(),
            inputs: 178,
            outputs: 123,
            gates: 2307,
            seed: 5315,
            window: 200,
        }),
        "c6288" => renamed(array_multiplier(16), "c6288"),
        "c7552" => random_logic(&RandParams {
            name: "c7552".into(),
            inputs: 207,
            outputs: 108,
            gates: 3512,
            seed: 7552,
            window: 230,
        }),
        "sample" => renamed(sample_circuit(), "sample"),
        _ => return None,
    };
    Some(nl)
}

/// Loads a primitive netlist from an ISCAS-85 `.bench` file on disk —
/// drop the published benchmark files next to the binary to run the
/// experiments on the *real* circuits instead of the surrogates.
///
/// # Errors
///
/// Returns I/O errors boxed into [`NetlistError::Parse`] message form, or
/// parse errors verbatim.
pub fn from_bench_file(path: &std::path::Path) -> Result<Netlist, NetlistError> {
    let text = std::fs::read_to_string(path).map_err(|e| NetlistError::Parse {
        line: 0,
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    bench_fmt::parse(&text, &name)
}

/// Resolves a benchmark by name with a disk override: if
/// `<dir>/<name>.bench` exists it is loaded (the real ISCAS netlist),
/// otherwise the built-in surrogate generator is used.
///
/// # Errors
///
/// Propagates parse errors from an existing-but-malformed file.
pub fn primitive_with_overrides(
    name: &str,
    dir: &std::path::Path,
) -> Result<Option<Netlist>, NetlistError> {
    let candidate = dir.join(format!("{name}.bench"));
    if candidate.is_file() {
        return from_bench_file(&candidate).map(Some);
    }
    Ok(primitive(name))
}

/// Builds the technology-mapped netlist of a benchmark.
///
/// # Errors
///
/// Propagates mapper errors; returns `Ok(None)` for unknown names.
pub fn mapped(name: &str, lib: &Library) -> Result<Option<Netlist>, NetlistError> {
    match primitive(name) {
        Some(nl) => map_netlist(&nl, lib).map(Some),
        None => Ok(None),
    }
}

fn renamed(mut nl: Netlist, name: &str) -> Netlist {
    nl.set_name(name);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_netlist::stats::NetlistStats;

    #[test]
    fn every_catalog_entry_builds_and_validates() {
        for info in BENCHMARKS {
            let nl = primitive(info.name).expect("known name");
            nl.validate().unwrap();
            assert_eq!(nl.name(), info.name);
            let stats = NetlistStats::of(&nl);
            assert!(stats.gates > 0, "{}", info.name);
        }
        assert!(primitive("c9999").is_none());
    }

    #[test]
    fn large_surrogates_carry_decision_budgets() {
        // The shipped flows rely on the big circuits being budgeted.
        for name in ["c1908", "c2670", "c3540", "c5315", "c6288", "c7552"] {
            let info = benchmark_info(name).expect("catalog entry");
            assert!(info.decision_budget.is_some(), "{name} has no budget");
        }
        // The small circuits finish exactly; a budget would be noise.
        for name in ["c17", "c432", "c499", "c880", "c1355", "sample"] {
            let info = benchmark_info(name).expect("catalog entry");
            assert_eq!(info.decision_budget, None, "{name}");
        }
        assert!(benchmark_info("c9999").is_none());
    }

    #[test]
    fn sizes_are_in_the_iscas_ballpark() {
        for info in BENCHMARKS {
            if info.name == "sample" || info.name == "c17" {
                continue;
            }
            let nl = primitive(info.name).unwrap();
            let gates = nl.num_gates();
            let lo = info.iscas_gates / 2;
            let hi = info.iscas_gates * 2;
            assert!(
                (lo..=hi).contains(&gates),
                "{}: {gates} gates vs ISCAS {}",
                info.name,
                info.iscas_gates
            );
        }
    }

    #[test]
    fn disk_override_takes_precedence() {
        let dir = std::env::temp_dir().join("sta_catalog_override");
        let _ = std::fs::create_dir_all(&dir);
        // A fake "c17" with a single inverter.
        std::fs::write(dir.join("c17.bench"), "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        let nl = primitive_with_overrides("c17", &dir).unwrap().unwrap();
        assert_eq!(nl.num_gates(), 1, "override wins");
        // Unknown names still fall through to the catalog (None).
        assert!(primitive_with_overrides("c9999", &dir).unwrap().is_none());
        // Without an override file the built-in c17 is used.
        let clean = std::env::temp_dir().join("sta_catalog_no_override");
        let _ = std::fs::create_dir_all(&clean);
        let nl = primitive_with_overrides("c17", &clean).unwrap().unwrap();
        assert_eq!(nl.num_gates(), 6);
    }

    #[test]
    fn mapped_catalog_produces_complex_gates() {
        use sta_netlist::GateKind;
        let lib = Library::standard();
        for name in ["c432", "c880", "c6288"] {
            let raw = primitive(name).unwrap();
            let m = mapped(name, &lib).unwrap().unwrap();
            m.validate().unwrap();
            let multi = m
                .gate_ids()
                .filter(|&g| match m.gate(g).kind() {
                    GateKind::Cell(c) => lib.cell(c).is_multi_vector(),
                    GateKind::Prim(_) => false,
                })
                .count();
            assert!(multi > 0, "{name} mapped without complex gates");
            // Spot-check equivalence on a few random-ish patterns.
            let n = raw.inputs().len();
            for k in 0..8u64 {
                let v: Vec<bool> = (0..n)
                    .map(|i| (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (i % 60)) & 1 == 1)
                    .collect();
                assert_eq!(
                    raw.eval_prim(&v),
                    lib.eval_netlist(&m, &v),
                    "{name} pattern {k}"
                );
            }
        }
    }
}
