//! The paper's analytical delay model (§IV.A, eq. 3): a multivariate
//! polynomial in equivalent fanout, input transition time, temperature and
//! supply voltage,
//!
//! ```text
//! f(Fo, t_in, T, VDD) = Σᵢ Σⱼ Σₖ Σₗ  P_ijkl · Foⁱ · t_inʲ · Tᵏ · VDDˡ
//! ```
//!
//! with per-variable maximum orders adjusted during extraction to hit a
//! target accuracy ("recursive polynomial regression").
//!
//! Because an STA run fixes `(T, VDD)` at the corner, the model also
//! supports *corner compilation* ([`PolyModel::compile`]): folding the
//! temperature/voltage axes into the coefficients once, leaving a dense
//! 2-D polynomial in `(Fo, t_in)` that evaluates in a single branch-free
//! nested Horner pass ([`CompiledPoly`]). Both the interpreted and the
//! compiled evaluators are built on the same [`horner_2d`] primitive, so
//! they agree **bit for bit** at the compiled corner.

use serde::{Deserialize, Serialize};

use crate::regress::{least_squares, rms_residual};

/// Number of model variables (Fo, t_in, T, VDD).
pub const NUM_VARS: usize = 4;

/// One characterization sample: predictor values and the measured response.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Equivalent fanout.
    pub fo: f64,
    /// Input transition time, ps.
    pub t_in: f64,
    /// Temperature, °C.
    pub temperature: f64,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Measured response (delay or output slew), ps.
    pub value: f64,
}

impl Sample {
    fn vars(&self) -> [f64; NUM_VARS] {
        [self.fo, self.t_in, self.temperature, self.vdd]
    }
}

/// Why a polynomial fit could not be produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FitError {
    /// The sample set is empty.
    NoSamples,
    /// A variable is constant across the samples but was assigned a
    /// non-zero order, which would make the design matrix singular.
    ConstantVariable {
        /// Index of the offending variable (0 = Fo … 3 = VDD).
        var: usize,
        /// The requested order for that variable.
        order: usize,
    },
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NoSamples => write!(f, "no samples to fit"),
            FitError::ConstantVariable { var, order } => write!(
                f,
                "variable {var} is constant in the samples but has order {order}"
            ),
        }
    }
}

impl std::error::Error for FitError {}

/// Nested Horner evaluation of a dense row-major 2-D coefficient matrix
/// with `n1` columns (second variable fastest):
///
/// ```text
/// Σᵢ Σⱼ  c[i·n1 + j] · x0ⁱ · x1ʲ
/// ```
///
/// This is the single arithmetic primitive shared by [`PolyModel::eval`]
/// and [`CompiledPoly::eval`]; keeping the floating-point operation
/// sequence identical in both is what makes a compiled corner reproduce
/// the interpreted model bit for bit.
#[inline]
fn horner_2d(c: &[f64], n1: usize, x0: f64, x1: f64) -> f64 {
    let mut acc = 0.0;
    for row in c.chunks_exact(n1).rev() {
        let mut r = 0.0;
        for &coeff in row.iter().rev() {
            r = r * x1 + coeff;
        }
        acc = acc * x0 + r;
    }
    acc
}

/// A fitted polynomial model.
///
/// Variables are affinely normalized to `[0, 1]` over the fitted range
/// before exponentiation — essential for conditioning when `t_in` spans
/// hundreds of ps while `VDD` spans a fraction of a volt.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolyModel {
    /// Per-variable maximum exponent (inclusive).
    orders: [usize; NUM_VARS],
    /// Coefficients, indexed by mixed radix of the exponents.
    coeffs: Vec<f64>,
    /// Per-variable normalization offset.
    lo: [f64; NUM_VARS],
    /// Per-variable normalization span.
    span: [f64; NUM_VARS],
    /// RMS residual on the training samples, ps.
    rms: f64,
}

impl PolyModel {
    /// Fits a model with fixed per-variable orders.
    ///
    /// # Errors
    ///
    /// Returns [`FitError::NoSamples`] on an empty sample set and
    /// [`FitError::ConstantVariable`] when a variable with order ≥ 1
    /// never varies across the samples.
    ///
    /// # Panics
    ///
    /// Still panics if there are fewer samples than coefficients (a
    /// caller bug, not a data condition).
    pub fn fit(samples: &[Sample], orders: [usize; NUM_VARS]) -> Result<Self, FitError> {
        if samples.is_empty() {
            return Err(FitError::NoSamples);
        }
        let (lo, span) = normalization(samples, &orders)?;
        let cols: usize = orders.iter().map(|o| o + 1).product();
        let rows = samples.len();
        let mut design = vec![0.0; rows * cols];
        let mut y = vec![0.0; rows];
        for (r, s) in samples.iter().enumerate() {
            fill_row(
                &mut design[r * cols..(r + 1) * cols],
                &s.vars(),
                &orders,
                &lo,
                &span,
            );
            y[r] = s.value;
        }
        let coeffs = least_squares(&design, &y, rows, cols);
        let rms = rms_residual(&design, &y, &coeffs, rows, cols);
        Ok(PolyModel {
            orders,
            coeffs,
            lo,
            span,
            rms,
        })
    }

    /// Fits with automatic order selection: starts from order 1 in every
    /// variable and greedily raises the order that most reduces the RMS
    /// residual, until the residual drops below
    /// `target_rel · mean(|value|)` or `max_orders` is reached in every
    /// variable.
    ///
    /// # Errors
    ///
    /// Returns [`FitError::NoSamples`] on an empty sample set.
    pub fn fit_auto(
        samples: &[Sample],
        max_orders: [usize; NUM_VARS],
        target_rel: f64,
    ) -> Result<Self, FitError> {
        if samples.is_empty() {
            return Err(FitError::NoSamples);
        }
        let mean_abs: f64 =
            samples.iter().map(|s| s.value.abs()).sum::<f64>() / samples.len() as f64;
        let target = target_rel * mean_abs.max(1e-9);
        // A variable that never varies in the sample set cannot support
        // order ≥ 1.
        let varies: Vec<bool> = (0..NUM_VARS)
            .map(|v| {
                let first = samples[0].vars()[v];
                samples.iter().any(|s| (s.vars()[v] - first).abs() > 1e-12)
            })
            .collect();
        let start: [usize; NUM_VARS] =
            std::array::from_fn(|v| if varies[v] { 1.min(max_orders[v]) } else { 0 });
        let mut current = PolyModel::fit(samples, start)?;
        loop {
            if current.rms <= target {
                return Ok(current);
            }
            let mut best: Option<PolyModel> = None;
            for v in 0..NUM_VARS {
                if !varies[v] || current.orders[v] >= max_orders[v] {
                    continue;
                }
                let mut orders = current.orders;
                orders[v] += 1;
                let cols: usize = orders.iter().map(|o| o + 1).product();
                if cols > samples.len() {
                    continue;
                }
                let cand = PolyModel::fit(samples, orders)?;
                if best.as_ref().is_none_or(|b| cand.rms < b.rms) {
                    best = Some(cand);
                }
            }
            match best {
                Some(b) if b.rms < current.rms * 0.999 => current = b,
                _ => return Ok(current),
            }
        }
    }

    /// Normalizes variable `v` to the fitted `[0, 1]` range, clamping.
    #[inline]
    fn normalized(&self, v: usize, x: f64) -> f64 {
        ((x - self.lo[v]) / self.span[v]).clamp(0.0, 1.0)
    }

    /// Evaluates the model.
    ///
    /// Inputs are clamped to the fitted range: polynomial extrapolation
    /// of order ≥ 2 diverges rapidly (a net with 4× the largest
    /// characterized fanout would otherwise get a delay off by orders of
    /// magnitude), so outside the grid the model holds its boundary value
    /// — the same convention LUT flows use. Characterize with a grid wide
    /// enough for the design's fanout spread (see
    /// [`crate::CharConfig::standard`]).
    ///
    /// Allocation-free: the mixed-radix coefficient layout is walked as a
    /// nest of Horner recurrences, with the inner `(T, VDD)` block folded
    /// by the same [`horner_2d`] a [`CompiledPoly`] caches — so compiling
    /// a corner does not change a single output bit.
    pub fn eval(&self, fo: f64, t_in: f64, temperature: f64, vdd: f64) -> f64 {
        let x0 = self.normalized(0, fo);
        let x1 = self.normalized(1, t_in);
        let x2 = self.normalized(2, temperature);
        let x3 = self.normalized(3, vdd);
        let n1 = self.orders[1] + 1;
        let n3 = self.orders[3] + 1;
        let block = (self.orders[2] + 1) * n3;
        let mut acc = 0.0;
        for i in (0..=self.orders[0]).rev() {
            let mut row = 0.0;
            for j in (0..n1).rev() {
                let c_ij = horner_2d(&self.coeffs[(i * n1 + j) * block..][..block], n3, x2, x3);
                row = row * x1 + c_ij;
            }
            acc = acc * x0 + row;
        }
        acc
    }

    /// Partially evaluates the model at a fixed `(T, VDD)` operating
    /// point, folding the temperature/voltage axes into the coefficient
    /// matrix once. The result answers `(Fo, t_in)` queries with a single
    /// nested Horner pass and is bit-identical to [`PolyModel::eval`] at
    /// the same corner.
    pub fn compile(&self, temperature: f64, vdd: f64) -> CompiledPoly {
        let x2 = self.normalized(2, temperature);
        let x3 = self.normalized(3, vdd);
        let n3 = self.orders[3] + 1;
        let block = (self.orders[2] + 1) * n3;
        let coeffs = self
            .coeffs
            .chunks_exact(block)
            .map(|b| horner_2d(b, n3, x2, x3))
            .collect();
        CompiledPoly {
            n0: (self.orders[0] + 1) as u32,
            n1: (self.orders[1] + 1) as u32,
            coeffs,
            lo: [self.lo[0], self.lo[1]],
            span: [self.span[0], self.span[1]],
        }
    }

    /// The per-variable orders of the fitted model.
    pub fn orders(&self) -> [usize; NUM_VARS] {
        self.orders
    }

    /// The fitted per-variable ranges `(lo, hi)` — the box
    /// [`PolyModel::eval`] clamps its inputs to. Sampling inside this box
    /// interrogates the model where it was actually trained (the fitting
    /// grid), which is what sanity checks should do: outside it the model
    /// just holds its boundary value.
    pub fn domain(&self) -> [(f64, f64); NUM_VARS] {
        std::array::from_fn(|v| (self.lo[v], self.lo[v] + self.span[v]))
    }

    /// RMS residual on the training set, ps.
    pub fn training_rms(&self) -> f64 {
        self.rms
    }

    /// Number of stored coefficients.
    pub fn num_coefficients(&self) -> usize {
        self.coeffs.len()
    }
}

/// A [`PolyModel`] with the corner's `(T, VDD)` folded in: a dense 2-D
/// Horner coefficient matrix over normalized `(Fo, t_in)`.
///
/// Produced by [`PolyModel::compile`]; the heart of the corner-compiled
/// kernel layer (`CompiledCorner`). Evaluation is branch-free and
/// allocation-free, and reproduces the interpreted model bit for bit at
/// the compiled corner.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompiledPoly {
    /// Number of Fo rows (`orders[0] + 1`).
    n0: u32,
    /// Number of t_in columns (`orders[1] + 1`).
    n1: u32,
    /// Row-major folded coefficients, `n0 × n1`.
    coeffs: Vec<f64>,
    /// Normalization offsets for (Fo, t_in).
    lo: [f64; 2],
    /// Normalization spans for (Fo, t_in).
    span: [f64; 2],
}

impl CompiledPoly {
    /// Evaluates the folded polynomial at `(Fo, t_in)`, clamping both to
    /// the fitted range exactly like [`PolyModel::eval`].
    #[inline]
    pub fn eval(&self, fo: f64, t_in: f64) -> f64 {
        let x0 = ((fo - self.lo[0]) / self.span[0]).clamp(0.0, 1.0);
        let x1 = ((t_in - self.lo[1]) / self.span[1]).clamp(0.0, 1.0);
        horner_2d(&self.coeffs, self.n1 as usize, x0, x1)
    }

    /// The `(rows, cols)` shape of the folded coefficient matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.n0 as usize, self.n1 as usize)
    }

    /// Number of folded coefficients (`rows × cols`).
    pub fn num_coefficients(&self) -> usize {
        self.coeffs.len()
    }
}

fn normalization(
    samples: &[Sample],
    orders: &[usize; NUM_VARS],
) -> Result<([f64; NUM_VARS], [f64; NUM_VARS]), FitError> {
    let mut lo = [f64::INFINITY; NUM_VARS];
    let mut hi = [f64::NEG_INFINITY; NUM_VARS];
    for s in samples {
        for (v, x) in s.vars().into_iter().enumerate() {
            lo[v] = lo[v].min(x);
            hi[v] = hi[v].max(x);
        }
    }
    let mut span = [1.0; NUM_VARS];
    for v in 0..NUM_VARS {
        let s = hi[v] - lo[v];
        if s > 1e-12 {
            span[v] = s;
        } else {
            // Constant variable: normalize to 0 so higher powers vanish.
            span[v] = 1.0;
            if orders[v] != 0 {
                return Err(FitError::ConstantVariable {
                    var: v,
                    order: orders[v],
                });
            }
        }
    }
    Ok((lo, span))
}

fn fill_row(
    row: &mut [f64],
    vars: &[f64; NUM_VARS],
    orders: &[usize; NUM_VARS],
    lo: &[f64; NUM_VARS],
    span: &[f64; NUM_VARS],
) {
    let powers: [Vec<f64>; NUM_VARS] = std::array::from_fn(|v| {
        let x = (vars[v] - lo[v]) / span[v];
        let mut p = Vec::with_capacity(orders[v] + 1);
        let mut acc = 1.0;
        for _ in 0..=orders[v] {
            p.push(acc);
            acc *= x;
        }
        p
    });
    let mut idx = [0usize; NUM_VARS];
    for slot in row.iter_mut() {
        *slot = powers[0][idx[0]] * powers[1][idx[1]] * powers[2][idx[2]] * powers[3][idx[3]];
        for v in (0..NUM_VARS).rev() {
            idx[v] += 1;
            if idx[v] <= orders[v] {
                break;
            }
            idx[v] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(f: impl Fn(f64, f64, f64, f64) -> f64) -> Vec<Sample> {
        let mut out = Vec::new();
        for &fo in &[0.5, 1.0, 2.0, 4.0, 8.0] {
            for &t_in in &[10.0, 40.0, 120.0, 300.0] {
                for &temp in &[0.0, 25.0, 75.0, 125.0] {
                    for &vdd in &[0.9, 1.0, 1.1] {
                        out.push(Sample {
                            fo,
                            t_in,
                            temperature: temp,
                            vdd,
                            value: f(fo, t_in, temp, vdd),
                        });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn recovers_polynomial_ground_truth() {
        // A function exactly representable at orders (2,1,1,1).
        let truth = |fo: f64, t: f64, temp: f64, v: f64| {
            20.0 + 8.0 * fo + 0.4 * fo * fo + 0.15 * t + 0.02 * temp - 30.0 * (v - 1.0)
                + 0.01 * fo * t
        };
        let samples = synth(truth);
        let m = PolyModel::fit(&samples, [2, 1, 1, 1]).unwrap();
        assert!(m.training_rms() < 1e-8, "rms = {}", m.training_rms());
        let got = m.eval(3.0, 75.0, 50.0, 1.05);
        let want = truth(3.0, 75.0, 50.0, 1.05);
        assert!((got - want).abs() < 1e-6, "{got} vs {want}");
    }

    #[test]
    fn auto_fit_raises_orders_until_accurate() {
        // Mildly nonlinear in Fo; auto fit should reach a small residual.
        let truth = |fo: f64, t: f64, temp: f64, v: f64| {
            35.0 * (1.0 + fo).ln() + 0.2 * t + 0.03 * temp - 25.0 * (v - 1.0)
        };
        let samples = synth(truth);
        let m = PolyModel::fit_auto(&samples, [3, 3, 2, 2], 0.005).unwrap();
        let mean: f64 = samples.iter().map(|s| s.value).sum::<f64>() / samples.len() as f64;
        assert!(
            m.training_rms() < 0.02 * mean,
            "rms {} vs mean {mean}",
            m.training_rms()
        );
        assert!(m.orders()[0] >= 2, "Fo order should have been raised");
    }

    #[test]
    fn constant_variables_get_order_zero() {
        // Temperature and VDD fixed: auto fit must not blow up.
        let samples: Vec<Sample> = [0.5, 1.0, 2.0, 4.0]
            .iter()
            .flat_map(|&fo| {
                [20.0, 60.0, 150.0].iter().map(move |&t_in| Sample {
                    fo,
                    t_in,
                    temperature: 25.0,
                    vdd: 1.2,
                    value: 10.0 + 5.0 * fo + 0.1 * t_in,
                })
            })
            .collect();
        let m = PolyModel::fit_auto(&samples, [3, 3, 2, 2], 0.01).unwrap();
        assert_eq!(m.orders()[2], 0);
        assert_eq!(m.orders()[3], 0);
        assert!((m.eval(3.0, 100.0, 25.0, 1.2) - 35.0).abs() < 1e-6);
    }

    #[test]
    fn serde_roundtrip() {
        let samples = synth(|fo, t, _, _| 5.0 + fo + 0.1 * t);
        let m = PolyModel::fit(&samples, [1, 1, 0, 0]).unwrap();
        let js = serde_json::to_string(&m).unwrap();
        let back: PolyModel = serde_json::from_str(&js).unwrap();
        assert_eq!(back, m);
        assert_eq!(
            back.eval(2.0, 50.0, 25.0, 1.0),
            m.eval(2.0, 50.0, 25.0, 1.0)
        );
    }

    #[test]
    fn empty_fit_is_an_error() {
        assert_eq!(PolyModel::fit(&[], [1, 1, 1, 1]), Err(FitError::NoSamples));
        assert_eq!(
            PolyModel::fit_auto(&[], [3, 3, 2, 2], 0.01),
            Err(FitError::NoSamples)
        );
    }

    #[test]
    fn constant_variable_with_order_is_an_error() {
        let samples: Vec<Sample> = (0..8)
            .map(|i| Sample {
                fo: 1.0 + i as f64,
                t_in: 50.0,
                temperature: 25.0,
                vdd: 1.2,
                value: 10.0 + i as f64,
            })
            .collect();
        assert_eq!(
            PolyModel::fit(&samples, [1, 1, 0, 0]),
            Err(FitError::ConstantVariable { var: 1, order: 1 })
        );
    }

    #[test]
    fn compiled_corner_matches_eval_bitwise() {
        let truth = |fo: f64, t: f64, temp: f64, v: f64| {
            18.0 + 6.5 * fo + 0.3 * fo * fo + 0.12 * t + 0.04 * temp - 22.0 * (v - 1.0)
                + 0.02 * fo * t
                + 0.001 * t * temp
        };
        let samples = synth(truth);
        let m = PolyModel::fit_auto(&samples, [3, 3, 2, 2], 1e-4).unwrap();
        for &(temp, vdd) in &[(25.0, 1.0), (125.0, 0.9), (-10.0, 1.3)] {
            let k = m.compile(temp, vdd);
            assert_eq!(k.shape().0, m.orders()[0] + 1);
            // Include out-of-range points: clamping must match too.
            for &fo in &[0.1, 0.5, 1.7, 4.2, 8.0, 20.0] {
                for &t_in in &[1.0, 10.0, 55.5, 120.0, 300.0, 900.0] {
                    let interp = m.eval(fo, t_in, temp, vdd);
                    let compiled = k.eval(fo, t_in);
                    assert_eq!(
                        compiled.to_bits(),
                        interp.to_bits(),
                        "fo={fo} t_in={t_in} T={temp} VDD={vdd}: {compiled} vs {interp}"
                    );
                }
            }
        }
    }
}
