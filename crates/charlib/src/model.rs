//! The characterized timing library: per-(cell, pin, vector, edge)
//! polynomial models plus the vector-blind LUT models of the baseline.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sta_cells::{Corner, Edge, Library, Polarity, Technology};
use sta_netlist::{CellId, GateKind, NetId, Netlist};

use crate::lut::Lut2d;
use crate::poly::PolyModel;

/// Delay and output-slew models of one timing-arc variant for one input
/// edge.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArcModel {
    /// Propagation delay model (ps).
    pub delay: PolyModel,
    /// Output transition-time model (ps).
    pub slew: PolyModel,
    /// Largest delay observed among the characterization samples, ps
    /// (used for conservative structural bounds).
    pub max_sample_delay: f64,
}

impl ArcModel {
    /// Evaluates delay and output slew.
    pub fn eval(&self, fo: f64, t_in: f64, corner: Corner) -> (f64, f64) {
        (
            self.delay.eval(fo, t_in, corner.temperature, corner.vdd),
            self.slew.eval(fo, t_in, corner.temperature, corner.vdd),
        )
    }
}

/// Models of one (pin, sensitization-vector) arc variant, both input edges.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArcVariant {
    /// The transitioning pin.
    pub pin: u8,
    /// 1-based case number within the pin (paper's Case 1/2/3).
    pub case: usize,
    /// Output polarity under this vector.
    pub polarity: Polarity,
    /// Models for an input rise.
    pub rise: ArcModel,
    /// Models for an input fall.
    pub fall: ArcModel,
}

impl ArcVariant {
    /// The models for the given input edge.
    pub fn for_edge(&self, edge: Edge) -> &ArcModel {
        match edge {
            Edge::Rise => &self.rise,
            Edge::Fall => &self.fall,
        }
    }
}

/// Vector-blind LUT models of one pin (characterized at the reference
/// vector only), per input edge.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LutArc {
    /// The transitioning pin.
    pub pin: u8,
    /// Polarity of the reference vector (the baseline assumes this
    /// polarity for the pin).
    pub polarity: Polarity,
    /// Delay table, input rise.
    pub rise_delay: Lut2d,
    /// Output-slew table, input rise.
    pub rise_slew: Lut2d,
    /// Delay table, input fall.
    pub fall_delay: Lut2d,
    /// Output-slew table, input fall.
    pub fall_slew: Lut2d,
}

impl LutArc {
    /// Evaluates (delay, slew) for the given input edge.
    pub fn eval(&self, edge: Edge, fo: f64, t_in: f64) -> (f64, f64) {
        match edge {
            Edge::Rise => (
                self.rise_delay.eval(fo, t_in),
                self.rise_slew.eval(fo, t_in),
            ),
            Edge::Fall => (
                self.fall_delay.eval(fo, t_in),
                self.fall_slew.eval(fo, t_in),
            ),
        }
    }
}

/// All timing data of one cell type.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellTiming {
    /// The cell this data describes.
    pub cell: CellId,
    /// Cell name (for reports).
    pub name: String,
    /// Per-pin input capacitance, fF.
    pub input_caps: Vec<f64>,
    /// Average input capacitance (the paper's per-cell-type `Cin`), fF.
    pub avg_input_cap: f64,
    /// All characterized arc variants.
    pub variants: Vec<ArcVariant>,
    /// `variant_index[pin][vector]` → index into `variants`.
    pub variant_index: Vec<Vec<usize>>,
    /// Vector-blind LUT models, one per pin.
    pub luts: Vec<LutArc>,
}

impl CellTiming {
    /// The arc variant for (pin, vector index).
    ///
    /// # Panics
    ///
    /// Panics if the pin or vector index is out of range.
    pub fn variant(&self, pin: u8, vector: usize) -> &ArcVariant {
        &self.variants[self.variant_index[pin as usize][vector]]
    }

    /// Number of sensitization vectors of `pin`.
    pub fn num_vectors(&self, pin: u8) -> usize {
        self.variant_index[pin as usize].len()
    }

    /// The LUT models of `pin`.
    pub fn lut(&self, pin: u8) -> &LutArc {
        &self.luts[pin as usize]
    }

    /// A conservative per-cell delay upper bound: the largest delay sample
    /// over all variants and edges.
    pub fn max_delay_bound(&self) -> f64 {
        self.variants
            .iter()
            .flat_map(|v| [v.rise.max_sample_delay, v.fall.max_sample_delay])
            .fold(0.0, f64::max)
    }
}

/// A characterized timing library for one technology.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimingLibrary {
    /// The technology this library was characterized for.
    pub tech: Technology,
    /// Per-cell timing, indexed by [`CellId`].
    pub cells: Vec<CellTiming>,
}

impl TimingLibrary {
    /// Timing data of one cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a cell of the characterized library.
    pub fn cell(&self, id: CellId) -> &CellTiming {
        &self.cells[id.index()]
    }

    /// Polynomial (delay, slew) of an arc variant.
    #[allow(clippy::too_many_arguments)]
    pub fn delay_slew(
        &self,
        cell: CellId,
        pin: u8,
        vector: usize,
        in_edge: Edge,
        fo: f64,
        t_in: f64,
        corner: Corner,
    ) -> (f64, f64) {
        self.cell(cell)
            .variant(pin, vector)
            .for_edge(in_edge)
            .eval(fo, t_in, corner)
    }

    /// Vector-blind LUT (delay, slew) of a pin.
    pub fn lut_delay_slew(
        &self,
        cell: CellId,
        pin: u8,
        in_edge: Edge,
        fo: f64,
        t_in: f64,
    ) -> (f64, f64) {
        self.cell(cell).lut(pin).eval(in_edge, fo, t_in)
    }

    /// The total capacitive load (fF) seen by the driver of `net`: the
    /// input capacitances of all fanout pins plus per-pin wire
    /// capacitance.
    ///
    /// # Panics
    ///
    /// Panics if a fanout gate is an unmapped primitive (run the
    /// technology mapper first).
    pub fn net_load(&self, nl: &Netlist, net: NetId) -> f64 {
        let mut load = 0.0;
        for pr in nl.net(net).fanout() {
            let gate = nl.gate(pr.gate);
            let cell = match gate.kind() {
                GateKind::Cell(c) => c,
                GateKind::Prim(op) => {
                    panic!("net_load on unmapped primitive gate {op}")
                }
            };
            load += self.cell(cell).input_caps[pr.pin] + self.tech.c_wire;
        }
        load
    }

    /// The equivalent fanout (paper §IV.A) of the gate driving `net`:
    /// `Fo = Cout / Cin` with `Cin` the driving cell's average input
    /// capacitance. Primary outputs with no fanout get a floor load of one
    /// wire capacitance.
    pub fn equivalent_fanout(&self, nl: &Netlist, net: NetId, driver_cell: CellId) -> f64 {
        let cout = self.net_load(nl, net).max(self.tech.c_wire);
        cout / self.cell(driver_cell).avg_input_cap
    }

    /// A resolved handle on one (cell, pin, vector) arc variant.
    ///
    /// Resolving the double index (`variant_index[pin][vector]` →
    /// `variants[..]`) once and evaluating through the handle keeps the
    /// lookup off the hot loop of callers that touch the same arc many
    /// times (the enumerator's timing advance).
    ///
    /// # Panics
    ///
    /// Panics if the cell, pin, or vector index is out of range.
    pub fn arc_ref(&self, cell: CellId, pin: u8, vector: usize) -> ArcRef<'_> {
        ArcRef {
            variant: self.cell(cell).variant(pin, vector),
        }
    }

    /// Memoized variant of [`TimingLibrary::delay_slew`].
    ///
    /// The cache key covers (cell, pin, vector, edge, fanout bits, input
    /// slew bits) but **not** the corner: a [`ModelCache`] must only ever
    /// be used with one corner (the enumerator fixes the corner per run).
    #[allow(clippy::too_many_arguments)]
    pub fn delay_slew_cached(
        &self,
        cache: &mut ModelCache,
        cell: CellId,
        pin: u8,
        vector: usize,
        in_edge: Edge,
        fo: f64,
        t_in: f64,
        corner: Corner,
    ) -> (f64, f64) {
        let key = ModelKey {
            cell: cell.index() as u32,
            pin,
            edge: matches!(in_edge, Edge::Fall),
            vector: vector as u16,
            fo: fo.to_bits(),
            t_in: t_in.to_bits(),
        };
        if let Some(&hit) = cache.map.get(&key) {
            cache.hits += 1;
            return hit;
        }
        cache.misses += 1;
        let out = self.delay_slew(cell, pin, vector, in_edge, fo, t_in, corner);
        if cache.map.len() >= ModelCache::CAPACITY {
            cache.map.clear();
        }
        cache.map.insert(key, out);
        out
    }

    /// Sanity check: the library covers every cell id used by `lib`.
    pub fn covers(&self, lib: &Library) -> bool {
        lib.iter().all(|c| {
            self.cells
                .get(c.id().index())
                .is_some_and(|t| t.cell == c.id() && t.name == c.name())
        })
    }
}

/// A resolved (cell, pin, vector) arc handle (see
/// [`TimingLibrary::arc_ref`]).
#[derive(Clone, Copy, Debug)]
pub struct ArcRef<'a> {
    variant: &'a ArcVariant,
}

impl ArcRef<'_> {
    /// Output polarity of the arc under its vector.
    pub fn polarity(&self) -> Polarity {
        self.variant.polarity
    }

    /// Evaluates (delay, slew) for the given input edge.
    pub fn eval(&self, in_edge: Edge, fo: f64, t_in: f64, corner: Corner) -> (f64, f64) {
        self.variant.for_edge(in_edge).eval(fo, t_in, corner)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct ModelKey {
    cell: u32,
    pin: u8,
    /// `true` = falling input edge.
    edge: bool,
    vector: u16,
    fo: u64,
    t_in: u64,
}

/// A memo table over [`TimingLibrary::delay_slew`] evaluations, keyed by
/// (cell, pin, vector, edge, exact `fo` bits, exact `t_in` bits).
///
/// The enumeration DFS revisits the same arc with the same incoming slew
/// whenever sibling branches reconverge on a sub-path, so exact-bits
/// memoization has a high hit rate without any approximation. One cache
/// per worker thread — no sharing, no locks. The corner is *not* part of
/// the key; use one cache per corner.
#[derive(Clone, Debug, Default)]
pub struct ModelCache {
    map: HashMap<ModelKey, (f64, f64)>,
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to polynomial evaluation.
    pub misses: u64,
}

impl ModelCache {
    /// Entry cap; the table is cleared (not evicted per-entry) when full.
    const CAPACITY: usize = 1 << 20;

    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all memoized entries (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::Sample;

    fn dummy_poly(base: f64) -> PolyModel {
        let samples: Vec<Sample> = [0.5, 1.0, 2.0, 4.0]
            .iter()
            .flat_map(|&fo| {
                [20.0, 80.0].iter().map(move |&t_in| Sample {
                    fo,
                    t_in,
                    temperature: 25.0,
                    vdd: 1.0,
                    value: base + 3.0 * fo + 0.1 * t_in,
                })
            })
            .collect();
        PolyModel::fit(&samples, [1, 1, 0, 0]).unwrap()
    }

    fn dummy_lut(base: f64) -> Lut2d {
        Lut2d::tabulate(vec![0.5, 2.0, 8.0], vec![10.0, 100.0], |fo, tin| {
            base + 3.0 * fo + 0.1 * tin
        })
    }

    fn dummy_cell_timing(id: usize, name: &str, pins: u8, vectors_per_pin: usize) -> CellTiming {
        let arc = |pin: u8, case: usize| ArcVariant {
            pin,
            case,
            polarity: Polarity::Inverting,
            rise: ArcModel {
                delay: dummy_poly(10.0 + case as f64),
                slew: dummy_poly(20.0),
                max_sample_delay: 100.0 + case as f64,
            },
            fall: ArcModel {
                delay: dummy_poly(12.0 + case as f64),
                slew: dummy_poly(22.0),
                max_sample_delay: 110.0 + case as f64,
            },
        };
        let mut variants = Vec::new();
        let mut variant_index = Vec::new();
        for pin in 0..pins {
            let mut per_pin = Vec::new();
            for case in 1..=vectors_per_pin {
                per_pin.push(variants.len());
                variants.push(arc(pin, case));
            }
            variant_index.push(per_pin);
        }
        let luts = (0..pins)
            .map(|pin| LutArc {
                pin,
                polarity: Polarity::Inverting,
                rise_delay: dummy_lut(10.0),
                rise_slew: dummy_lut(20.0),
                fall_delay: dummy_lut(12.0),
                fall_slew: dummy_lut(22.0),
            })
            .collect();
        CellTiming {
            cell: CellId::from_index(id),
            name: name.into(),
            input_caps: vec![2.0; pins as usize],
            avg_input_cap: 2.0,
            variants,
            variant_index,
            luts,
        }
    }

    #[test]
    fn variant_lookup_and_bounds() {
        let ct = dummy_cell_timing(0, "X", 2, 3);
        assert_eq!(ct.num_vectors(1), 3);
        assert_eq!(ct.variant(1, 2).case, 3);
        assert_eq!(ct.max_delay_bound(), 113.0);
    }

    #[test]
    fn library_eval_paths() {
        let tlib = TimingLibrary {
            tech: Technology::n90(),
            cells: vec![dummy_cell_timing(0, "X", 2, 1)],
        };
        let corner = Corner::nominal(&tlib.tech);
        let (d, s) = tlib.delay_slew(CellId::from_index(0), 0, 0, Edge::Rise, 2.0, 50.0, corner);
        assert!((d - (11.0 + 6.0 + 5.0)).abs() < 1e-6);
        assert!(s > 0.0);
        let (dl, _) = tlib.lut_delay_slew(CellId::from_index(0), 0, Edge::Fall, 2.0, 50.0);
        assert!((dl - (12.0 + 6.0 + 5.0)).abs() < 1e-6);
    }

    #[test]
    fn cached_eval_matches_direct_and_counts_hits() {
        let tlib = TimingLibrary {
            tech: Technology::n90(),
            cells: vec![dummy_cell_timing(0, "X", 2, 2)],
        };
        let corner = Corner::nominal(&tlib.tech);
        let cid = CellId::from_index(0);
        let mut cache = ModelCache::new();
        let direct = tlib.delay_slew(cid, 1, 0, Edge::Rise, 2.0, 50.0, corner);
        let first = tlib.delay_slew_cached(&mut cache, cid, 1, 0, Edge::Rise, 2.0, 50.0, corner);
        let second = tlib.delay_slew_cached(&mut cache, cid, 1, 0, Edge::Rise, 2.0, 50.0, corner);
        assert_eq!(direct, first);
        assert_eq!(first, second);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // Different edge / vector are distinct entries.
        tlib.delay_slew_cached(&mut cache, cid, 1, 1, Edge::Rise, 2.0, 50.0, corner);
        tlib.delay_slew_cached(&mut cache, cid, 1, 0, Edge::Fall, 2.0, 50.0, corner);
        assert_eq!(cache.misses, 3);
        assert_eq!(cache.len(), 3);
        // The resolved handle agrees with the indexed lookup.
        let arc = tlib.arc_ref(cid, 1, 0);
        assert_eq!(arc.eval(Edge::Rise, 2.0, 50.0, corner), direct);
        assert_eq!(arc.polarity(), Polarity::Inverting);
    }

    #[test]
    fn net_load_and_fanout() {
        use sta_netlist::GateKind;
        let tlib = TimingLibrary {
            tech: Technology::n90(),
            cells: vec![dummy_cell_timing(0, "X", 2, 1)],
        };
        let cid = CellId::from_index(0);
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(GateKind::Cell(cid), &[a, b], None).unwrap();
        let z = nl.add_gate(GateKind::Cell(cid), &[x, a], None).unwrap();
        nl.mark_output(z);
        // x drives one pin: load = 2.0 + c_wire.
        let load = tlib.net_load(&nl, x);
        assert!((load - (2.0 + tlib.tech.c_wire)).abs() < 1e-9);
        let fo = tlib.equivalent_fanout(&nl, x, cid);
        assert!((fo - load / 2.0).abs() < 1e-9);
        // Primary output z has no fanout: floor load.
        let fo_out = tlib.equivalent_fanout(&nl, z, cid);
        assert!((fo_out - tlib.tech.c_wire / 2.0).abs() < 1e-9);
    }
}
