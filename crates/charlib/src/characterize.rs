//! Library characterization: the paper's one-time parameter-extraction
//! process (§IV.A).
//!
//! For every (cell, pin, sensitization vector, input edge) the grid of
//! (Fo × t_in × T × VDD) operating points is electrically simulated with
//! `sta-esim`, and a polynomial model is fitted per arc variant by
//! recursive order selection. In parallel, vector-blind LUT models (one
//! per pin, characterized at the Case-1 reference vector only, at the
//! nominal corner) are tabulated for the commercial-style baseline.

use std::fs;
use std::path::Path;

use sta_cells::{Cell, Corner, Edge, Library, SensVector, Technology};
use sta_esim::cellsim::{cell_input_cap, input_capacitance, simulate_arc, Drive};
use sta_esim::EsimError;

use crate::lut::Lut2d;
use crate::model::{ArcModel, ArcVariant, CellTiming, LutArc, TimingLibrary};
use crate::poly::{FitError, PolyModel, Sample};

/// Characterization configuration: sweep grids, fit targets, parallelism.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CharConfig {
    /// Equivalent-fanout grid.
    pub fo_grid: Vec<f64>,
    /// Input transition-time grid, ps.
    pub tin_grid: Vec<f64>,
    /// Temperature grid, °C.
    pub temp_grid: Vec<f64>,
    /// Supply grid as multiples of the nominal VDD.
    pub vdd_scale_grid: Vec<f64>,
    /// LUT fanout axis (baseline model).
    pub lut_fo: Vec<f64>,
    /// LUT transition-time axis, ps (baseline model).
    pub lut_tin: Vec<f64>,
    /// Maximum polynomial order per variable (Fo, t_in, T, VDD).
    pub max_orders: [usize; 4],
    /// Target relative RMS residual of the polynomial fit.
    pub target_rel: f64,
    /// Worker threads.
    pub threads: usize,
}

impl CharConfig {
    /// The full-quality configuration used for the paper reproduction.
    pub fn standard() -> Self {
        CharConfig {
            // The fanout axis must cover the design's real fanout spread:
            // unbuffered high-fanout nets (c499's syndrome lines drive ~30
            // pins) otherwise land outside the grid, where the polynomial
            // holds its boundary value.
            fo_grid: vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
            tin_grid: vec![10.0, 30.0, 80.0, 200.0, 500.0, 1000.0],
            temp_grid: vec![0.0, 25.0, 75.0, 125.0],
            vdd_scale_grid: vec![0.9, 1.0, 1.1],
            lut_fo: vec![0.5, 2.0, 8.0, 32.0],
            lut_tin: vec![10.0, 80.0, 300.0, 1000.0],
            max_orders: [3, 3, 2, 2],
            target_rel: 0.01,
            threads: default_threads(),
        }
    }

    /// A reduced configuration for unit tests: nominal corner only, small
    /// grids. Orders of magnitude faster, still exercises every code path.
    pub fn fast() -> Self {
        CharConfig {
            fo_grid: vec![1.0, 3.0, 8.0],
            tin_grid: vec![20.0, 80.0, 250.0],
            temp_grid: vec![25.0],
            vdd_scale_grid: vec![1.0],
            lut_fo: vec![1.0, 4.0, 8.0],
            lut_tin: vec![20.0, 100.0, 250.0],
            max_orders: [2, 2, 0, 0],
            target_rel: 0.02,
            threads: default_threads(),
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Errors from characterization.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CharError {
    /// Electrical simulation failed for an arc.
    Sim {
        /// Cell being characterized.
        cell: String,
        /// Pin under test.
        pin: u8,
        /// Case number of the vector.
        case: usize,
        /// Underlying simulator error.
        source: EsimError,
    },
    /// Polynomial fitting failed for an arc's sample set.
    Fit {
        /// Cell being characterized.
        cell: String,
        /// Pin under test.
        pin: u8,
        /// Case number of the vector.
        case: usize,
        /// Underlying fit error.
        source: FitError,
    },
}

impl std::fmt::Display for CharError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CharError::Sim {
                cell,
                pin,
                case,
                source,
            } => write!(
                f,
                "characterization of {cell} pin {pin} case {case} failed: {source}"
            ),
            CharError::Fit {
                cell,
                pin,
                case,
                source,
            } => write!(
                f,
                "model fit for {cell} pin {pin} case {case} failed: {source}"
            ),
        }
    }
}

impl std::error::Error for CharError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CharError::Sim { source, .. } => Some(source),
            CharError::Fit { source, .. } => Some(source),
        }
    }
}

/// Characterizes the whole library for one technology.
///
/// # Errors
///
/// Returns [`CharError::Sim`] if any arc fails to simulate (indicative of a
/// malformed cell or an unreachable operating point).
pub fn characterize(
    lib: &Library,
    tech: &Technology,
    cfg: &CharConfig,
) -> Result<TimingLibrary, CharError> {
    characterize_observed(lib, tech, cfg, &sta_obs::Observer::disabled(), 0)
}

/// [`characterize`] with observability: each cell's characterization is
/// recorded as a span under `parent` (a `sta_obs::SpanGuard::id`), with
/// the cell's library index as the ordinal — so the merged span tree
/// lists cells in library order no matter which worker simulated them.
///
/// # Errors
///
/// Same as [`characterize`].
pub fn characterize_observed(
    lib: &Library,
    tech: &Technology,
    cfg: &CharConfig,
    obs: &sta_obs::Observer,
    parent: u64,
) -> Result<TimingLibrary, CharError> {
    let cells: Vec<&Cell> = lib.iter().collect();
    let mut results: Vec<Option<Result<CellTiming, CharError>>> = Vec::new();
    results.resize_with(cells.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = parking_lot::Mutex::new(&mut results);
    crossbeam::scope(|scope| {
        for _ in 0..cfg.threads.max(1) {
            scope.spawn(|_| {
                // Per-worker span buffer: recording is lock-free; the
                // batch merges into the shared recorder on drop.
                let mut spans = obs.local();
                loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= cells.len() {
                        break;
                    }
                    let cell = cells[idx];
                    let outcome = spans.time(
                        parent,
                        idx as u64,
                        "cell",
                        vec![("cell", cell.name().to_string())],
                        || characterize_cell(cell, tech, cfg),
                    );
                    results_mutex.lock()[idx] = Some(outcome);
                }
            });
        }
    })
    .expect("characterization worker panicked");
    let mut out = Vec::with_capacity(cells.len());
    for r in results {
        out.push(r.expect("every cell visited")?);
    }
    Ok(TimingLibrary {
        tech: tech.clone(),
        cells: out,
    })
}

/// Characterizes one cell (all pins, vectors, edges).
///
/// # Errors
///
/// Returns [`CharError::Sim`] if an arc fails to simulate.
pub fn characterize_cell(
    cell: &Cell,
    tech: &Technology,
    cfg: &CharConfig,
) -> Result<CellTiming, CharError> {
    let avg_cin = cell_input_cap(cell, tech);
    let input_caps: Vec<f64> = (0..cell.num_pins())
        .map(|p| input_capacitance(cell, tech, p))
        .collect();

    let mut variants = Vec::new();
    let mut variant_index = Vec::new();
    let mut luts = Vec::new();
    for pin in 0..cell.num_pins() {
        let vectors = cell.vectors_of(pin);
        let mut per_pin = Vec::new();
        for v in vectors {
            let rise = fit_arc(cell, tech, cfg, v, Edge::Rise, avg_cin)?;
            let fall = fit_arc(cell, tech, cfg, v, Edge::Fall, avg_cin)?;
            per_pin.push(variants.len());
            variants.push(ArcVariant {
                pin,
                case: v.case,
                polarity: v.polarity,
                rise,
                fall,
            });
        }
        variant_index.push(per_pin);
        // Vector-blind LUT at the reference (Case 1) vector, nominal corner.
        let reference = &vectors[0];
        luts.push(tabulate_lut(cell, tech, cfg, reference, avg_cin)?);
    }
    Ok(CellTiming {
        cell: cell.id(),
        name: cell.name().to_string(),
        input_caps,
        avg_input_cap: avg_cin,
        variants,
        variant_index,
        luts,
    })
}

fn fit_arc(
    cell: &Cell,
    tech: &Technology,
    cfg: &CharConfig,
    vector: &SensVector,
    edge: Edge,
    avg_cin: f64,
) -> Result<ArcModel, CharError> {
    let mut delay_samples = Vec::new();
    let mut slew_samples = Vec::new();
    let mut max_delay: f64 = 0.0;
    for &fo in &cfg.fo_grid {
        for &t_in in &cfg.tin_grid {
            for &temperature in &cfg.temp_grid {
                for &scale in &cfg.vdd_scale_grid {
                    let corner = Corner {
                        temperature,
                        vdd: scale * tech.vdd,
                    };
                    let outcome = simulate_arc(
                        cell,
                        tech,
                        corner,
                        vector,
                        edge,
                        Drive::Ramp { transition: t_in },
                        fo * avg_cin,
                    )
                    .map_err(|source| CharError::Sim {
                        cell: cell.name().to_string(),
                        pin: vector.pin,
                        case: vector.case,
                        source,
                    })?;
                    max_delay = max_delay.max(outcome.delay);
                    delay_samples.push(Sample {
                        fo,
                        t_in,
                        temperature,
                        vdd: corner.vdd,
                        value: outcome.delay,
                    });
                    slew_samples.push(Sample {
                        fo,
                        t_in,
                        temperature,
                        vdd: corner.vdd,
                        value: outcome.output_slew,
                    });
                }
            }
        }
    }
    let fit_err = |source: FitError| CharError::Fit {
        cell: cell.name().to_string(),
        pin: vector.pin,
        case: vector.case,
        source,
    };
    Ok(ArcModel {
        delay: PolyModel::fit_auto(&delay_samples, cfg.max_orders, cfg.target_rel)
            .map_err(&fit_err)?,
        slew: PolyModel::fit_auto(&slew_samples, cfg.max_orders, cfg.target_rel)
            .map_err(&fit_err)?,
        max_sample_delay: max_delay,
    })
}

fn tabulate_lut(
    cell: &Cell,
    tech: &Technology,
    cfg: &CharConfig,
    reference: &SensVector,
    avg_cin: f64,
) -> Result<LutArc, CharError> {
    let corner = Corner::nominal(tech);
    let mut tables = Vec::new(); // rise_delay, rise_slew, fall_delay, fall_slew
    for edge in Edge::BOTH {
        let mut delays = Vec::new();
        let mut slews = Vec::new();
        for &fo in &cfg.lut_fo {
            for &t_in in &cfg.lut_tin {
                let outcome = simulate_arc(
                    cell,
                    tech,
                    corner,
                    reference,
                    edge,
                    Drive::Ramp { transition: t_in },
                    fo * avg_cin,
                )
                .map_err(|source| CharError::Sim {
                    cell: cell.name().to_string(),
                    pin: reference.pin,
                    case: reference.case,
                    source,
                })?;
                delays.push(outcome.delay);
                slews.push(outcome.output_slew);
            }
        }
        tables.push(Lut2d::new(cfg.lut_fo.clone(), cfg.lut_tin.clone(), delays));
        tables.push(Lut2d::new(cfg.lut_fo.clone(), cfg.lut_tin.clone(), slews));
    }
    let fall_slew = tables.pop().expect("four tables");
    let fall_delay = tables.pop().expect("four tables");
    let rise_slew = tables.pop().expect("four tables");
    let rise_delay = tables.pop().expect("four tables");
    Ok(LutArc {
        pin: reference.pin,
        polarity: reference.polarity,
        rise_delay,
        rise_slew,
        fall_delay,
        fall_slew,
    })
}

/// Characterizes with a JSON disk cache: if a cache file for this
/// (technology, config, library fingerprint) exists it is loaded instead
/// of re-simulating; otherwise the result is computed and stored.
///
/// # Errors
///
/// Returns [`CharError`] on simulation failure. I/O problems fall back to
/// in-memory characterization (a cache is an optimization, not a
/// requirement).
pub fn characterize_cached(
    lib: &Library,
    tech: &Technology,
    cfg: &CharConfig,
    cache_dir: &Path,
) -> Result<TimingLibrary, CharError> {
    characterize_cached_observed(lib, tech, cfg, cache_dir, &sta_obs::Observer::disabled(), 0)
}

/// [`characterize_cached`] with observability: cache hits and misses are
/// counted (`charlib.cache_hits` / `charlib.cache_misses`), and a miss
/// records the full per-cell span set of [`characterize_observed`] under
/// `parent`.
///
/// # Errors
///
/// Same as [`characterize_cached`].
pub fn characterize_cached_observed(
    lib: &Library,
    tech: &Technology,
    cfg: &CharConfig,
    cache_dir: &Path,
    obs: &sta_obs::Observer,
    parent: u64,
) -> Result<TimingLibrary, CharError> {
    let key = cache_key(lib, tech, cfg);
    let path = cache_dir.join(format!("timing_{}_{key:016x}.json", tech.name));
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(tlib) = serde_json::from_str::<TimingLibrary>(&text) {
            if tlib.covers(lib) {
                obs.counter("charlib.cache_hits").inc();
                return Ok(tlib);
            }
        }
    }
    obs.counter("charlib.cache_misses").inc();
    let tlib = characterize_observed(lib, tech, cfg, obs, parent)?;
    if fs::create_dir_all(cache_dir).is_ok() {
        if let Ok(text) = serde_json::to_string(&tlib) {
            let _ = fs::write(&path, text);
        }
    }
    Ok(tlib)
}

/// FNV-1a fingerprint of everything that determines the characterization
/// result.
fn cache_key(lib: &Library, tech: &Technology, cfg: &CharConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(serde_json::to_string(cfg).unwrap_or_default().as_bytes());
    eat(serde_json::to_string(tech).unwrap_or_default().as_bytes());
    for cell in lib.iter() {
        eat(cell.name().as_bytes());
        eat(&[cell.num_pins()]);
        eat(format!("{}", cell.expr().display()).as_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Library;

    #[test]
    fn characterize_inverter_fast() {
        let lib = Library::standard();
        let inv = lib.cell_by_name("INV").unwrap();
        let tech = Technology::n90();
        let cfg = CharConfig::fast();
        let ct = characterize_cell(inv, &tech, &cfg).unwrap();
        assert_eq!(ct.variants.len(), 1);
        assert_eq!(ct.luts.len(), 1);
        let corner = Corner::nominal(&tech);
        // Model predictions close to fresh simulations at an off-grid point.
        let (d, s) = ct
            .variant(0, 0)
            .for_edge(Edge::Rise)
            .eval(2.0, 50.0, corner);
        let sim = simulate_arc(
            inv,
            &tech,
            corner,
            &inv.vectors_of(0)[0],
            Edge::Rise,
            Drive::Ramp { transition: 50.0 },
            2.0 * ct.avg_input_cap,
        )
        .unwrap();
        let rel = (d - sim.delay).abs() / sim.delay;
        assert!(rel < 0.08, "poly {d} vs sim {} (rel {rel})", sim.delay);
        assert!(s > 0.0);
        // LUT is also in the right ballpark at nominal.
        let (dl, _) = ct.lut(0).eval(Edge::Rise, 2.0, 50.0);
        assert!((dl - sim.delay).abs() / sim.delay < 0.15, "lut {dl}");
    }

    #[test]
    fn vector_dependence_survives_fitting() {
        // The fitted models must preserve the paper's ordering: AO22
        // input-A fall, Case 2 slower than Case 1.
        let lib = Library::standard();
        let ao22 = lib.cell_by_name("AO22").unwrap();
        let tech = Technology::n130();
        let cfg = CharConfig::fast();
        let ct = characterize_cell(ao22, &tech, &cfg).unwrap();
        let corner = Corner::nominal(&tech);
        let d1 = ct.variant(0, 0).fall.eval(4.0, 60.0, corner).0;
        let d2 = ct.variant(0, 1).fall.eval(4.0, 60.0, corner).0;
        assert!(d2 > d1 * 1.05, "case2 {d2} vs case1 {d1}");
    }

    #[test]
    fn cache_roundtrip() {
        let mut small = Library::new();
        small.add("INV", 1, sta_cells::Expr::Pin(0).not());
        let tech = Technology::n90();
        let cfg = CharConfig::fast();
        let dir = std::env::temp_dir().join("sta_charlib_test_cache");
        let _ = std::fs::remove_dir_all(&dir);
        let a = characterize_cached(&small, &tech, &cfg, &dir).unwrap();
        // Second call must hit the cache; predictions agree to JSON float
        // precision (exact struct equality is lost in the last ULP of the
        // serialized coefficients).
        let b = characterize_cached(&small, &tech, &cfg, &dir).unwrap();
        let corner = Corner::nominal(&tech);
        let cid = sta_netlist::CellId::from_index(0);
        for edge in Edge::BOTH {
            let (da, sa) = a.delay_slew(cid, 0, 0, edge, 2.5, 60.0, corner);
            let (db, sb) = b.delay_slew(cid, 0, 0, edge, 2.5, 60.0, corner);
            assert!((da - db).abs() < 1e-6 && (sa - sb).abs() < 1e-6);
        }
        assert!(dir.read_dir().unwrap().count() >= 1);
    }
}
