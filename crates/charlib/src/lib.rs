//! Library characterization and delay models (paper §IV.A).
//!
//! This crate turns the switch-level electrical simulator (`sta-esim`) into
//! usable timing models:
//!
//! * [`poly`] — the paper's analytical polynomial model
//!   `f(Fo, t_in, T, VDD)` with recursive order selection;
//! * [`lut`] — the NLDM-style look-up-table model used by the
//!   commercial-tool baseline (vector-blind, nominal corner);
//! * [`regress`] — self-contained least-squares machinery;
//! * [`model`] — the characterized [`TimingLibrary`] consumed by the STA
//!   engines;
//! * [`kernel`] — corner-compiled delay kernels: the polynomials folded
//!   at a fixed `(T, VDD)` into dense, [`ArcId`]-indexed Horner tables;
//! * [`characterize`] — the one-time automatic extraction process
//!   (parallel sweep + fit + disk cache).
//!
//! # Example
//!
//! ```no_run
//! use sta_cells::{Library, Technology};
//! use sta_charlib::{characterize, CharConfig};
//!
//! # fn main() -> Result<(), sta_charlib::CharError> {
//! let lib = Library::standard();
//! let tech = Technology::n130();
//! let timing = characterize(&lib, &tech, &CharConfig::standard())?;
//! assert!(timing.covers(&lib));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod kernel;
pub mod liberty;
pub mod lut;
pub mod model;
pub mod montecarlo;
pub mod poly;
pub mod regress;
pub mod variation;

pub use characterize::{
    characterize, characterize_cached, characterize_cached_observed, characterize_cell,
    characterize_observed, CharConfig, CharError,
};
pub use kernel::{ArcId, CompiledCorner};
pub use lut::Lut2d;
pub use model::{ArcModel, ArcRef, ArcVariant, CellTiming, LutArc, ModelCache, TimingLibrary};
pub use montecarlo::{DelayDistribution, VariationSampler};
pub use poly::{CompiledPoly, FitError, PolyModel, Sample};
