//! Linear least-squares via normal equations (self-contained; no external
//! linear-algebra dependency).

/// Solves the least-squares problem `min ‖X·β − y‖₂` through the normal
/// equations `XᵀX β = Xᵀy` with partial-pivot Gaussian elimination.
///
/// `x` is row-major with `rows` rows and `cols` columns.
///
/// # Panics
///
/// Panics if the dimensions are inconsistent, if `rows < cols`, or if the
/// normal matrix is numerically singular (collinear regressors).
pub fn least_squares(x: &[f64], y: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    assert_eq!(x.len(), rows * cols, "design matrix shape mismatch");
    assert_eq!(y.len(), rows, "rhs length mismatch");
    assert!(
        rows >= cols,
        "underdetermined system ({rows} rows, {cols} cols)"
    );
    // Normal matrix A = XᵀX (cols × cols) and b = Xᵀy.
    let mut a = vec![0.0; cols * cols];
    let mut b = vec![0.0; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            b[i] += row[i] * y[r];
            for j in i..cols {
                a[i * cols + j] += row[i] * row[j];
            }
        }
    }
    for i in 0..cols {
        for j in 0..i {
            a[i * cols + j] = a[j * cols + i];
        }
    }
    solve(&mut a, &mut b, cols);
    b
}

/// Root-mean-square residual of a fitted model.
pub fn rms_residual(x: &[f64], y: &[f64], beta: &[f64], rows: usize, cols: usize) -> f64 {
    let mut acc = 0.0;
    for r in 0..rows {
        let pred: f64 = (0..cols).map(|c| x[r * cols + c] * beta[c]).sum();
        let e = pred - y[r];
        acc += e * e;
    }
    (acc / rows as f64).sqrt()
}

/// In-place Gaussian elimination with partial pivoting; the solution is
/// written back into `b`.
///
/// # Panics
///
/// Panics on a numerically singular matrix.
pub fn solve(a: &mut [f64], b: &mut [f64], n: usize) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    let mut perm: Vec<usize> = (0..n).collect();
    for col in 0..n {
        let (best, best_abs) = (col..n)
            .map(|r| (r, a[perm[r] * n + col].abs()))
            .max_by(|p, q| p.1.total_cmp(&q.1))
            .expect("non-empty range");
        assert!(best_abs > 1e-14, "singular matrix in regression solve");
        perm.swap(col, best);
        let prow = perm[col];
        let pivot = a[prow * n + col];
        for &row in &perm[col + 1..n] {
            let f = a[row * n + col] / pivot;
            if f == 0.0 {
                continue;
            }
            a[row * n + col] = 0.0;
            for k in col + 1..n {
                a[row * n + k] -= f * a[prow * n + k];
            }
            b[row] -= f * b[prow];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let row = perm[col];
        let mut acc = b[row];
        for k in col + 1..n {
            acc -= a[row * n + k] * x[k];
        }
        x[col] = acc / a[row * n + col];
    }
    b.copy_from_slice(&x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_of_line() {
        // y = 3 + 2x sampled exactly.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let mut design = Vec::new();
        let mut y = Vec::new();
        for &x in &xs {
            design.extend([1.0, x]);
            y.push(3.0 + 2.0 * x);
        }
        let beta = least_squares(&design, &y, xs.len(), 2);
        assert!((beta[0] - 3.0).abs() < 1e-10);
        assert!((beta[1] - 2.0).abs() < 1e-10);
        assert!(rms_residual(&design, &y, &beta, xs.len(), 2) < 1e-10);
    }

    #[test]
    fn overdetermined_noisy_fit_minimizes_rms() {
        // y = 1 + x with symmetric noise; LS should land near the truth.
        let pts = [
            (0.0, 1.1),
            (1.0, 1.9),
            (2.0, 3.1),
            (3.0, 3.9),
            (4.0, 5.1),
            (5.0, 5.9),
        ];
        let mut design = Vec::new();
        let mut y = Vec::new();
        for &(x, v) in &pts {
            design.extend([1.0, x]);
            y.push(v);
        }
        let beta = least_squares(&design, &y, pts.len(), 2);
        assert!((beta[0] - 1.0).abs() < 0.15, "{beta:?}");
        assert!((beta[1] - 1.0).abs() < 0.05, "{beta:?}");
    }

    #[test]
    fn quadratic_surface_recovers_coefficients() {
        // f(u, v) = 2 + u − 3v + 0.5uv
        let mut design = Vec::new();
        let mut y = Vec::new();
        let mut rows = 0;
        for i in 0..5 {
            for j in 0..5 {
                let (u, v) = (i as f64 / 4.0, j as f64 / 4.0);
                design.extend([1.0, u, v, u * v]);
                y.push(2.0 + u - 3.0 * v + 0.5 * u * v);
                rows += 1;
            }
        }
        let beta = least_squares(&design, &y, rows, 4);
        for (got, want) in beta.iter().zip([2.0, 1.0, -3.0, 0.5]) {
            assert!((got - want).abs() < 1e-9, "{beta:?}");
        }
    }

    #[test]
    #[should_panic(expected = "singular matrix")]
    fn collinear_regressors_panic() {
        // Two identical columns.
        let design = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let _ = least_squares(&design, &y, 4, 2);
    }
}
