//! Monte-Carlo process variation on the analytical model — the natural
//! extension of [`crate::variation`]'s corner analysis and the second
//! half of the paper's §V future-work item ("considering parameter
//! variations on the delay model").
//!
//! The expensive way to sample process variation is to re-characterize
//! per sample. The analytical model enables a cheaper, standard shortcut:
//! characterize the *sensitivities* once (fast/slow corners bracketing
//! each parameter axis) and interpolate per sample. This module
//! implements the simplest sound variant — per-sample linear
//! interpolation between a slow and a fast characterized library — which
//! captures the first-order (global/correlated) process term that
//! dominates inter-die variation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sta_cells::{Corner, Edge};
use sta_netlist::CellId;

use crate::model::TimingLibrary;

/// A delay sampler interpolating between two characterized corners.
///
/// Sample `k ∈ [−1, 1]` linearly blends the fast (−1), typical (0) and
/// slow (+1) libraries; Gaussian samples are clamped to ±1 (a ±3σ
/// characterization span).
#[derive(Clone, Debug)]
pub struct VariationSampler<'a> {
    fast: &'a TimingLibrary,
    typical: &'a TimingLibrary,
    slow: &'a TimingLibrary,
}

impl<'a> VariationSampler<'a> {
    /// Creates a sampler over three corner libraries (fast −3σ, typical,
    /// slow +3σ — see [`crate::variation::three_corners`]).
    pub fn new(
        fast: &'a TimingLibrary,
        typical: &'a TimingLibrary,
        slow: &'a TimingLibrary,
    ) -> Self {
        VariationSampler {
            fast,
            typical,
            slow,
        }
    }

    /// Arc delay at process sample `k ∈ [−1, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn delay_at(
        &self,
        k: f64,
        cell: CellId,
        pin: u8,
        vector: usize,
        edge: Edge,
        fo: f64,
        t_in: f64,
    ) -> f64 {
        let eval = |lib: &TimingLibrary| {
            lib.delay_slew(
                cell,
                pin,
                vector,
                edge,
                fo,
                t_in,
                Corner::nominal(&lib.tech),
            )
            .0
        };
        let typ = eval(self.typical);
        if k >= 0.0 {
            typ + k.min(1.0) * (eval(self.slow) - typ)
        } else {
            typ + (-k).min(1.0) * (eval(self.fast) - typ)
        }
    }

    /// Draws `n` Gaussian process samples (σ = 1/3 of the span, so the
    /// corner libraries sit at ±3σ) and returns the arc-delay
    /// distribution summary.
    #[allow(clippy::too_many_arguments)]
    pub fn monte_carlo(
        &self,
        n: usize,
        seed: u64,
        cell: CellId,
        pin: u8,
        vector: usize,
        edge: Edge,
        fo: f64,
        t_in: f64,
    ) -> DelayDistribution {
        assert!(n >= 2, "need at least two samples");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut delays: Vec<f64> = (0..n)
            .map(|_| {
                // Box-Muller Gaussian from two uniforms.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let k = (g / 3.0).clamp(-1.0, 1.0);
                self.delay_at(k, cell, pin, vector, edge, fo, t_in)
            })
            .collect();
        delays.sort_by(f64::total_cmp);
        DelayDistribution::from_sorted(delays)
    }
}

/// Summary statistics of a sampled delay distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DelayDistribution {
    /// Sample mean, ps.
    pub mean: f64,
    /// Sample standard deviation, ps.
    pub sigma: f64,
    /// Minimum sample, ps.
    pub min: f64,
    /// Maximum sample, ps.
    pub max: f64,
    /// 99.7th percentile (≈ +3σ quantile), ps.
    pub p997: f64,
}

impl DelayDistribution {
    fn from_sorted(delays: Vec<f64>) -> Self {
        let n = delays.len() as f64;
        let mean = delays.iter().sum::<f64>() / n;
        let var = delays.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n;
        let idx = (((delays.len() - 1) as f64) * 0.997).round() as usize;
        DelayDistribution {
            mean,
            sigma: var.sqrt(),
            min: delays[0],
            max: delays[delays.len() - 1],
            p997: delays[idx],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_cell, CharConfig};
    use crate::variation::{three_corners, ProcessSpread};
    use sta_cells::{Library, Technology};

    fn corner_libs() -> (TimingLibrary, TimingLibrary, TimingLibrary) {
        let mut small = Library::new();
        small.add("INV", 1, sta_cells::Expr::Pin(0).not());
        let cfg = CharConfig::fast();
        let corners = three_corners(&Technology::n90(), &ProcessSpread::nominal());
        let mut libs = corners.iter().map(|tech| TimingLibrary {
            tech: tech.clone(),
            cells: small
                .iter()
                .map(|c| characterize_cell(c, tech, &cfg).unwrap())
                .collect(),
        });
        (
            libs.next().unwrap(),
            libs.next().unwrap(),
            libs.next().unwrap(),
        )
    }

    #[test]
    fn monte_carlo_distribution_is_sane() {
        let (fast, typical, slow) = corner_libs();
        let sampler = VariationSampler::new(&fast, &typical, &slow);
        let cell = CellId::from_index(0);
        let dist = sampler.monte_carlo(400, 7, cell, 0, 0, Edge::Rise, 2.0, 60.0);
        // The distribution brackets the typical value and stays inside the
        // characterized corners.
        let typ = sampler.delay_at(0.0, cell, 0, 0, Edge::Rise, 2.0, 60.0);
        let lo = sampler.delay_at(-1.0, cell, 0, 0, Edge::Rise, 2.0, 60.0);
        let hi = sampler.delay_at(1.0, cell, 0, 0, Edge::Rise, 2.0, 60.0);
        assert!(dist.min >= lo - 1e-9 && dist.max <= hi + 1e-9);
        assert!((dist.mean - typ).abs() < 0.15 * typ, "mean near typical");
        assert!(dist.sigma > 0.0);
        assert!(dist.p997 >= dist.mean && dist.p997 <= dist.max);
        // Determinism.
        let again = sampler.monte_carlo(400, 7, cell, 0, 0, Edge::Rise, 2.0, 60.0);
        assert_eq!(dist, again);
    }

    #[test]
    fn interpolation_is_monotone_in_k() {
        let (fast, typical, slow) = corner_libs();
        let sampler = VariationSampler::new(&fast, &typical, &slow);
        let cell = CellId::from_index(0);
        let d = |k: f64| sampler.delay_at(k, cell, 0, 0, Edge::Fall, 3.0, 80.0);
        assert!(d(-1.0) < d(0.0) && d(0.0) < d(1.0));
        assert!(d(0.5) > d(0.0) && d(0.5) < d(1.0));
    }
}
