//! Process-variation corners — the paper's §V.A future-work item
//! ("considering parameter variations on the delay model").
//!
//! The analytical model's design makes this cheap: because delay is a
//! closed-form function of technology-level quantities, a process corner
//! is just a derated [`Technology`] re-characterized once (and cached).
//! This module defines the classic slow/typical/fast corners and a helper
//! that brackets a path delay across them.

use sta_cells::Technology;

/// Relative process spreads (1σ) for the corner construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProcessSpread {
    /// Relative on-resistance variation per σ.
    pub sigma_r: f64,
    /// Relative capacitance variation per σ.
    pub sigma_c: f64,
    /// Absolute threshold-voltage variation per σ, volts.
    pub sigma_vt: f64,
}

impl ProcessSpread {
    /// A typical spread for the studied nodes: ±8 % R, ±5 % C,
    /// ±20 mV Vt per σ.
    pub fn nominal() -> Self {
        ProcessSpread {
            sigma_r: 0.08,
            sigma_c: 0.05,
            sigma_vt: 0.02,
        }
    }
}

/// Derates a technology by `k_sigma` process sigmas (positive = slow
/// corner, negative = fast corner). The derived technology gets a
/// distinct name (`"90nm+3.0s"`), so cached characterizations of
/// different corners never collide.
pub fn derated(tech: &Technology, spread: &ProcessSpread, k_sigma: f64) -> Technology {
    let mut t = tech.clone();
    let r = 1.0 + spread.sigma_r * k_sigma;
    let c = 1.0 + spread.sigma_c * k_sigma;
    t.r_n *= r;
    t.r_p *= r;
    t.c_gate *= c;
    t.c_drain *= c;
    t.vt_n = (t.vt_n + spread.sigma_vt * k_sigma).max(0.05);
    t.vt_p = (t.vt_p + spread.sigma_vt * k_sigma).max(0.05);
    t.name = format!(
        "{}{}{:.1}s",
        tech.name,
        if k_sigma >= 0.0 { "+" } else { "" },
        k_sigma
    );
    t
}

/// The classic three-corner set: fast (−3σ), typical, slow (+3σ).
pub fn three_corners(tech: &Technology, spread: &ProcessSpread) -> [Technology; 3] {
    [
        derated(tech, spread, -3.0),
        tech.clone(),
        derated(tech, spread, 3.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derating_moves_parameters_the_right_way() {
        let t = Technology::n90();
        let spread = ProcessSpread::nominal();
        let slow = derated(&t, &spread, 3.0);
        let fast = derated(&t, &spread, -3.0);
        assert!(slow.r_n > t.r_n && fast.r_n < t.r_n);
        assert!(slow.c_gate > t.c_gate && fast.c_gate < t.c_gate);
        assert!(slow.vt_n > t.vt_n && fast.vt_n < t.vt_n);
        assert_ne!(slow.name, t.name);
        assert_ne!(slow.name, fast.name);
    }

    #[test]
    fn corner_delays_bracket_nominal() {
        use crate::characterize::{characterize_cell, CharConfig};
        use sta_cells::{Corner, Edge, Library};
        let lib = Library::standard();
        let inv = lib.cell_by_name("INV").unwrap();
        let spread = ProcessSpread::nominal();
        let corners = three_corners(&Technology::n90(), &spread);
        let cfg = CharConfig::fast();
        let delays: Vec<f64> = corners
            .iter()
            .map(|tech| {
                let ct = characterize_cell(inv, tech, &cfg).unwrap();
                ct.variant(0, 0)
                    .for_edge(Edge::Rise)
                    .eval(2.0, 50.0, Corner::nominal(tech))
                    .0
            })
            .collect();
        assert!(
            delays[0] < delays[1] && delays[1] < delays[2],
            "fast < typical < slow: {delays:?}"
        );
    }
}
