//! Corner-compiled delay kernels.
//!
//! An STA run fixes the operating corner, so the 4-variable §IV.A
//! polynomials can be partially evaluated once at the corner's
//! `(T, VDD)` ([`crate::PolyModel::compile`]) and laid out as a flat
//! table of dense 2-D Horner matrices. Every timing arc — one
//! `(cell, pin, sensitization vector)` triple — gets a dense integer
//! [`ArcId`], so the enumeration inner loop resolves a model with two
//! array indexes instead of a `variant_index[pin][vector]` double
//! indirection or a hash-keyed [`crate::ModelCache`] probe.
//!
//! Because the folded kernels share their arithmetic with the
//! interpreted [`crate::PolyModel::eval`], a compiled run produces
//! **bit-identical** delays and slews; the cache stays available as a
//! fallback for uncompiled corners.

use serde::{Deserialize, Serialize};

use sta_cells::{Corner, Edge, Polarity};
use sta_netlist::CellId;

use crate::model::TimingLibrary;
use crate::poly::CompiledPoly;

/// Dense index of one `(cell, pin, vector)` timing arc within a
/// [`CompiledCorner`]'s flat arc table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArcId(u32);

impl ArcId {
    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One arc's folded models: delay and output slew for both input edges.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct CompiledArc {
    polarity: Polarity,
    rise_delay: CompiledPoly,
    rise_slew: CompiledPoly,
    fall_delay: CompiledPoly,
    fall_slew: CompiledPoly,
}

/// A [`TimingLibrary`] compiled for one fixed corner: every arc variant's
/// polynomials folded to 2-D `(Fo, t_in)` Horner matrices in a flat,
/// densely indexed table.
///
/// Layout: arcs are numbered cell-major, then pin, then vector, so
/// [`CompiledCorner::arc_id`] is two array reads plus an add —
/// `pin_base[cell_pin_row[cell] + pin] + vector`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompiledCorner {
    corner: Corner,
    /// Cell index → first row of that cell in `pin_base` (len = cells + 1).
    cell_pin_row: Vec<u32>,
    /// Flattened (cell, pin) row → [`ArcId`] of that pin's vector 0.
    pin_base: Vec<u32>,
    /// All folded arcs, indexed by [`ArcId`].
    arcs: Vec<CompiledArc>,
}

impl CompiledCorner {
    /// Folds every arc variant of `tlib` at `corner`.
    pub fn compile(tlib: &TimingLibrary, corner: Corner) -> Self {
        let mut cell_pin_row = Vec::with_capacity(tlib.cells.len() + 1);
        let mut pin_base = Vec::new();
        let mut arcs = Vec::new();
        for ct in &tlib.cells {
            cell_pin_row.push(pin_base.len() as u32);
            for per_pin in &ct.variant_index {
                pin_base.push(arcs.len() as u32);
                for &vi in per_pin {
                    let v = &ct.variants[vi];
                    arcs.push(CompiledArc {
                        polarity: v.polarity,
                        rise_delay: v.rise.delay.compile(corner.temperature, corner.vdd),
                        rise_slew: v.rise.slew.compile(corner.temperature, corner.vdd),
                        fall_delay: v.fall.delay.compile(corner.temperature, corner.vdd),
                        fall_slew: v.fall.slew.compile(corner.temperature, corner.vdd),
                    });
                }
            }
        }
        cell_pin_row.push(pin_base.len() as u32);
        CompiledCorner {
            corner,
            cell_pin_row,
            pin_base,
            arcs,
        }
    }

    /// The corner the kernels were folded at.
    pub fn corner(&self) -> Corner {
        self.corner
    }

    /// The dense id of the `(cell, pin, vector)` arc.
    ///
    /// # Panics
    ///
    /// Panics if the cell or pin is out of range (a vector index past the
    /// pin's block silently aliases the next arc — callers index with the
    /// same `vector` they'd pass to [`TimingLibrary::delay_slew`]).
    #[inline]
    pub fn arc_id(&self, cell: CellId, pin: u8, vector: usize) -> ArcId {
        let row = self.cell_pin_row[cell.index()] as usize + pin as usize;
        ArcId(self.pin_base[row] + vector as u32)
    }

    /// Folded (delay, slew) of an arc for the given input edge —
    /// bit-identical to the interpreted model at the compiled corner.
    #[inline]
    pub fn eval(&self, arc: ArcId, in_edge: Edge, fo: f64, t_in: f64) -> (f64, f64) {
        let a = &self.arcs[arc.0 as usize];
        match in_edge {
            Edge::Rise => (a.rise_delay.eval(fo, t_in), a.rise_slew.eval(fo, t_in)),
            Edge::Fall => (a.fall_delay.eval(fo, t_in), a.fall_slew.eval(fo, t_in)),
        }
    }

    /// Output polarity of an arc under its vector.
    #[inline]
    pub fn polarity(&self, arc: ArcId) -> Polarity {
        self.arcs[arc.0 as usize].polarity
    }

    /// Total number of compiled arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Total number of folded coefficients across all kernels (a measure
    /// of the compiled footprint).
    pub fn num_coefficients(&self) -> usize {
        self.arcs
            .iter()
            .map(|a| {
                a.rise_delay.num_coefficients()
                    + a.rise_slew.num_coefficients()
                    + a.fall_delay.num_coefficients()
                    + a.fall_slew.num_coefficients()
            })
            .sum()
    }

    /// Observability tap: publishes the compiled table's footprint
    /// (`kernel.arcs`, `kernel.coefficients` gauges) and counts the
    /// compilation. Side-state only — the table itself is untouched.
    pub fn record_metrics(&self, obs: &sta_obs::Observer) {
        if !obs.is_enabled() {
            return;
        }
        obs.counter("kernel.compilations").inc();
        obs.gauge("kernel.arcs").set(self.num_arcs() as f64);
        obs.gauge("kernel.coefficients")
            .set(self.num_coefficients() as f64);
    }
}

impl TimingLibrary {
    /// Compiles every arc of the library for `corner` (see
    /// [`CompiledCorner`]).
    pub fn compile_corner(&self, corner: Corner) -> CompiledCorner {
        CompiledCorner::compile(self, corner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::{Library, Technology};

    fn fast_library() -> (Library, TimingLibrary) {
        let mut lib = Library::new();
        lib.add("INV", 1, sta_cells::Expr::Pin(0).not());
        lib.add("NAND2", 2, sta_cells::Expr::and_pins(&[0, 1]).not());
        let tech = Technology::n90();
        let tlib = crate::characterize(&lib, &tech, &crate::CharConfig::fast()).unwrap();
        (lib, tlib)
    }

    #[test]
    fn arc_ids_are_dense_and_cover_every_variant() {
        let (lib, tlib) = fast_library();
        let corner = Corner::nominal(&tlib.tech);
        let compiled = tlib.compile_corner(corner);
        let expect: usize = tlib.cells.iter().map(|c| c.variants.len()).sum();
        assert_eq!(compiled.num_arcs(), expect);
        let mut seen = vec![false; expect];
        for cell in lib.iter() {
            let ct = tlib.cell(cell.id());
            for pin in 0..cell.num_pins() {
                for v in 0..ct.num_vectors(pin) {
                    let id = compiled.arc_id(cell.id(), pin, v);
                    assert!(!seen[id.index()], "ArcId {id:?} assigned twice");
                    seen[id.index()] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every ArcId reachable");
    }

    #[test]
    fn compiled_eval_is_bit_identical_to_interpreted() {
        let (lib, tlib) = fast_library();
        for corner in [
            Corner::nominal(&tlib.tech),
            Corner {
                temperature: 125.0,
                vdd: 0.9 * tlib.tech.vdd,
            },
        ] {
            let compiled = tlib.compile_corner(corner);
            for cell in lib.iter() {
                let ct = tlib.cell(cell.id());
                for pin in 0..cell.num_pins() {
                    for v in 0..ct.num_vectors(pin) {
                        let id = compiled.arc_id(cell.id(), pin, v);
                        assert_eq!(compiled.polarity(id), ct.variant(pin, v).polarity);
                        for edge in Edge::BOTH {
                            for &fo in &[0.3, 1.0, 2.7, 8.0, 40.0] {
                                for &t_in in &[5.0, 33.3, 120.0, 400.0] {
                                    let (dk, sk) = compiled.eval(id, edge, fo, t_in);
                                    let (di, si) =
                                        tlib.delay_slew(cell.id(), pin, v, edge, fo, t_in, corner);
                                    assert_eq!(dk.to_bits(), di.to_bits());
                                    assert_eq!(sk.to_bits(), si.to_bits());
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
