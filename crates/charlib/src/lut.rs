//! NLDM-style 2-D look-up-table delay model with bilinear interpolation —
//! the model the paper attributes to the commercial tool.
//!
//! The table spans (equivalent fanout × input transition time) at the
//! nominal corner; off-grid queries interpolate bilinearly and clamp at
//! the table edges. Unlike the polynomial model, the LUT here is
//! characterized at a *single reference sensitization vector* per pin,
//! which is exactly the vector-blindness the paper criticizes.

use serde::{Deserialize, Serialize};

/// A 2-D look-up table over (fanout, input transition time).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Lut2d {
    fo_axis: Vec<f64>,
    tin_axis: Vec<f64>,
    /// Row-major: `values[i * tin_axis.len() + j]` for `fo_axis[i]`,
    /// `tin_axis[j]`.
    values: Vec<f64>,
}

impl Lut2d {
    /// Creates a table.
    ///
    /// # Panics
    ///
    /// Panics if an axis has fewer than two strictly increasing points or
    /// the value count does not match the grid.
    pub fn new(fo_axis: Vec<f64>, tin_axis: Vec<f64>, values: Vec<f64>) -> Self {
        assert!(
            fo_axis.len() >= 2 && tin_axis.len() >= 2,
            "axes need ≥ 2 points"
        );
        for axis in [&fo_axis, &tin_axis] {
            for w in axis.windows(2) {
                assert!(w[0] < w[1], "axes must be strictly increasing");
            }
        }
        assert_eq!(values.len(), fo_axis.len() * tin_axis.len());
        Lut2d {
            fo_axis,
            tin_axis,
            values,
        }
    }

    /// Builds a table by evaluating `f` on the grid.
    pub fn tabulate(
        fo_axis: Vec<f64>,
        tin_axis: Vec<f64>,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Self {
        let mut values = Vec::with_capacity(fo_axis.len() * tin_axis.len());
        for &fo in &fo_axis {
            for &tin in &tin_axis {
                values.push(f(fo, tin));
            }
        }
        Lut2d::new(fo_axis, tin_axis, values)
    }

    /// The fanout axis.
    pub fn fo_axis(&self) -> &[f64] {
        &self.fo_axis
    }

    /// The transition-time axis.
    pub fn tin_axis(&self) -> &[f64] {
        &self.tin_axis
    }

    /// Bilinear interpolation with clamping outside the grid.
    pub fn eval(&self, fo: f64, tin: f64) -> f64 {
        let (i, u) = locate(&self.fo_axis, fo);
        let (j, v) = locate(&self.tin_axis, tin);
        let m = self.tin_axis.len();
        let q00 = self.values[i * m + j];
        let q01 = self.values[i * m + j + 1];
        let q10 = self.values[(i + 1) * m + j];
        let q11 = self.values[(i + 1) * m + j + 1];
        q00 * (1.0 - u) * (1.0 - v) + q10 * u * (1.0 - v) + q01 * (1.0 - u) * v + q11 * u * v
    }

    /// The largest tabulated value (used for conservative bounds).
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Finds the cell index and normalized offset of `x` on `axis`, clamping to
/// the boundary cells.
fn locate(axis: &[f64], x: f64) -> (usize, f64) {
    let n = axis.len();
    if x <= axis[0] {
        return (0, 0.0);
    }
    if x >= axis[n - 1] {
        return (n - 2, 1.0);
    }
    let mut i = 0;
    while i + 2 < n && axis[i + 1] <= x {
        i += 1;
    }
    let u = (x - axis[i]) / (axis[i + 1] - axis[i]);
    (i, u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Lut2d {
        // f(fo, tin) = 10·fo + tin — bilinear, so the LUT is exact inside.
        Lut2d::tabulate(
            vec![1.0, 2.0, 4.0, 8.0],
            vec![10.0, 50.0, 200.0],
            |fo, tin| 10.0 * fo + tin,
        )
    }

    #[test]
    fn interpolates_exactly_on_bilinear_function() {
        let t = table();
        for (fo, tin) in [(1.0, 10.0), (3.0, 40.0), (5.5, 125.0), (8.0, 200.0)] {
            assert!(
                (t.eval(fo, tin) - (10.0 * fo + tin)).abs() < 1e-9,
                "({fo},{tin})"
            );
        }
    }

    #[test]
    fn clamps_outside_grid() {
        let t = table();
        assert!((t.eval(0.1, 10.0) - 20.0).abs() < 1e-9); // fo clamped to 1
        assert!((t.eval(100.0, 300.0) - (80.0 + 200.0)).abs() < 1e-9);
    }

    #[test]
    fn interpolation_error_on_curved_function() {
        // A convex function: interpolation overestimates between knots,
        // which is the LUT error source the paper exploits.
        let t = Lut2d::tabulate(vec![1.0, 4.0, 8.0], vec![10.0, 100.0], |fo, _| fo * fo);
        let mid = t.eval(2.5, 50.0);
        assert!(mid > 2.5 * 2.5, "bilinear overestimates convex: {mid}");
    }

    #[test]
    fn max_value_reports_corner() {
        assert!((table().max_value() - 280.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let t = table();
        let js = serde_json::to_string(&t).unwrap();
        let back: Lut2d = serde_json::from_str(&js).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_axis_panics() {
        let _ = Lut2d::new(vec![1.0, 1.0], vec![1.0, 2.0], vec![0.0; 4]);
    }
}
