//! Standard-cell modelling for sensitization-vector-aware timing analysis.
//!
//! This crate implements the cell-level machinery of the DATE 2011 paper
//! *"An efficient and scalable STA tool with direct path estimation and
//! exhaustive sensitization vector exploration for optimal delay
//! computation"*:
//!
//! * [`func`] — cell logic functions (expression ASTs, packed truth tables,
//!   unateness);
//! * [`sensitization`] — exhaustive enumeration of the input vectors that
//!   sensitize each pin (the paper's Tables 1–2);
//! * [`topology`] — automatic derivation of the static-CMOS transistor
//!   realization (series/parallel PDN/PUN with internal nodes — the
//!   structures behind the paper's Figs. 2–3);
//! * [`tech`] — parameter sets for the 130/90/65 nm nodes of the paper's
//!   evaluation;
//! * [`library`] — the standard-cell library container, including the
//!   complex gates AO22 and OA12 the paper studies.
//!
//! # Example
//!
//! ```
//! use sta_cells::Library;
//!
//! let lib = Library::standard();
//! let ao22 = lib.cell_by_name("AO22").expect("AO22 is a standard cell");
//! // Paper Table 1: three sensitization vectors for each AO22 input.
//! assert_eq!(ao22.vectors_of(0).len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod func;
pub mod library;
pub mod sensitization;
pub mod tech;
pub mod topology;
pub mod topology_report;

pub use func::{Expr, TruthTable, Unateness};
pub use library::{Cell, Library};
pub use sensitization::{PinArcs, Polarity, SensVector};
pub use tech::{Corner, Technology};
pub use topology::{CellTopology, SpNet, Stage};

/// Edge direction of a signal transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Edge {
    /// 0 → 1.
    Rise,
    /// 1 → 0.
    Fall,
}

impl Edge {
    /// The opposite edge.
    #[inline]
    pub fn invert(self) -> Edge {
        match self {
            Edge::Rise => Edge::Fall,
            Edge::Fall => Edge::Rise,
        }
    }

    /// Applies a cell arc's polarity: non-inverting keeps the edge,
    /// inverting flips it.
    #[inline]
    pub fn through(self, polarity: Polarity) -> Edge {
        match polarity {
            Polarity::NonInverting => self,
            Polarity::Inverting => self.invert(),
        }
    }

    /// Both edges, rise first.
    pub const BOTH: [Edge; 2] = [Edge::Rise, Edge::Fall];
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Edge::Rise => "rise",
            Edge::Fall => "fall",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_algebra() {
        assert_eq!(Edge::Rise.invert(), Edge::Fall);
        assert_eq!(Edge::Rise.through(Polarity::Inverting), Edge::Fall);
        assert_eq!(Edge::Fall.through(Polarity::NonInverting), Edge::Fall);
    }
}
