//! Logic functions of standard cells: expression ASTs and truth tables.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of cell input pins supported (truth tables are stored in
/// a `u64`, i.e. up to 2⁶ rows).
pub const MAX_PINS: u8 = 6;

/// A Boolean expression over cell input pins.
///
/// Pins are referred to by position (0-based); the library assigns the
/// conventional names `A`, `B`, `C`, … Expressions are the *specification*
/// of a cell's function; the transistor realization is derived separately
/// (see [`crate::topology`]).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// An input pin.
    Pin(u8),
    /// Logical complement.
    Not(Box<Expr>),
    /// Conjunction of two or more terms.
    And(Vec<Expr>),
    /// Disjunction of two or more terms.
    Or(Vec<Expr>),
    /// Exclusive OR of two or more terms (odd parity).
    Xor(Vec<Expr>),
}

impl Expr {
    /// Convenience constructor: `AND` of the given pins.
    pub fn and_pins(pins: &[u8]) -> Expr {
        Expr::And(pins.iter().map(|&p| Expr::Pin(p)).collect())
    }

    /// Convenience constructor: `OR` of the given pins.
    pub fn or_pins(pins: &[u8]) -> Expr {
        Expr::Or(pins.iter().map(|&p| Expr::Pin(p)).collect())
    }

    /// Wraps `self` in a complement.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Evaluates the expression under the given pin assignment.
    ///
    /// # Panics
    ///
    /// Panics if a referenced pin index is out of range.
    pub fn eval(&self, pins: &[bool]) -> bool {
        match self {
            Expr::Pin(p) => pins[*p as usize],
            Expr::Not(e) => !e.eval(pins),
            Expr::And(es) => es.iter().all(|e| e.eval(pins)),
            Expr::Or(es) => es.iter().any(|e| e.eval(pins)),
            Expr::Xor(es) => es.iter().fold(false, |acc, e| acc ^ e.eval(pins)),
        }
    }

    /// The highest pin index referenced, or `None` for a constant-free
    /// expression (which cannot be built with this AST).
    pub fn max_pin(&self) -> Option<u8> {
        match self {
            Expr::Pin(p) => Some(*p),
            Expr::Not(e) => e.max_pin(),
            Expr::And(es) | Expr::Or(es) | Expr::Xor(es) => {
                es.iter().filter_map(Expr::max_pin).max()
            }
        }
    }

    /// Pretty-prints with pin letters (`A`, `B`, …).
    pub fn display(&self) -> ExprDisplay<'_> {
        ExprDisplay(self)
    }
}

/// Display adapter produced by [`Expr::display`].
pub struct ExprDisplay<'a>(&'a Expr);

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &Expr, f: &mut fmt::Formatter<'_>, parent_tight: bool) -> fmt::Result {
            match e {
                Expr::Pin(p) => write!(f, "{}", pin_name(*p)),
                Expr::Not(inner) => {
                    write!(f, "!")?;
                    go(inner, f, true)
                }
                Expr::And(es) => {
                    for (i, t) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, "*")?;
                        }
                        go(t, f, true)?;
                    }
                    Ok(())
                }
                Expr::Or(es) => {
                    if parent_tight {
                        write!(f, "(")?;
                    }
                    for (i, t) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, "+")?;
                        }
                        go(t, f, false)?;
                    }
                    if parent_tight {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Expr::Xor(es) => {
                    if parent_tight {
                        write!(f, "(")?;
                    }
                    for (i, t) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, "^")?;
                        }
                        go(t, f, true)?;
                    }
                    if parent_tight {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self.0, f, false)
    }
}

/// The conventional name of pin `p`: `A`, `B`, `C`, …
pub fn pin_name(p: u8) -> char {
    (b'A' + p) as char
}

/// A truth table over up to [`MAX_PINS`] inputs, packed into a `u64`.
///
/// Bit `i` holds the function value for the input pattern whose pin `k`
/// equals bit `k` of `i` (pin 0 is the least significant bit).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TruthTable {
    num_pins: u8,
    bits: u64,
}

impl TruthTable {
    /// Builds the table of `expr` over `num_pins` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `num_pins` exceeds [`MAX_PINS`] or the expression
    /// references a pin outside the range.
    pub fn from_expr(expr: &Expr, num_pins: u8) -> Self {
        assert!((1..=MAX_PINS).contains(&num_pins), "1..=6 pins supported");
        if let Some(mp) = expr.max_pin() {
            assert!(mp < num_pins, "expression references pin out of range");
        }
        let mut bits = 0u64;
        let rows = 1u32 << num_pins;
        let mut pins = vec![false; num_pins as usize];
        for row in 0..rows {
            for (k, pin) in pins.iter_mut().enumerate() {
                *pin = row & (1 << k) != 0;
            }
            if expr.eval(&pins) {
                bits |= 1 << row;
            }
        }
        TruthTable { num_pins, bits }
    }

    /// Number of input pins.
    #[inline]
    pub fn num_pins(&self) -> u8 {
        self.num_pins
    }

    /// Looks up the output for an input pattern given as packed bits
    /// (pin 0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `row` has bits set above the pin count.
    #[inline]
    pub fn value(&self, row: u32) -> bool {
        assert!(row < (1 << self.num_pins), "row out of range");
        self.bits >> row & 1 == 1
    }

    /// Looks up the output for an input pattern given as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `pins.len()` differs from the pin count.
    pub fn eval(&self, pins: &[bool]) -> bool {
        assert_eq!(pins.len(), self.num_pins as usize);
        let row = pins
            .iter()
            .enumerate()
            .fold(0u32, |acc, (k, &b)| acc | (u32::from(b) << k));
        self.value(row)
    }

    /// Returns `true` if the function actually depends on pin `p`.
    pub fn depends_on(&self, p: u8) -> bool {
        let rows = 1u32 << self.num_pins;
        (0..rows)
            .filter(|row| row & (1 << p) == 0)
            .any(|row| self.value(row) != self.value(row | (1 << p)))
    }

    /// Unateness of the function in pin `p`.
    pub fn unateness(&self, p: u8) -> Unateness {
        let mut pos = false;
        let mut neg = false;
        let rows = 1u32 << self.num_pins;
        for row in (0..rows).filter(|row| row & (1 << p) == 0) {
            let f0 = self.value(row);
            let f1 = self.value(row | (1 << p));
            if !f0 && f1 {
                pos = true;
            }
            if f0 && !f1 {
                neg = true;
            }
        }
        match (pos, neg) {
            (true, false) => Unateness::Positive,
            (false, true) => Unateness::Negative,
            (true, true) => Unateness::Binate,
            (false, false) => Unateness::Independent,
        }
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} pins, {:#x})", self.num_pins, self.bits)
    }
}

/// How a function responds to one of its inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unateness {
    /// Output can only follow the input (rise→rise).
    Positive,
    /// Output can only oppose the input (rise→fall).
    Negative,
    /// Both polarities occur, depending on the side inputs (e.g. XOR).
    Binate,
    /// The function does not depend on this input.
    Independent,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ao22() -> Expr {
        // Z = A*B + C*D
        Expr::Or(vec![Expr::and_pins(&[0, 1]), Expr::and_pins(&[2, 3])])
    }

    #[test]
    fn eval_ao22() {
        let e = ao22();
        assert!(e.eval(&[true, true, false, false]));
        assert!(e.eval(&[false, false, true, true]));
        assert!(!e.eval(&[true, false, false, true]));
    }

    #[test]
    fn truth_table_matches_expr() {
        let e = ao22();
        let tt = TruthTable::from_expr(&e, 4);
        for row in 0..16u32 {
            let pins: Vec<bool> = (0..4).map(|k| row & (1 << k) != 0).collect();
            assert_eq!(tt.value(row), e.eval(&pins), "row {row}");
        }
    }

    #[test]
    fn unateness_classification() {
        let tt = TruthTable::from_expr(&ao22(), 4);
        for p in 0..4 {
            assert_eq!(tt.unateness(p), Unateness::Positive);
        }
        let nand = TruthTable::from_expr(&Expr::and_pins(&[0, 1]).not(), 2);
        assert_eq!(nand.unateness(0), Unateness::Negative);
        let xor = TruthTable::from_expr(&Expr::Xor(vec![Expr::Pin(0), Expr::Pin(1)]), 2);
        assert_eq!(xor.unateness(0), Unateness::Binate);
        // Z = A (ignores B)
        let t = TruthTable::from_expr(&Expr::Pin(0), 2);
        assert_eq!(t.unateness(1), Unateness::Independent);
        assert!(!t.depends_on(1));
        assert!(t.depends_on(0));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(ao22().display().to_string(), "A*B+C*D");
        let oa12 = Expr::And(vec![Expr::or_pins(&[0, 1]), Expr::Pin(2)]);
        assert_eq!(oa12.display().to_string(), "(A+B)*C");
        let aoi21 = Expr::Or(vec![Expr::and_pins(&[0, 1]), Expr::Pin(2)]).not();
        assert_eq!(aoi21.display().to_string(), "!(A*B+C)");
    }

    #[test]
    fn xor_parity() {
        let x3 = Expr::Xor(vec![Expr::Pin(0), Expr::Pin(1), Expr::Pin(2)]);
        let tt = TruthTable::from_expr(&x3, 3);
        for row in 0..8u32 {
            assert_eq!(tt.value(row), (row.count_ones() % 2) == 1);
        }
    }

    #[test]
    #[should_panic(expected = "pin out of range")]
    fn out_of_range_pin_panics() {
        let _ = TruthTable::from_expr(&Expr::Pin(3), 2);
    }
}
