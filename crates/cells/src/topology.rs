//! Transistor-level realization of cells (paper §III).
//!
//! Every cell is realized as one or more static-CMOS *stages*. A stage
//! computes `NOT g` for a monotone function `g` of its input signals: the
//! pull-down network (PDN) is a series/parallel nMOS network implementing
//! `g` (AND ⇒ series, OR ⇒ parallel) and the pull-up network (PUN) is its
//! dual in pMOS. Non-inverting cells such as AO22 get an output inverter,
//! exactly as the paper notes in §III; binate cells (XOR, MUX) additionally
//! get input inverters.
//!
//! The internal nodes *between* series transistors carry parasitic
//! capacitance. They are what makes the gate delay depend on the
//! sensitization vector: parallel ON devices lower the effective resistance
//! (paper Fig. 2a) and ON devices of the opposite network expose internal
//! charge that must also be moved (paper Fig. 2b/3b).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::func::{pin_name, Expr};

/// A signal inside a cell: either an input pin or the output of an earlier
/// stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// Cell input pin.
    Pin(u8),
    /// Output of stage `i` (stages are topologically ordered).
    Stage(usize),
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signal::Pin(p) => write!(f, "{}", pin_name(*p)),
            Signal::Stage(i) => write!(f, "s{i}"),
        }
    }
}

/// A series/parallel transistor network over signals.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpNet {
    /// One transistor gated by the signal.
    Device(Signal),
    /// Networks connected in series (all must conduct).
    Series(Vec<SpNet>),
    /// Networks connected in parallel (any may conduct).
    Parallel(Vec<SpNet>),
}

impl SpNet {
    /// The maximum number of devices in series between the two terminals.
    pub fn series_depth(&self) -> usize {
        match self {
            SpNet::Device(_) => 1,
            SpNet::Series(cs) => cs.iter().map(SpNet::series_depth).sum(),
            SpNet::Parallel(cs) => cs.iter().map(SpNet::series_depth).max().unwrap_or(0),
        }
    }

    /// The series depth of the *dual* network (series ↔ parallel swapped).
    pub fn dual_series_depth(&self) -> usize {
        match self {
            SpNet::Device(_) => 1,
            SpNet::Series(cs) => cs.iter().map(SpNet::dual_series_depth).max().unwrap_or(0),
            SpNet::Parallel(cs) => cs.iter().map(SpNet::dual_series_depth).sum(),
        }
    }

    /// Total number of devices.
    pub fn device_count(&self) -> usize {
        match self {
            SpNet::Device(_) => 1,
            SpNet::Series(cs) | SpNet::Parallel(cs) => cs.iter().map(SpNet::device_count).sum(),
        }
    }

    /// The dual network (realizes the complementary condition; used for the
    /// PUN).
    pub fn dual(&self) -> SpNet {
        match self {
            SpNet::Device(s) => SpNet::Device(*s),
            SpNet::Series(cs) => SpNet::Parallel(cs.iter().map(SpNet::dual).collect()),
            SpNet::Parallel(cs) => SpNet::Series(cs.iter().map(SpNet::dual).collect()),
        }
    }

    /// Whether the network conducts under the given signal values.
    pub fn conducts(&self, on: &dyn Fn(Signal) -> bool) -> bool {
        match self {
            SpNet::Device(s) => on(*s),
            SpNet::Series(cs) => cs.iter().all(|c| c.conducts(on)),
            SpNet::Parallel(cs) => cs.iter().any(|c| c.conducts(on)),
        }
    }

    /// Iterates over the gating signals of all devices, in tree order.
    pub fn signals(&self) -> Vec<Signal> {
        let mut out = Vec::new();
        fn go(n: &SpNet, out: &mut Vec<Signal>) {
            match n {
                SpNet::Device(s) => out.push(*s),
                SpNet::Series(cs) | SpNet::Parallel(cs) => {
                    for c in cs {
                        go(c, out);
                    }
                }
            }
        }
        go(self, &mut out);
        out
    }
}

/// One static-CMOS stage: output = NOT(pulldown condition).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// PDN series/parallel structure; PUN is its dual.
    pub pulldown: SpNet,
    /// Uniform width multiplier of PDN devices (series-stack sizing).
    pub nmos_width: f64,
    /// Uniform width multiplier of PUN devices.
    pub pmos_width: f64,
}

impl Stage {
    /// Builds a stage for the monotone condition `pulldown`, sizing devices
    /// so the worst-case series resistance matches a reference inverter
    /// (nMOS width = PDN depth, pMOS width = β · PUN depth with β = 2).
    pub fn new(pulldown: SpNet) -> Self {
        let nmos_width = pulldown.series_depth() as f64;
        let pmos_width = 2.0 * pulldown.dual_series_depth() as f64;
        Stage {
            pulldown,
            nmos_width,
            pmos_width,
        }
    }

    /// An inverter stage driven by `signal`.
    pub fn inverter(signal: Signal) -> Self {
        Stage::new(SpNet::Device(signal))
    }

    /// The pull-up network (dual of the PDN).
    pub fn pullup(&self) -> SpNet {
        self.pulldown.dual()
    }

    /// Evaluates the stage output for given signal values.
    pub fn eval(&self, value: &dyn Fn(Signal) -> bool) -> bool {
        !self.pulldown.conducts(value)
    }
}

/// A complete multi-stage CMOS realization of a cell. The last stage drives
/// the cell output.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellTopology {
    /// Topologically ordered stages; `Signal::Stage(i)` refers into this
    /// list, and the final stage is the cell output.
    pub stages: Vec<Stage>,
}

impl CellTopology {
    /// Derives a CMOS realization from the cell's logic expression.
    ///
    /// Strategy: compare realizing `Z = NOT(h)` with `h = nnf(!expr)`
    /// (single main stage) against `Z = INV(NOT(g))` with `g = nnf(expr)`
    /// (main stage + output inverter); complemented literals in either form
    /// cost one input-inverter stage each. The cheaper realization (fewer
    /// stages) wins — this reproduces the textbook structures: NAND/NOR/AOI
    /// are single-stage, AND/OR/AO22/OA12 are stage+inverter, XOR uses two
    /// input inverters.
    ///
    /// # Panics
    ///
    /// Panics if the expression is degenerate (no pins).
    pub fn derive(expr: &Expr) -> Self {
        let direct = Nnf::of(&Expr::Not(Box::new(expr.clone())));
        let inverted = Nnf::of(expr);
        let cost_direct = direct.complemented_pins().len() + 1;
        let cost_inverted = inverted.complemented_pins().len() + 2;
        if cost_direct <= cost_inverted {
            Self::build(&direct, false)
        } else {
            Self::build(&inverted, true)
        }
    }

    fn build(nnf: &Nnf, add_output_inverter: bool) -> Self {
        let mut stages = Vec::new();
        let comp = nnf.complemented_pins();
        // One inverter stage per complemented pin, then remember its index.
        let mut inv_stage = std::collections::HashMap::new();
        for &p in &comp {
            inv_stage.insert(p, stages.len());
            stages.push(Stage::inverter(Signal::Pin(p)));
        }
        let net = nnf.to_spnet(&|p, complemented| {
            if complemented {
                Signal::Stage(inv_stage[&p])
            } else {
                Signal::Pin(p)
            }
        });
        stages.push(Stage::new(net));
        if add_output_inverter {
            let main = stages.len() - 1;
            stages.push(Stage::inverter(Signal::Stage(main)));
        }
        CellTopology { stages }
    }

    /// Total transistor count (PDN + PUN over all stages).
    pub fn transistor_count(&self) -> usize {
        self.stages
            .iter()
            .map(|s| 2 * s.pulldown.device_count())
            .sum()
    }

    /// Evaluates the cell output for a pin assignment (used to cross-check
    /// the realization against the specification truth table).
    pub fn eval(&self, pins: &[bool]) -> bool {
        let mut values = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let v = stage.eval(&|s| match s {
                Signal::Pin(p) => pins[p as usize],
                Signal::Stage(i) => values[i],
            });
            values.push(v);
        }
        *values.last().expect("at least one stage")
    }
}

/// Negation-normal-form view of an expression: AND/OR tree over possibly
/// complemented pins.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Nnf {
    Lit { pin: u8, complemented: bool },
    And(Vec<Nnf>),
    Or(Vec<Nnf>),
}

impl Nnf {
    fn of(expr: &Expr) -> Nnf {
        Self::convert(expr, false)
    }

    fn convert(expr: &Expr, negate: bool) -> Nnf {
        match expr {
            Expr::Pin(p) => Nnf::Lit {
                pin: *p,
                complemented: negate,
            },
            Expr::Not(e) => Self::convert(e, !negate),
            Expr::And(es) => {
                let kids: Vec<Nnf> = es.iter().map(|e| Self::convert(e, negate)).collect();
                if negate {
                    Nnf::Or(kids)
                } else {
                    Nnf::And(kids)
                }
            }
            Expr::Or(es) => {
                let kids: Vec<Nnf> = es.iter().map(|e| Self::convert(e, negate)).collect();
                if negate {
                    Nnf::And(kids)
                } else {
                    Nnf::Or(kids)
                }
            }
            Expr::Xor(es) => {
                // Expand left-to-right: x ^ rest, negation folds into the
                // overall parity.
                let expanded = Self::expand_xor(es);
                Self::convert(&expanded, negate)
            }
        }
    }

    /// Rewrites `Xor([a, b, ...])` into AND/OR/NOT form.
    fn expand_xor(es: &[Expr]) -> Expr {
        assert!(!es.is_empty(), "empty XOR");
        let mut acc = es[0].clone();
        for e in &es[1..] {
            // acc ^ e = acc*!e + !acc*e
            acc = Expr::Or(vec![
                Expr::And(vec![acc.clone(), e.clone().not()]),
                Expr::And(vec![acc.not(), e.clone()]),
            ]);
        }
        acc
    }

    fn complemented_pins(&self) -> Vec<u8> {
        let mut pins = Vec::new();
        fn go(n: &Nnf, pins: &mut Vec<u8>) {
            match n {
                Nnf::Lit { pin, complemented } => {
                    if *complemented && !pins.contains(pin) {
                        pins.push(*pin);
                    }
                }
                Nnf::And(cs) | Nnf::Or(cs) => {
                    for c in cs {
                        go(c, pins);
                    }
                }
            }
        }
        go(self, &mut pins);
        pins.sort_unstable();
        pins
    }

    fn to_spnet(&self, lit: &dyn Fn(u8, bool) -> Signal) -> SpNet {
        match self {
            Nnf::Lit { pin, complemented } => SpNet::Device(lit(*pin, *complemented)),
            Nnf::And(cs) => SpNet::Series(cs.iter().map(|c| c.to_spnet(lit)).collect()),
            Nnf::Or(cs) => SpNet::Parallel(cs.iter().map(|c| c.to_spnet(lit)).collect()),
        }
    }
}

/// The state of one transistor under a sensitization vector (paper Figs.
/// 2–3 use crosses for OFF, arrows for ON, dashed for switching).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceState {
    /// Conducting throughout.
    On,
    /// Non-conducting throughout.
    Off,
    /// Switches from OFF to ON as the input transitions.
    TurnsOn,
    /// Switches from ON to OFF as the input transitions.
    TurnsOff,
}

/// A labelled transistor state, e.g. `("pA", TurnsOn)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Stage index within the topology.
    pub stage: usize,
    /// Conventional label: `n`/`p` + gating signal name.
    pub label: String,
    /// The device state under the analyzed transition.
    pub state: DeviceState,
}

/// Computes every transistor's state for a transition on `pin` with the
/// given side values (reproduces the annotations of paper Figs. 2–3).
///
/// `initial_pin_value` is the pin's value before the transition; side pins
/// hold `side[p]` (pins set to `None` are treated as logic 0 — the caller
/// should pass a fully specified vector).
pub fn device_states(
    topo: &CellTopology,
    pin: u8,
    initial_pin_value: bool,
    side: &[Option<bool>],
) -> Vec<DeviceReport> {
    let value_at = |time_final: bool, s: Signal, values: &[bool]| -> bool {
        match s {
            Signal::Pin(p) => {
                if p == pin {
                    if time_final {
                        !initial_pin_value
                    } else {
                        initial_pin_value
                    }
                } else {
                    side[p as usize].unwrap_or(false)
                }
            }
            Signal::Stage(i) => values[i],
        }
    };
    // Evaluate stage outputs at both time points.
    let mut v_init = Vec::new();
    let mut v_final = Vec::new();
    for stage in &topo.stages {
        let a = stage.eval(&|s| value_at(false, s, &v_init));
        let b = stage.eval(&|s| value_at(true, s, &v_final));
        v_init.push(a);
        v_final.push(b);
    }
    let mut out = Vec::new();
    for (si, stage) in topo.stages.iter().enumerate() {
        for (is_pmos, net) in [(false, stage.pulldown.clone()), (true, stage.pullup())] {
            for s in net.signals() {
                let gi = value_at(false, s, &v_init);
                let gf = value_at(true, s, &v_final);
                // nMOS conducts when gate is high, pMOS when low.
                let on_i = if is_pmos { !gi } else { gi };
                let on_f = if is_pmos { !gf } else { gf };
                let state = match (on_i, on_f) {
                    (true, true) => DeviceState::On,
                    (false, false) => DeviceState::Off,
                    (false, true) => DeviceState::TurnsOn,
                    (true, false) => DeviceState::TurnsOff,
                };
                out.push(DeviceReport {
                    stage: si,
                    label: format!("{}{}", if is_pmos { 'p' } else { 'n' }, s),
                    state,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::TruthTable;

    fn ao22() -> Expr {
        Expr::Or(vec![Expr::and_pins(&[0, 1]), Expr::and_pins(&[2, 3])])
    }

    fn oa12() -> Expr {
        Expr::And(vec![Expr::or_pins(&[0, 1]), Expr::Pin(2)])
    }

    #[test]
    fn nand_is_single_stage() {
        let topo = CellTopology::derive(&Expr::and_pins(&[0, 1]).not());
        assert_eq!(topo.stages.len(), 1);
        assert_eq!(topo.transistor_count(), 4);
        assert_eq!(topo.stages[0].nmos_width, 2.0); // series stack of 2
        assert_eq!(topo.stages[0].pmos_width, 2.0); // parallel pair, β·1
    }

    #[test]
    fn ao22_is_aoi_plus_inverter() {
        let topo = CellTopology::derive(&ao22());
        assert_eq!(topo.stages.len(), 2, "complex stage + output inverter");
        assert_eq!(topo.transistor_count(), 8 + 2);
        // PDN of the main stage: (A·B) ∥ (C·D) — depth 2.
        assert_eq!(topo.stages[0].pulldown.series_depth(), 2);
        // PUN: (A∥C)·(A∥D)… dual: series of parallels — dual depth 2.
        assert_eq!(topo.stages[0].pulldown.dual_series_depth(), 2);
    }

    #[test]
    fn xor_uses_input_inverters_single_main_stage() {
        let topo = CellTopology::derive(&Expr::Xor(vec![Expr::Pin(0), Expr::Pin(1)]));
        // 2 input inverters + 1 main stage (Z = NOT(a·b + !a·!b)).
        assert_eq!(topo.stages.len(), 3);
    }

    #[test]
    fn realizations_match_truth_tables() {
        let cases = vec![
            (Expr::and_pins(&[0, 1]).not(), 2),
            (Expr::or_pins(&[0, 1, 2]).not(), 3),
            (Expr::and_pins(&[0, 1, 2, 3]), 4),
            (ao22(), 4),
            (oa12(), 3),
            (Expr::Xor(vec![Expr::Pin(0), Expr::Pin(1)]), 2),
            (Expr::Xor(vec![Expr::Pin(0), Expr::Pin(1)]).not(), 2),
            // MUX2: A·!S + B·S
            (
                Expr::Or(vec![
                    Expr::And(vec![Expr::Pin(0), Expr::Pin(2).not()]),
                    Expr::And(vec![Expr::Pin(1), Expr::Pin(2)]),
                ]),
                3,
            ),
        ];
        for (expr, pins) in cases {
            let tt = TruthTable::from_expr(&expr, pins);
            let topo = CellTopology::derive(&expr);
            for row in 0..(1u32 << pins) {
                let bits: Vec<bool> = (0..pins).map(|k| row & (1 << k) != 0).collect();
                assert_eq!(
                    topo.eval(&bits),
                    tt.value(row),
                    "{} row {row}",
                    expr.display()
                );
            }
        }
    }

    /// Paper Fig. 2: AO22, falling transition through input A. Case 1
    /// (C=0, D=0) leaves both pC and pD ON; Case 2 (C=1) turns nC ON,
    /// creating the internal charging path the paper blames for the extra
    /// delay.
    #[test]
    fn ao22_fig2_transistor_states() {
        let topo = CellTopology::derive(&ao22());
        let find = |reports: &[DeviceReport], label: &str| -> DeviceState {
            reports
                .iter()
                .find(|r| r.stage == 0 && r.label == label)
                .map(|r| r.state)
                .unwrap_or_else(|| panic!("missing device {label}"))
        };
        // Case 1: A falls (initial 1), B=1, C=0, D=0.
        let r1 = device_states(
            &topo,
            0,
            true,
            &[None, Some(true), Some(false), Some(false)],
        );
        assert_eq!(find(&r1, "pA"), DeviceState::TurnsOn);
        assert_eq!(find(&r1, "pC"), DeviceState::On);
        assert_eq!(find(&r1, "pD"), DeviceState::On);
        assert_eq!(find(&r1, "nC"), DeviceState::Off);
        // Case 2: C=1, D=0 — only pD on top, nC creates the side path.
        let r2 = device_states(&topo, 0, true, &[None, Some(true), Some(true), Some(false)]);
        assert_eq!(find(&r2, "pC"), DeviceState::Off);
        assert_eq!(find(&r2, "pD"), DeviceState::On);
        assert_eq!(find(&r2, "nC"), DeviceState::On);
        // Case 3: C=0, D=1 — only pC on top, nC stays off.
        let r3 = device_states(&topo, 0, true, &[None, Some(true), Some(false), Some(true)]);
        assert_eq!(find(&r3, "pC"), DeviceState::On);
        assert_eq!(find(&r3, "pD"), DeviceState::Off);
        assert_eq!(find(&r3, "nC"), DeviceState::Off);
        assert_eq!(find(&r3, "nD"), DeviceState::On);
    }

    #[test]
    fn dual_roundtrip() {
        let net = CellTopology::derive(&oa12()).stages[0].pulldown.clone();
        assert_eq!(net.dual().dual(), net);
        assert_eq!(net.device_count(), net.dual().device_count());
    }
}
