//! Exhaustive sensitization-vector enumeration (paper §II, Tables 1–2).
//!
//! For a cell function `f` over pins `x₀..xₙ₋₁`, pin `xᵢ` is *sensitized* by
//! an assignment `v` of the other pins iff the Boolean difference
//! `f(v, xᵢ=0) ≠ f(v, xᵢ=1)` holds — a transition on `xᵢ` then propagates to
//! the output. Complex gates generally have several such vectors per pin,
//! and the paper shows the gate delay depends on which one is applied.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::func::{pin_name, TruthTable};

/// Output polarity of a sensitized transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// Output follows the input (input rise → output rise).
    NonInverting,
    /// Output opposes the input (input rise → output fall).
    Inverting,
}

/// One sensitization vector for one pin: the side-input values that let a
/// transition pass from the pin to the output.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SensVector {
    /// The transitioning pin.
    pub pin: u8,
    /// Per-pin values; `None` at `pin` (the transitioning position),
    /// `Some(value)` at every side pin.
    pub side: Vec<Option<bool>>,
    /// Whether the output follows or opposes the input transition under
    /// this vector.
    pub polarity: Polarity,
    /// Case number, 1-based, in canonical enumeration order — matches the
    /// paper's "Case 1/2/3" labels for AO22 and OA12.
    pub case: usize,
}

impl SensVector {
    /// The side value required at `pin`, if constrained.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range.
    pub fn side_value(&self, pin: u8) -> Option<bool> {
        self.side[pin as usize]
    }

    /// Number of side pins required to be logic 1 (used by "easiest
    /// justification first" heuristics).
    pub fn ones(&self) -> usize {
        self.side.iter().filter(|v| **v == Some(true)).count()
    }

    /// Renders the vector as a propagation-table row, e.g. `T 1 0 0 -> T`
    /// (paper Tables 1–2 use the same shape).
    pub fn table_row(&self) -> String {
        let mut cells: Vec<String> = self
            .side
            .iter()
            .map(|v| match v {
                None => "T".to_string(),
                Some(true) => "1".to_string(),
                Some(false) => "0".to_string(),
            })
            .collect();
        cells.push("T".to_string());
        cells.join(" ")
    }
}

impl fmt::Display for SensVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "case {} [", self.case)?;
        for (i, v) in self.side.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match v {
                None => write!(f, "{}=T", pin_name(i as u8))?,
                Some(b) => write!(f, "{}={}", pin_name(i as u8), u8::from(*b))?,
            }
        }
        write!(f, "]")
    }
}

/// All sensitization vectors of one pin, in canonical order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinArcs {
    /// The pin these vectors sensitize.
    pub pin: u8,
    /// The vectors, ordered by ascending packed side-assignment (pin 0 is
    /// the least significant bit, skipping the transitioning pin). This
    /// order reproduces the paper's Case 1/2/3 labels.
    pub vectors: Vec<SensVector>,
}

/// Enumerates all sensitization vectors of every pin of `tt`.
///
/// Pins the function does not depend on get an empty vector list.
///
/// # Example
///
/// ```
/// use sta_cells::func::{Expr, TruthTable};
/// use sta_cells::sensitization::enumerate;
///
/// // AO22: Z = A*B + C*D — three vectors per pin (paper Table 1).
/// let tt = TruthTable::from_expr(
///     &Expr::Or(vec![Expr::and_pins(&[0, 1]), Expr::and_pins(&[2, 3])]),
///     4,
/// );
/// let arcs = enumerate(&tt);
/// assert!(arcs.iter().all(|a| a.vectors.len() == 3));
/// ```
pub fn enumerate(tt: &TruthTable) -> Vec<PinArcs> {
    let n = tt.num_pins();
    (0..n)
        .map(|pin| {
            let mut vectors = Vec::new();
            let side_pins: Vec<u8> = (0..n).filter(|&p| p != pin).collect();
            for packed in 0..(1u32 << side_pins.len()) {
                let mut row0 = 0u32;
                for (k, &p) in side_pins.iter().enumerate() {
                    if packed & (1 << k) != 0 {
                        row0 |= 1 << p;
                    }
                }
                let f0 = tt.value(row0);
                let f1 = tt.value(row0 | (1 << pin));
                if f0 != f1 {
                    let mut side = vec![None; n as usize];
                    for (k, &p) in side_pins.iter().enumerate() {
                        side[p as usize] = Some(packed & (1 << k) != 0);
                    }
                    let polarity = if f1 {
                        Polarity::NonInverting
                    } else {
                        Polarity::Inverting
                    };
                    vectors.push(SensVector {
                        pin,
                        side,
                        polarity,
                        case: vectors.len() + 1,
                    });
                }
            }
            PinArcs { pin, vectors }
        })
        .collect()
}

/// Formats the full propagation table of a cell (like the paper's Tables
/// 1–2): one row per (pin, vector).
pub fn propagation_table(name: &str, arcs: &[PinArcs]) -> String {
    let n = arcs.len() as u8;
    let mut out = String::new();
    let header: Vec<String> = (0..n).map(|p| pin_name(p).to_string()).collect();
    out.push_str(&format!(
        "Propagation table {}\n        {} Z\n",
        name,
        header.join(" ")
    ));
    for pa in arcs {
        for v in &pa.vectors {
            out.push_str(&format!("Case {}  {}\n", v.case, v.table_row()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Expr;

    fn arcs_of(expr: Expr, pins: u8) -> Vec<PinArcs> {
        enumerate(&TruthTable::from_expr(&expr, pins))
    }

    fn side_tuple(v: &SensVector) -> Vec<i8> {
        v.side
            .iter()
            .map(|x| match x {
                None => -1,
                Some(false) => 0,
                Some(true) => 1,
            })
            .collect()
    }

    /// Paper Table 1: AO22 has exactly three vectors per input, and for
    /// input A they are (B,C,D) = (1,0,0), (1,1,0), (1,0,1) in case order.
    #[test]
    fn ao22_matches_paper_table1() {
        let arcs = arcs_of(
            Expr::Or(vec![Expr::and_pins(&[0, 1]), Expr::and_pins(&[2, 3])]),
            4,
        );
        for pa in &arcs {
            assert_eq!(pa.vectors.len(), 3, "pin {}", pa.pin);
            for v in &pa.vectors {
                assert_eq!(v.polarity, Polarity::NonInverting);
            }
        }
        let a = &arcs[0].vectors;
        assert_eq!(side_tuple(&a[0]), vec![-1, 1, 0, 0]); // Case 1: B=1 C=0 D=0
        assert_eq!(side_tuple(&a[1]), vec![-1, 1, 1, 0]); // Case 2: B=1 C=1 D=0
        assert_eq!(side_tuple(&a[2]), vec![-1, 1, 0, 1]); // Case 3: B=1 C=0 D=1
                                                          // Input C by symmetry: (A,B,D) rows from the paper: (0,0,·,1),(1,0,·,1),(0,1,·,1)
        let c = &arcs[2].vectors;
        assert_eq!(side_tuple(&c[0]), vec![0, 0, -1, 1]);
        assert_eq!(side_tuple(&c[1]), vec![1, 0, -1, 1]);
        assert_eq!(side_tuple(&c[2]), vec![0, 1, -1, 1]);
    }

    /// Paper Table 2: OA12 (Z = (A+B)*C) has one vector for A, one for B,
    /// three for C.
    #[test]
    fn oa12_matches_paper_table2() {
        let arcs = arcs_of(Expr::And(vec![Expr::or_pins(&[0, 1]), Expr::Pin(2)]), 3);
        assert_eq!(arcs[0].vectors.len(), 1);
        assert_eq!(arcs[1].vectors.len(), 1);
        assert_eq!(arcs[2].vectors.len(), 3);
        assert_eq!(side_tuple(&arcs[0].vectors[0]), vec![-1, 0, 1]); // A: B=0, C=1
        assert_eq!(side_tuple(&arcs[1].vectors[0]), vec![0, -1, 1]); // B: A=0, C=1
        let c = &arcs[2].vectors;
        assert_eq!(side_tuple(&c[0]), vec![1, 0, -1]); // Case 1: A=1 B=0
        assert_eq!(side_tuple(&c[1]), vec![0, 1, -1]); // Case 2: A=0 B=1
        assert_eq!(side_tuple(&c[2]), vec![1, 1, -1]); // Case 3: A=1 B=1
    }

    /// Simple gates have a single sensitization vector per input (paper §I).
    #[test]
    fn nand_has_single_vector_per_input() {
        let arcs = arcs_of(Expr::and_pins(&[0, 1, 2]).not(), 3);
        for pa in &arcs {
            assert_eq!(pa.vectors.len(), 1);
            assert_eq!(pa.vectors[0].polarity, Polarity::Inverting);
            // All side inputs at the non-controlling value 1.
            assert!(pa.vectors[0]
                .side
                .iter()
                .all(|v| v.is_none() || *v == Some(true)));
        }
    }

    /// XOR is binate: both vectors exist per pin with opposite polarities.
    #[test]
    fn xor_vectors_have_both_polarities() {
        let arcs = arcs_of(Expr::Xor(vec![Expr::Pin(0), Expr::Pin(1)]), 2);
        for pa in &arcs {
            assert_eq!(pa.vectors.len(), 2);
            assert_eq!(pa.vectors[0].polarity, Polarity::NonInverting); // side 0
            assert_eq!(pa.vectors[1].polarity, Polarity::Inverting); // side 1
        }
    }

    #[test]
    fn table_rows_render() {
        let arcs = arcs_of(Expr::And(vec![Expr::or_pins(&[0, 1]), Expr::Pin(2)]), 3);
        let table = propagation_table("OA12", &arcs);
        assert!(table.contains("Case 1  T 0 1 T"));
        assert!(table.contains("Case 3  1 1 T T"));
    }

    #[test]
    fn ones_counts_required_ones() {
        let arcs = arcs_of(
            Expr::Or(vec![Expr::and_pins(&[0, 1]), Expr::and_pins(&[2, 3])]),
            4,
        );
        assert_eq!(arcs[0].vectors[0].ones(), 1); // B=1 C=0 D=0
        assert_eq!(arcs[0].vectors[1].ones(), 2); // B=1 C=1 D=0
    }
}
