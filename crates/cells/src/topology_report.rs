//! Textual transistor-schematic rendering (an ASCII stand-in for the
//! paper's Figs. 2–3 schematics): the series/parallel structure of each
//! stage with per-device sizing.

use std::fmt::Write as _;

use crate::topology::{CellTopology, SpNet};
use crate::Cell;

/// Renders a cell's transistor-level structure:
///
/// ```text
/// AO22  (10 transistors)
/// stage 0 (AOI):  PDN w=2  (nA·nB) ∥ (nC·nD)
///                 PUN w=4  (pA ∥ pC)·(pA ∥ pD)…
/// stage 1 (INV):  …
/// ```
pub fn topology_report(cell: &Cell) -> String {
    let topo: &CellTopology = cell.topology();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}  Z = {}  ({} transistors, {} stage{})",
        cell.name(),
        cell.expr().display(),
        topo.transistor_count(),
        topo.stages.len(),
        if topo.stages.len() == 1 { "" } else { "s" },
    );
    for (i, stage) in topo.stages.iter().enumerate() {
        let kind = if stage.pulldown.device_count() == 1 {
            "INV"
        } else {
            "complex"
        };
        let _ = writeln!(
            out,
            "  stage {i} ({kind}): PDN w={:.0}  {}",
            stage.nmos_width,
            render_net(&stage.pulldown, 'n'),
        );
        let _ = writeln!(
            out,
            "              PUN w={:.0}  {}",
            stage.pmos_width,
            render_net(&stage.pullup(), 'p'),
        );
    }
    out
}

fn render_net(net: &SpNet, prefix: char) -> String {
    match net {
        SpNet::Device(s) => format!("{prefix}{s}"),
        SpNet::Series(cs) => {
            let parts: Vec<String> = cs.iter().map(|c| render_net(c, prefix)).collect();
            format!("({})", parts.join("·"))
        }
        SpNet::Parallel(cs) => {
            let parts: Vec<String> = cs.iter().map(|c| render_net(c, prefix)).collect();
            format!("({})", parts.join(" ∥ "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Library;

    #[test]
    fn ao22_report_shows_both_networks() {
        let lib = Library::standard();
        let r = topology_report(lib.cell_by_name("AO22").unwrap());
        assert!(r.contains("10 transistors"), "{r}");
        assert!(r.contains("PDN"), "{r}");
        assert!(r.contains("PUN"), "{r}");
        assert!(r.contains("∥"), "{r}");
        assert!(r.contains("stage 1 (INV)"), "{r}");
    }

    #[test]
    fn every_standard_cell_renders() {
        let lib = Library::standard();
        for cell in lib.iter() {
            let r = topology_report(cell);
            assert!(r.contains(cell.name()), "{r}");
            assert!(r.lines().count() >= 3);
        }
    }
}
