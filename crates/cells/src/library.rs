//! The standard-cell library: cell descriptors and the library container.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use sta_netlist::verilog::{CellResolver, ResolvedCell};
use sta_netlist::{CellId, GateKind, Netlist, NetlistError, PrimOp};

use crate::func::{pin_name, Expr, TruthTable};
use crate::sensitization::{enumerate, PinArcs, SensVector};
use crate::topology::CellTopology;

/// A standard-cell type: logic function, sensitization arcs and transistor
/// realization.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    id: CellId,
    name: String,
    pin_names: Vec<String>,
    expr: Expr,
    tt: TruthTable,
    arcs: Vec<PinArcs>,
    topology: CellTopology,
}

impl Cell {
    fn new(id: CellId, name: &str, num_pins: u8, expr: Expr) -> Self {
        let tt = TruthTable::from_expr(&expr, num_pins);
        let arcs = enumerate(&tt);
        let topology = CellTopology::derive(&expr);
        let pin_names = (0..num_pins).map(|p| pin_name(p).to_string()).collect();
        Cell {
            id,
            name: name.to_string(),
            pin_names,
            expr,
            tt,
            arcs,
            topology,
        }
    }

    /// The library id of this cell type.
    #[inline]
    pub fn id(&self) -> CellId {
        self.id
    }

    /// The cell name, e.g. `"AO22"`.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input pins.
    #[inline]
    pub fn num_pins(&self) -> u8 {
        self.tt.num_pins()
    }

    /// Pin names in pin order (`A`, `B`, …; `S` for the MUX select).
    #[inline]
    pub fn pin_names(&self) -> &[String] {
        &self.pin_names
    }

    /// The logic function specification.
    #[inline]
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The truth table of the function.
    #[inline]
    pub fn truth_table(&self) -> &TruthTable {
        &self.tt
    }

    /// Sensitization arcs, one entry per pin (paper Tables 1–2).
    #[inline]
    pub fn arcs(&self) -> &[PinArcs] {
        &self.arcs
    }

    /// The sensitization vectors of one pin.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range.
    pub fn vectors_of(&self, pin: u8) -> &[SensVector] {
        &self.arcs[pin as usize].vectors
    }

    /// The CMOS realization.
    #[inline]
    pub fn topology(&self) -> &CellTopology {
        &self.topology
    }

    /// Whether any pin has more than one sensitization vector — the cells
    /// the paper calls *complex* in the timing sense.
    pub fn is_multi_vector(&self) -> bool {
        self.arcs.iter().any(|a| a.vectors.len() > 1)
    }

    /// Sum of transistor widths gated directly by `pin` (the structural
    /// part of the pin's input capacitance; the `sta-esim`/`sta-charlib`
    /// crates refine this electrically).
    pub fn pin_gate_width(&self, pin: u8) -> f64 {
        use crate::topology::Signal;
        let mut w = 0.0;
        for stage in &self.topology.stages {
            for s in stage.pulldown.signals() {
                if s == Signal::Pin(pin) {
                    w += stage.nmos_width + stage.pmos_width;
                }
            }
        }
        w
    }

    /// Evaluates the cell on a pin assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the pin count.
    pub fn eval(&self, pins: &[bool]) -> bool {
        self.tt.eval(pins)
    }
}

/// A library of standard cells, indexable by [`CellId`] or name.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Library {
    cells: Vec<Cell>,
    #[serde(skip)]
    by_name: HashMap<String, CellId>,
}

impl Library {
    /// Creates an empty library.
    pub fn new() -> Self {
        Library::default()
    }

    /// Builds the full standard library used throughout the reproduction:
    /// inverters/buffers, NAND/NOR/AND/OR 2–4, XOR/XNOR, the AOI/OAI/AO/OA
    /// complex-gate families (including the paper's AO22 and OA12) and a
    /// 2-input multiplexer.
    pub fn standard() -> Self {
        use Expr::*;
        let mut lib = Library::new();
        let p = |i: u8| Expr::Pin(i);
        let defs: Vec<(&str, u8, Expr)> = vec![
            ("INV", 1, p(0).not()),
            ("BUF", 1, p(0)),
            ("NAND2", 2, Expr::and_pins(&[0, 1]).not()),
            ("NAND3", 3, Expr::and_pins(&[0, 1, 2]).not()),
            ("NAND4", 4, Expr::and_pins(&[0, 1, 2, 3]).not()),
            ("NOR2", 2, Expr::or_pins(&[0, 1]).not()),
            ("NOR3", 3, Expr::or_pins(&[0, 1, 2]).not()),
            ("NOR4", 4, Expr::or_pins(&[0, 1, 2, 3]).not()),
            ("AND2", 2, Expr::and_pins(&[0, 1])),
            ("AND3", 3, Expr::and_pins(&[0, 1, 2])),
            ("AND4", 4, Expr::and_pins(&[0, 1, 2, 3])),
            ("OR2", 2, Expr::or_pins(&[0, 1])),
            ("OR3", 3, Expr::or_pins(&[0, 1, 2])),
            ("OR4", 4, Expr::or_pins(&[0, 1, 2, 3])),
            ("XOR2", 2, Xor(vec![p(0), p(1)])),
            ("XNOR2", 2, Xor(vec![p(0), p(1)]).not()),
            ("AOI21", 3, Or(vec![Expr::and_pins(&[0, 1]), p(2)]).not()),
            (
                "AOI22",
                4,
                Or(vec![Expr::and_pins(&[0, 1]), Expr::and_pins(&[2, 3])]).not(),
            ),
            ("OAI12", 3, And(vec![Expr::or_pins(&[0, 1]), p(2)]).not()),
            (
                "OAI22",
                4,
                And(vec![Expr::or_pins(&[0, 1]), Expr::or_pins(&[2, 3])]).not(),
            ),
            ("AO21", 3, Or(vec![Expr::and_pins(&[0, 1]), p(2)])),
            (
                "AO22",
                4,
                Or(vec![Expr::and_pins(&[0, 1]), Expr::and_pins(&[2, 3])]),
            ),
            ("OA12", 3, And(vec![Expr::or_pins(&[0, 1]), p(2)])),
            (
                "OA22",
                4,
                And(vec![Expr::or_pins(&[0, 1]), Expr::or_pins(&[2, 3])]),
            ),
            (
                "MUX2",
                3,
                Or(vec![And(vec![p(0), p(2).not()]), And(vec![p(1), p(2)])]),
            ),
        ];
        for (name, pins, expr) in defs {
            lib.add(name, pins, expr);
        }
        // The MUX select pin is conventionally called S.
        let mux = lib.by_name["MUX2"];
        lib.cells[mux.index()].pin_names[2] = "S".into();
        // ×2 drive-strength variants of every cell (ECO resize targets).
        // They share the base cell's function, truth table and
        // sensitization arcs — only the transistor widths differ — so a
        // resize is a delay-only edit by construction.
        let bases: Vec<CellId> = lib.cells.iter().map(|c| c.id).collect();
        for base in bases {
            lib.add_drive_variant(base, 2.0);
        }
        lib
    }

    /// Adds a cell and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or unsupported pin counts.
    pub fn add(&mut self, name: &str, num_pins: u8, expr: Expr) -> CellId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate cell name {name:?}"
        );
        let id = CellId::from_index(self.cells.len());
        self.cells.push(Cell::new(id, name, num_pins, expr));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Adds a drive-strength variant of an existing cell: same logic
    /// function, pin names, truth table and sensitization arcs, with every
    /// topology stage's transistor widths scaled by `scale`. The variant is
    /// named `BASE_X<scale>` (e.g. `NAND2_X2`) and returned.
    ///
    /// # Panics
    ///
    /// Panics if the resulting name is already taken or `scale` is not a
    /// positive integer multiple.
    pub fn add_drive_variant(&mut self, base: CellId, scale: f64) -> CellId {
        assert!(
            scale > 0.0 && scale.fract() == 0.0,
            "drive scale must be a positive integer, got {scale}"
        );
        let mut cell = self.cells[base.index()].clone();
        let name = format!("{}_X{}", cell.name, scale as u32);
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate cell name {name:?}"
        );
        let id = CellId::from_index(self.cells.len());
        cell.id = id;
        cell.name = name.clone();
        for stage in &mut cell.topology.stages {
            stage.nmos_width *= scale;
            stage.pmos_width *= scale;
        }
        self.cells.push(cell);
        self.by_name.insert(name, id);
        id
    }

    /// The alternate drive-strength of a cell, if the library has one:
    /// maps a base cell to its `_X2` variant and a variant back to its
    /// base. This is the edit target of the ECO `resize_gate` transform.
    pub fn resize_target(&self, id: CellId) -> Option<CellId> {
        let name = self.cell(id).name();
        match name.strip_suffix("_X2") {
            Some(base) => self.by_name.get(base).copied(),
            None => self.by_name.get(&format!("{name}_X2")).copied(),
        }
    }

    /// Number of cell types.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Access a cell by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this library.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Looks a cell up by name.
    pub fn cell_by_name(&self, name: &str) -> Option<&Cell> {
        self.by_name.get(name).map(|id| self.cell(*id))
    }

    /// Iterates over all cells.
    pub fn iter(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter()
    }

    /// The library cell implementing a primitive operator at the given
    /// fan-in, if any (used by the technology mapper).
    pub fn cell_for_prim(&self, op: PrimOp, fanin: usize) -> Option<CellId> {
        let name = match (op, fanin) {
            (PrimOp::Not, 1) => "INV",
            (PrimOp::Buf, 1) => "BUF",
            (PrimOp::Nand, 2) => "NAND2",
            (PrimOp::Nand, 3) => "NAND3",
            (PrimOp::Nand, 4) => "NAND4",
            (PrimOp::Nor, 2) => "NOR2",
            (PrimOp::Nor, 3) => "NOR3",
            (PrimOp::Nor, 4) => "NOR4",
            (PrimOp::And, 2) => "AND2",
            (PrimOp::And, 3) => "AND3",
            (PrimOp::And, 4) => "AND4",
            (PrimOp::Or, 2) => "OR2",
            (PrimOp::Or, 3) => "OR3",
            (PrimOp::Or, 4) => "OR4",
            (PrimOp::Xor, 2) => "XOR2",
            (PrimOp::Xnor, 2) => "XNOR2",
            _ => return None,
        };
        self.by_name.get(name).copied()
    }

    /// Evaluates a *mapped* netlist under a Boolean input assignment.
    ///
    /// Works for primitive gates too, so partially mapped netlists
    /// evaluate correctly.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the PI count or the
    /// netlist has a cycle.
    pub fn eval_netlist(&self, nl: &Netlist, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), nl.inputs().len());
        let mut value = vec![false; nl.num_nets()];
        for (&net, &v) in nl.inputs().iter().zip(assignment) {
            value[net.index()] = v;
        }
        let order = nl.topo_gates();
        assert_eq!(order.len(), nl.num_gates(), "netlist has a cycle");
        let mut buf = Vec::new();
        for g in order {
            let gate = nl.gate(g);
            buf.clear();
            buf.extend(gate.inputs().iter().map(|n| value[n.index()]));
            value[gate.output().index()] = match gate.kind() {
                GateKind::Prim(op) => op.eval(&buf),
                GateKind::Cell(c) => self.cell(c).eval(&buf),
            };
        }
        nl.outputs().iter().map(|o| value[o.index()]).collect()
    }

    /// Rebuilds the name index after deserialization.
    pub fn rebuild_name_index(&mut self) {
        self.by_name = self.cells.iter().map(|c| (c.name.clone(), c.id)).collect();
    }
}

impl CellResolver for Library {
    fn resolve(&self, cell_name: &str) -> Result<ResolvedCell, NetlistError> {
        let cell = self
            .cell_by_name(cell_name)
            .ok_or_else(|| NetlistError::UnknownName(cell_name.to_string()))?;
        Ok(ResolvedCell {
            id: cell.id(),
            input_pins: cell.pin_names().to_vec(),
            output_pin: "Z".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_is_complete_and_consistent() {
        let lib = Library::standard();
        // 25 base cells plus one ×2 drive variant each.
        assert_eq!(lib.len(), 50);
        for cell in lib.iter() {
            // Realization matches specification on every input pattern.
            let n = cell.num_pins();
            for row in 0..(1u32 << n) {
                let pins: Vec<bool> = (0..n).map(|k| row & (1 << k) != 0).collect();
                assert_eq!(
                    cell.topology().eval(&pins),
                    cell.eval(&pins),
                    "{} row {row}",
                    cell.name()
                );
            }
            // Every pin matters and is sensitizable.
            for pin in 0..n {
                assert!(cell.truth_table().depends_on(pin), "{}", cell.name());
                assert!(
                    !cell.vectors_of(pin).is_empty(),
                    "{} pin {pin}",
                    cell.name()
                );
            }
        }
    }

    #[test]
    fn multi_vector_classification() {
        let lib = Library::standard();
        for (name, expect) in [
            ("INV", false),
            ("NAND3", false),
            ("AND2", false),
            ("AO22", true),
            ("OA12", true),
            ("AOI21", true),
            ("XOR2", true),
            ("MUX2", true),
        ] {
            assert_eq!(
                lib.cell_by_name(name).unwrap().is_multi_vector(),
                expect,
                "{name}"
            );
        }
    }

    #[test]
    fn ao22_has_twelve_arc_variants() {
        // Paper: "gate AO22 has three sensitization vectors for each input,
        // leading to a total of 12 different delay propagation values".
        let lib = Library::standard();
        let ao22 = lib.cell_by_name("AO22").unwrap();
        let total: usize = ao22.arcs().iter().map(|a| a.vectors.len()).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn drive_variants_share_function_and_double_widths() {
        let lib = Library::standard();
        for cell in lib.iter().filter(|c| !c.name().ends_with("_X2")) {
            let var = lib
                .cell_by_name(&format!("{}_X2", cell.name()))
                .unwrap_or_else(|| panic!("{} has no X2 variant", cell.name()));
            assert_eq!(var.truth_table(), cell.truth_table(), "{}", cell.name());
            assert_eq!(var.expr(), cell.expr(), "{}", cell.name());
            assert_eq!(var.arcs(), cell.arcs(), "{}", cell.name());
            assert_eq!(var.pin_names(), cell.pin_names(), "{}", cell.name());
            for (b, v) in cell.topology().stages.iter().zip(&var.topology().stages) {
                assert_eq!(v.pulldown, b.pulldown);
                assert_eq!(v.nmos_width, 2.0 * b.nmos_width);
                assert_eq!(v.pmos_width, 2.0 * b.pmos_width);
            }
            // resize_target is an involution between base and variant.
            assert_eq!(lib.resize_target(cell.id()), Some(var.id()));
            assert_eq!(lib.resize_target(var.id()), Some(cell.id()));
        }
    }

    #[test]
    fn prim_mapping_covers_bench_operators() {
        let lib = Library::standard();
        for op in [PrimOp::And, PrimOp::Or, PrimOp::Nand, PrimOp::Nor] {
            for fanin in 2..=4 {
                assert!(lib.cell_for_prim(op, fanin).is_some(), "{op} {fanin}");
            }
        }
        assert!(lib.cell_for_prim(PrimOp::Not, 1).is_some());
        assert!(lib.cell_for_prim(PrimOp::Xor, 2).is_some());
        assert!(lib.cell_for_prim(PrimOp::Nand, 7).is_none());
    }

    #[test]
    fn eval_netlist_resolves_cells() {
        use sta_netlist::GateKind;
        let lib = Library::standard();
        let ao22 = lib.cell_by_name("AO22").unwrap().id();
        let inv = lib.cell_by_name("INV").unwrap().id();
        let mut nl = Netlist::new("t");
        let ins: Vec<_> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let x = nl.add_gate(GateKind::Cell(ao22), &ins, None).unwrap();
        let z = nl.add_gate(GateKind::Cell(inv), &[x], Some("z")).unwrap();
        nl.mark_output(z);
        // Z = !(A*B + C*D)
        assert_eq!(
            lib.eval_netlist(&nl, &[true, true, false, false]),
            vec![false]
        );
        assert_eq!(
            lib.eval_netlist(&nl, &[true, false, false, true]),
            vec![true]
        );
    }

    #[test]
    fn pin_gate_width_is_positive() {
        let lib = Library::standard();
        for cell in lib.iter() {
            for pin in 0..cell.num_pins() {
                assert!(cell.pin_gate_width(pin) > 0.0, "{} pin {pin}", cell.name());
            }
        }
    }

    /// Arc polarity is consistent with the truth-table unateness: a
    /// positive-unate pin never yields an inverting vector and vice versa;
    /// binate pins (XOR-like) must expose both polarities.
    #[test]
    fn vector_polarity_matches_unateness() {
        use crate::func::Unateness;
        use crate::sensitization::Polarity;
        let lib = Library::standard();
        for cell in lib.iter() {
            for pin in 0..cell.num_pins() {
                let unate = cell.truth_table().unateness(pin);
                let vectors = cell.vectors_of(pin);
                match unate {
                    Unateness::Positive => assert!(
                        vectors.iter().all(|v| v.polarity == Polarity::NonInverting),
                        "{} pin {pin}",
                        cell.name()
                    ),
                    Unateness::Negative => assert!(
                        vectors.iter().all(|v| v.polarity == Polarity::Inverting),
                        "{} pin {pin}",
                        cell.name()
                    ),
                    Unateness::Binate => {
                        assert!(vectors.iter().any(|v| v.polarity == Polarity::NonInverting));
                        assert!(vectors.iter().any(|v| v.polarity == Polarity::Inverting));
                    }
                    Unateness::Independent => {
                        panic!("{} pin {pin} is unused", cell.name())
                    }
                }
            }
        }
    }

    #[test]
    fn resolver_reports_mux_select_pin() {
        let lib = Library::standard();
        let r = lib.resolve("MUX2").unwrap();
        assert_eq!(r.input_pins, vec!["A", "B", "S"]);
        assert!(lib.resolve("NOPE").is_err());
    }
}
