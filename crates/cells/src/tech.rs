//! Technology parameter sets for the three CMOS nodes the paper evaluates
//! (130 nm, 90 nm, 65 nm).
//!
//! The paper characterizes foundry libraries with Spectre; we substitute a
//! switch-level RC model (see `sta-esim`), so a "technology" here is the
//! parameter set of that model: device on-resistance, threshold voltage,
//! gate/drain capacitance per unit width, nominal supply, and first-order
//! temperature/supply scalings. Values are chosen so that absolute gate
//! delays land in the same few-tens-to-hundreds-of-picoseconds range the
//! paper reports (its 65 nm library is a low-power flavor — slower than the
//! 90 nm one — and we mirror that), but only the *relative* behaviour
//! (vector-to-vector deltas, model-vs-golden errors) carries scientific
//! weight in the reproduction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A CMOS technology node for the switch-level model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Short name, e.g. `"130nm"`.
    pub name: String,
    /// Nominal supply voltage in volts.
    pub vdd: f64,
    /// nMOS threshold voltage in volts (at 25 °C).
    pub vt_n: f64,
    /// pMOS threshold voltage magnitude in volts (at 25 °C).
    pub vt_p: f64,
    /// On-resistance of a unit-width nMOS, in kΩ.
    pub r_n: f64,
    /// On-resistance of a unit-width pMOS, in kΩ.
    pub r_p: f64,
    /// Gate capacitance per unit width, in fF.
    pub c_gate: f64,
    /// Drain/source junction capacitance per unit width, in fF.
    pub c_drain: f64,
    /// Fixed wiring capacitance per fanout pin, in fF.
    pub c_wire: f64,
    /// Relative on-resistance increase per °C above 25 °C.
    pub res_tc: f64,
    /// Threshold-voltage decrease per °C above 25 °C, in volts.
    pub vt_tc: f64,
    /// Velocity-saturation exponent for the conductance law
    /// (g ∝ ((Vgs−Vt)/(VDD−Vt))^α).
    pub alpha: f64,
}

impl Technology {
    /// The 130 nm node (VDD = 1.2 V).
    pub fn n130() -> Self {
        Technology {
            name: "130nm".into(),
            vdd: 1.2,
            vt_n: 0.34,
            vt_p: 0.36,
            r_n: 3.9,
            r_p: 7.8,
            c_gate: 1.20,
            c_drain: 0.85,
            c_wire: 0.30,
            res_tc: 0.0020,
            vt_tc: 0.0008,
            alpha: 1.25,
        }
    }

    /// The 90 nm node (VDD = 1.0 V) — the fastest of the three, as in the
    /// paper's Tables 3–4.
    pub fn n90() -> Self {
        Technology {
            name: "90nm".into(),
            vdd: 1.0,
            vt_n: 0.28,
            vt_p: 0.30,
            r_n: 3.0,
            r_p: 6.0,
            c_gate: 0.75,
            c_drain: 0.55,
            c_wire: 0.20,
            res_tc: 0.0022,
            vt_tc: 0.0009,
            alpha: 1.18,
        }
    }

    /// The 65 nm node (VDD = 1.0 V, low-power flavor: higher Vt and
    /// resistance, hence *slower* than 90 nm — matching the paper, where
    /// 65 nm AO22 delays exceed the 90 nm ones).
    pub fn n65() -> Self {
        Technology {
            name: "65nm".into(),
            vdd: 1.0,
            vt_n: 0.36,
            vt_p: 0.38,
            r_n: 5.6,
            r_p: 11.2,
            c_gate: 0.62,
            c_drain: 0.17,
            c_wire: 0.15,
            res_tc: 0.0024,
            vt_tc: 0.0010,
            alpha: 1.12,
        }
    }

    /// All three nodes, in the paper's order.
    pub fn all() -> Vec<Technology> {
        vec![Self::n130(), Self::n90(), Self::n65()]
    }

    /// Looks a node up by name (`"130nm"`, `"90nm"`, `"65nm"`, with or
    /// without the `nm` suffix).
    pub fn by_name(name: &str) -> Option<Technology> {
        match name.trim().trim_end_matches("nm") {
            "130" => Some(Self::n130()),
            "90" => Some(Self::n90()),
            "65" => Some(Self::n65()),
            _ => None,
        }
    }

    /// Effective nMOS on-resistance (kΩ) for a device of `width` units at
    /// temperature `t` (°C).
    pub fn r_n_eff(&self, width: f64, t: f64) -> f64 {
        self.r_n / width * (1.0 + self.res_tc * (t - 25.0))
    }

    /// Effective pMOS on-resistance (kΩ) for a device of `width` units at
    /// temperature `t` (°C).
    pub fn r_p_eff(&self, width: f64, t: f64) -> f64 {
        self.r_p / width * (1.0 + self.res_tc * (t - 25.0))
    }

    /// nMOS threshold at temperature `t` (°C).
    pub fn vt_n_at(&self, t: f64) -> f64 {
        (self.vt_n - self.vt_tc * (t - 25.0)).max(0.05)
    }

    /// pMOS threshold magnitude at temperature `t` (°C).
    pub fn vt_p_at(&self, t: f64) -> f64 {
        (self.vt_p - self.vt_tc * (t - 25.0)).max(0.05)
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (VDD={} V)", self.name, self.vdd)
    }
}

/// An operating corner: temperature and supply, defaulting to the paper's
/// nominal conditions (25 °C, nominal VDD).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Corner {
    /// Junction temperature in °C.
    pub temperature: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
}

impl Corner {
    /// The nominal corner of a technology: 25 °C, nominal supply.
    pub fn nominal(tech: &Technology) -> Self {
        Corner {
            temperature: 25.0,
            vdd: tech.vdd,
        }
    }

    /// The fast (best-case) signoff corner: cold silicon at elevated
    /// supply (0 °C, 110 % VDD). Both points sit on the standard
    /// characterization grids, so the polynomial model is exact here.
    pub fn fast(tech: &Technology) -> Self {
        Corner {
            temperature: 0.0,
            vdd: tech.vdd * 1.1,
        }
    }

    /// The slow (worst-case) signoff corner: hot silicon at reduced
    /// supply (125 °C, 90 % VDD). Both points sit on the standard
    /// characterization grids, so the polynomial model is exact here.
    pub fn slow(tech: &Technology) -> Self {
        Corner {
            temperature: 125.0,
            vdd: tech.vdd * 0.9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(Technology::by_name("130nm").unwrap().name, "130nm");
        assert_eq!(Technology::by_name("90").unwrap().name, "90nm");
        assert!(Technology::by_name("45nm").is_none());
    }

    #[test]
    fn ordering_of_speeds() {
        // 90 nm must be the fastest node, 65 nm slower than 90 nm (paper
        // Tables 3–4), judged by the intrinsic R·C product.
        let rc = |t: &Technology| t.r_n * t.c_gate;
        let (t130, t90, t65) = (Technology::n130(), Technology::n90(), Technology::n65());
        assert!(rc(&t90) < rc(&t65), "90nm faster than 65nm");
        assert!(rc(&t90) < rc(&t130), "90nm faster than 130nm");
    }

    #[test]
    fn temperature_scalings_have_the_right_sign() {
        let t = Technology::n90();
        assert!(t.r_n_eff(1.0, 125.0) > t.r_n_eff(1.0, 25.0));
        assert!(t.vt_n_at(125.0) < t.vt_n_at(25.0));
        assert!((t.r_n_eff(2.0, 25.0) - t.r_n / 2.0).abs() < 1e-12);
    }

    #[test]
    fn nominal_corner_matches_tech() {
        let t = Technology::n130();
        let c = Corner::nominal(&t);
        assert_eq!(c.vdd, 1.2);
        assert_eq!(c.temperature, 25.0);
    }

    #[test]
    fn signoff_corners_bracket_nominal() {
        let t = Technology::n90();
        let (fast, nom, slow) = (Corner::fast(&t), Corner::nominal(&t), Corner::slow(&t));
        assert!(fast.vdd > nom.vdd && nom.vdd > slow.vdd);
        assert!(fast.temperature < nom.temperature && nom.temperature < slow.temperature);
    }
}
