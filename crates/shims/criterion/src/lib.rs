//! In-tree stand-in for `criterion`.
//!
//! Provides the group/bench API subset the workspace's benches use and
//! measures with plain wall-clock sampling: per bench it runs a short
//! warm-up, then `sample_size` samples (each auto-scaled to enough
//! iterations to be timeable) and reports min/mean/max time per
//! iteration. No statistical machinery, HTML reports, or comparison with
//! saved baselines — numbers print to stdout.

#![forbid(unsafe_code)]
use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark (function name + optional parameter).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().id, 20, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (the shim prints as it goes; nothing to flush).
    pub fn finish(self) {}
}

/// Hands the routine under test to the measurement loop.
pub struct Bencher {
    mode: BencherMode,
    /// Iterations to run when in `Measure` mode.
    iters: u64,
    /// Accumulated routine time when in `Measure` mode.
    elapsed: Duration,
}

enum BencherMode {
    /// Calibration: time one iteration.
    Calibrate,
    /// Timed run of `iters` iterations.
    Measure,
}

impl Bencher {
    /// Times `routine`, subtracting nothing (criterion's `iter`).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let n = match self.mode {
            BencherMode::Calibrate => 1,
            BencherMode::Measure => self.iters,
        };
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: how long is one iteration?
    let mut b = Bencher {
        mode: BencherMode::Calibrate,
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~10ms per sample, capped so slow benches still finish.
    let target = Duration::from_millis(10);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut per_iter_times: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            mode: BencherMode::Measure,
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let min = per_iter_times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter_times.iter().copied().fold(0.0f64, f64::max);
    let mean = per_iter_times.iter().sum::<f64>() / per_iter_times.len() as f64;
    println!(
        "bench {label:<55} [{} {} {}] ({iters} iters x {sample_size} samples)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            runs += 1;
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(runs > 0, "routine closure never invoked");
    }
}
