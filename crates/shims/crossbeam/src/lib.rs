//! In-tree stand-in for `crossbeam`.
//!
//! Two pieces, matching what the workspace uses:
//!
//! * [`scope`] — crossbeam-style scoped threads (spawn closures borrow the
//!   stack; panics are collected into an `Err` instead of aborting), built
//!   on `std::thread::scope`.
//! * [`deque`] — `Injector` / `Worker` / `Stealer` work-stealing queues.
//!   The shim backs them with mutex-guarded `VecDeque`s rather than
//!   lock-free Chase–Lev deques; same semantics (FIFO injector, LIFO
//!   worker, FIFO steal), more contention under heavy stealing — fine for
//!   the coarse-grained root tasks the enumerator distributes.

#![forbid(unsafe_code)]
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A handle for spawning threads inside a [`scope`] call.
///
/// Wraps `std::thread::Scope`; spawn closures receive a `&Scope` argument
/// (crossbeam's signature) so nested spawning works.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread scoped to the enclosing [`scope`] call.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope handle; all spawned threads are joined before
/// returning.
///
/// # Errors
///
/// Returns `Err` with the panic payload if `f` or any spawned thread
/// panicked (crossbeam's contract; `std::thread::scope` re-raises child
/// panics on join, which the `catch_unwind` here converts back to a value).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod deque {
    //! Work-stealing queues: shared [`Injector`], per-thread [`Worker`],
    //! cross-thread [`Stealer`].

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was lost; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// Converts to `Option`, dropping the `Empty`/`Retry` distinction.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// `true` if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    fn locked<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match q.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// A global FIFO task queue shared by all workers.
    #[derive(Debug)]
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends a task to the back of the queue.
        pub fn push(&self, task: T) {
            locked(&self.q).push_back(task);
        }

        /// Steals the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.q).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch into `dest`'s queue and pops one task from it.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut src = locked(&self.q);
            // Take up to half of what is queued (at least one).
            let take = (src.len() / 2).max(1);
            let mut moved: Vec<T> = Vec::with_capacity(take);
            for _ in 0..take {
                match src.pop_front() {
                    Some(t) => moved.push(t),
                    None => break,
                }
            }
            drop(src);
            if moved.is_empty() {
                return Steal::Empty;
            }
            let mut dst = locked(&dest.q);
            for t in moved {
                dst.push_back(t);
            }
            let first = dst.pop_back().expect("just pushed at least one task");
            Steal::Success(first)
        }

        /// `true` if no tasks are queued.
        pub fn is_empty(&self) -> bool {
            locked(&self.q).is_empty()
        }
    }

    /// A per-thread queue; the owner pushes and pops at the back (LIFO),
    /// stealers take from the front (FIFO).
    #[derive(Debug)]
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Creates an empty LIFO worker queue.
        pub fn new_lifo() -> Self {
            Self::new_fifo()
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            locked(&self.q).push_back(task);
        }

        /// Pops a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            locked(&self.q).pop_back()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }

        /// `true` if the queue holds no tasks.
        pub fn is_empty(&self) -> bool {
            locked(&self.q).is_empty()
        }
    }

    /// A handle that steals from the opposite end of a [`Worker`]'s queue.
    #[derive(Debug)]
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { q: self.q.clone() }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the task at the victim's front.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.q).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            assert_eq!(inj.steal().success(), Some(1));
            assert_eq!(inj.steal().success(), Some(2));
            assert!(inj.steal().is_empty());
        }

        #[test]
        fn worker_lifo_stealer_fifo() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal().success(), Some(1)); // oldest
            assert_eq!(w.pop(), Some(3)); // newest
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
        }

        #[test]
        fn steal_batch_moves_work() {
            let inj = Injector::new();
            for i in 0..8 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            let got = inj.steal_batch_and_pop(&w).success();
            assert!(got.is_some());
            assert!(!w.is_empty());
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects_results() {
        let data = vec![1, 2, 3];
        let total = std::sync::atomic::AtomicUsize::new(0);
        super::scope(|s| {
            for &x in &data {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 6);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("child dies"));
        });
        assert!(r.is_err());
    }
}
