//! In-tree stand-in for the `rand` crate.
//!
//! Provides `StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer and float ranges — the subset this
//! workspace uses. The generator is xoshiro256++ seeded via splitmix64:
//! deterministic for a given seed, which is all the callers (Monte-Carlo
//! sampling and random-circuit generation, both explicitly seeded) need.
//! The stream differs from upstream `StdRng` (ChaCha12), so seeded
//! sequences are stable within this workspace but not across shim/real.

#![forbid(unsafe_code)]
use std::ops::Range;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The core generator: a uniform random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniform random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (subset of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Rejection sampling to avoid modulo bias.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return self.start.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator, the shim's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.gen_range(3u32..17);
            assert!((3..17).contains(&i));
            let x = rng.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&x));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
