//! In-tree stand-in for the `serde` facade.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of serde the workspace actually uses: `Serialize` /
//! `Deserialize` traits (re-deriving through `serde_derive`), implemented
//! over a self-describing [`Value`] tree that `serde_json` (the sibling
//! shim) renders to and parses from JSON text.
//!
//! The wire format is self-consistent (everything this workspace writes it
//! can read back) but intentionally makes no compatibility promise with
//! upstream serde_json output.

#![forbid(unsafe_code)]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing data tree, the interchange point between typed values
/// and JSON text.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (insertion order is preserved so output is stable).
    Map(Vec<(String, Value)>),
}

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts a typed value into a [`Value`] tree.
pub trait Serialize {
    /// The tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs a typed value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code.
// ---------------------------------------------------------------------------

/// Looks up a struct field in a `Value::Map`.
///
/// # Errors
///
/// Returns [`Error`] if `v` is not a map or the key is absent.
pub fn get_field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, val)| val)
            .ok_or_else(|| Error(format!("missing field `{key}`"))),
        other => Err(Error(format!(
            "expected map with field `{key}`, got {}",
            kind(other)
        ))),
    }
}

/// Views `v` as a sequence.
///
/// # Errors
///
/// Returns [`Error`] if `v` is not a `Value::Seq`.
pub fn get_seq(v: &Value) -> Result<&[Value], Error> {
    match v {
        Value::Seq(items) => Ok(items),
        other => Err(Error(format!("expected sequence, got {}", kind(other)))),
    }
}

/// Indexes into a sequence slice.
///
/// # Errors
///
/// Returns [`Error`] if `idx` is out of range.
pub fn get_index(s: &[Value], idx: usize) -> Result<&Value, Error> {
    s.get(idx)
        .ok_or_else(|| Error(format!("sequence too short: no element {idx}")))
}

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::UInt(_) => "integer",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {}", kind(other)))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if let Ok(i) = i64::try_from(wide) {
                    Value::Int(i)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::Int(i) => i128::from(*i),
                    Value::UInt(u) => i128::from(*u),
                    other => return Err(Error(format!(
                        "expected integer, got {}", kind(other)
                    ))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // NaN is emitted as null (JSON has no NaN literal).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error(format!(
                        "expected number, got {}", kind(other)
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => Err(Error(format!(
                "expected 1-char string, got {}",
                kind(other)
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {}", kind(other)))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        get_seq(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items).map_err(|_| Error(format!("expected {N} elements, got {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = get_seq(v)?;
                Ok(($($t::from_value(get_index(s, $n)?)?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error(format!("expected map, got {}", kind(other)))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error(format!("expected map, got {}", kind(other)))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u8, 2.5f64);
        assert_eq!(<(u8, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), o);
    }

    #[test]
    fn errors_are_descriptive() {
        let e = u32::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(e.0.contains("integer"));
        let e = get_field(&Value::Map(vec![]), "missing").unwrap_err();
        assert!(e.0.contains("missing"));
    }
}
