//! In-tree stand-in for `serde_json`: renders the serde shim's
//! [`serde::Value`] tree to JSON text and parses it back.
//!
//! Guarantees self-round-trip (everything [`to_string`] writes,
//! [`from_str`] reads back to an equal typed value) but makes no
//! compatibility promise with upstream serde_json's exact formatting.
//! Non-finite floats are encoded as `1e999` / `-1e999` (which parse back
//! to the infinities) and NaN as `null`.

#![forbid(unsafe_code)]
pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Never fails in this shim (the signature matches upstream).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to indented JSON text.
///
/// # Errors
///
/// Never fails in this shim (the signature matches upstream).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (k, (key, val)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (k, (key, val)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("null");
    } else if x == f64::INFINITY {
        out.push_str("1e999");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else {
        // `{:?}` prints the shortest representation that round-trips, and
        // always includes a `.` or exponent so the parser reads it back as
        // a float.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number chars");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let s = to_string(&1.25f64).unwrap();
        assert_eq!(s, "1.25");
        assert_eq!(from_str::<f64>(&s).unwrap(), 1.25);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i32>("-12").unwrap(), -12);
        assert_eq!(from_str::<f64>("1e999").unwrap(), f64::INFINITY);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f — ünïcode".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.0), None, Some(-2.5e-3)];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Option<f64>>>(&s).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }
}
