//! Derive macros for the in-tree serde shim.
//!
//! `syn`/`quote` are unavailable (no registry access), so the item is
//! parsed directly from the `proc_macro` token stream and the generated
//! impl is emitted as source text. Supported shapes cover everything this
//! workspace derives: non-generic structs (named, tuple, unit) and enums
//! whose variants are unit, tuple, or struct-like, plus the
//! `#[serde(skip)]` field attribute (skipped fields deserialize via
//! `Default`).

#![forbid(unsafe_code)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated code parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated code parses")
}

struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported ({name})");
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                Item::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let (arity, any_skip) = parse_tuple_fields(g.stream());
                assert!(
                    !any_skip,
                    "serde shim derive: #[serde(skip)] on tuple fields is unsupported"
                );
                Item::TupleStruct { name, arity }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => {
            let body = match toks.remove(i) {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: expected enum body, got {other}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Advances past leading attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(toks.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // '[...]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // '(crate)' etc.
                }
            }
            _ => return,
        }
    }
}

/// Collects leading attributes, reporting whether `#[serde(skip)]` is
/// among them, and advances past them.
fn take_attrs_skip(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(head)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if head.to_string() == "serde"
                    && args
                        .stream()
                        .into_iter()
                        .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
                {
                    skip = true;
                }
            }
            *i += 1;
        }
    }
    skip
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, got {other:?}"),
    }
}

/// Skips a type (or expression) up to a top-level `,`, tracking `<`/`>`
/// nesting so commas inside generic arguments are not split points.
fn skip_to_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let skip = take_attrs_skip(&toks, &mut i);
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        // ':'
        i += 1;
        skip_to_comma(&toks, &mut i);
        // ','
        i += 1;
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> (usize, bool) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0;
    let mut any_skip = false;
    let mut i = 0;
    while i < toks.len() {
        any_skip |= take_attrs_skip(&toks, &mut i);
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_to_comma(&toks, &mut i);
        i += 1; // ','
        arity += 1;
    }
    (arity, any_skip)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        take_attrs_skip(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let (arity, _) = parse_tuple_fields(g.stream());
                i += 1;
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant`, then the trailing comma.
        skip_to_comma(&toks, &mut i);
        i += 1;
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "m.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(m)\n}}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Seq(vec![{}])\n}}\n}}\n",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                        let sers: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            sers.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let sers: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            sers.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(v, \"{0}\")?)?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(::serde::get_index(s, {k})?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 let s = ::serde::get_seq(v)?;\n\
                 ::std::result::Result::Ok({name}({}))\n}}\n}}\n",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::Error> {{\n\
             ::std::result::Result::Ok({name})\n}}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_value(\
                                     ::serde::get_index(s, {k})?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let s = ::serde::get_seq(inner)?;\n\
                             ::std::result::Result::Ok({name}::{vn}({})) }}\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: ::serde::Deserialize::from_value(\
                                     ::serde::get_field(inner, \"{0}\")?)?,\n",
                                    f.name
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error(\
                 format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {data_arms}\
                 other => ::std::result::Result::Err(::serde::Error(\
                 format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error(\
                 ::std::string::String::from(\
                 \"expected enum representation for {name}\"))),\n\
                 }}\n}}\n}}\n"
            )
        }
    }
}
