//! In-tree stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's signatures: `lock()`
//! returns the guard directly (no `Result`). Poisoning — parking_lot has
//! none — is recovered by taking the inner guard from a poisoned result,
//! matching parking_lot's semantics of simply continuing after a panic.

#![forbid(unsafe_code)]
use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_after_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock keeps working.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
