//! In-tree stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`, range
//! and tuple strategies, `prop::collection::vec`, a mini regex string
//! strategy (char classes + quantifiers), the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` / `prop_oneof!`
//! macros, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via the assertion message only) and generation is seeded
//! deterministically from the test name, so failures reproduce across
//! runs.

#![forbid(unsafe_code)]
use std::ops::Range;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (subset of upstream's many knobs).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count toward
    /// the case budget.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Drives one `proptest!` test body: generates inputs until `cfg.cases`
/// cases pass, panicking on the first failure.
///
/// Seeded deterministically from `name` so a failure reproduces on rerun.
///
/// # Panics
///
/// Panics on a failed case or when rejections exceed the retry budget.
pub fn run_proptest<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
    let mut accepted: u32 = 0;
    let mut rejected: u32 = 0;
    let reject_budget = cfg.cases.saturating_mul(16).max(1024);
    while accepted < cfg.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "proptest `{name}`: too many rejected cases \
                     ({rejected} rejects for {accepted} accepted)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {accepted}: {msg}")
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators.
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps a strategy for shallower values into one for deeper values.
    ///
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// signature compatibility; this shim controls size through `depth`
    /// alone (each level flips between a leaf and one more level of
    /// recursion).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between alternative strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+)),+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

// ---------------------------------------------------------------------------
// Mini regex string strategy.
// ---------------------------------------------------------------------------

/// A `&str` is interpreted as a generation pattern: literal characters,
/// `\n`-style escapes, `[..]` character classes (with ranges), and the
/// quantifiers `{n}`, `{lo,hi}`, `?`, `*`, `+` — enough for patterns like
/// `"[ -~\n]{0,200}"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.max_rep > atom.min_rep {
                rng.gen_range(atom.min_rep..atom.max_rep + 1)
            } else {
                atom.min_rep
            };
            for _ in 0..n {
                let k = if atom.choices.len() > 1 {
                    rng.gen_range(0..atom.choices.len())
                } else {
                    0
                };
                out.push(atom.choices[k]);
            }
        }
        out
    }
}

struct Atom {
    choices: Vec<char>,
    min_rep: usize,
    max_rep: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        escape(chars[i])
                    } else {
                        chars[i]
                    };
                    i += 1;
                    // A `-` between two class members denotes a range.
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            escape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        for c in lo..=hi {
                            set.push(c);
                        }
                    } else {
                        set.push(lo);
                    }
                }
                i += 1; // consume ']'
                assert!(!set.is_empty(), "empty character class in `{pattern}`");
                set
            }
            '\\' => {
                i += 1;
                let c = escape(chars[i]);
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min_rep, max_rep) = parse_quantifier(&chars, &mut i);
        atoms.push(Atom {
            choices,
            min_rep,
            max_rep,
        });
    }
    atoms
}

fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            *i += 1;
            let mut lo = 0usize;
            while chars[*i].is_ascii_digit() {
                lo = lo * 10 + chars[*i].to_digit(10).expect("digit") as usize;
                *i += 1;
            }
            let hi = if chars[*i] == ',' {
                *i += 1;
                let mut h = 0usize;
                while chars[*i].is_ascii_digit() {
                    h = h * 10 + chars[*i].to_digit(10).expect("digit") as usize;
                    *i += 1;
                }
                h
            } else {
                lo
            };
            *i += 1; // consume '}'
            (lo, hi)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn escape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Modules mirroring upstream paths.
// ---------------------------------------------------------------------------

pub mod strategy {
    //! Strategy types, at their upstream module path.
    pub use crate::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod collection {
    //! Collection strategies.
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with sizes drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with `len` in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`, ...).
    pub use crate::collection;
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let cfg = $cfg;
                $crate::run_proptest(&cfg, stringify!($name), |prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), prop_rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) so the runner can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                l, r, stringify!($left), stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        let s = (0u8..4, -1.0f64..1.0);
        for _ in 0..200 {
            let (a, b) = Strategy::generate(&s, &mut rng);
            assert!(a < 4);
            assert!((-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn regex_pattern_respects_class_and_reps() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pat = "[ -~\n]{0,200}";
        for _ in 0..100 {
            let s = Strategy::generate(&pat, &mut rng);
            assert!(s.chars().count() <= 200);
            for c in s.chars() {
                assert!(c == '\n' || (' '..='~').contains(&c), "bad char {c:?}");
            }
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        use rand::SeedableRng;
        #[derive(Clone, Debug)]
        enum T {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..4)
            .prop_map(T::Leaf)
            .prop_recursive(3, 12, 3, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(T::Node)
            });
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let t = Strategy::generate(&s, &mut rng);
            assert!(depth(&t) <= 4, "tree too deep: {t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro front-end itself: args bind, assume rejects, asserts
        /// pass.
        #[allow(unused_comparisons)]
        fn macro_front_end(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != 3);
            prop_assert!(a < 10);
            prop_assert_eq!(a + b, b + a, "commutativity for {} {}", a, b);
        }
    }
}
