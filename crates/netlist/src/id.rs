//! Index newtypes for nets, gates and library cells.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! index_newtype {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("index exceeds u32::MAX"))
            }

            /// Returns the dense index this id wraps.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

index_newtype!(
    /// Identifier of a net (a signal node; the paper's "node").
    NetId,
    "n"
);
index_newtype!(
    /// Identifier of a gate instance.
    GateId,
    "g"
);
index_newtype!(
    /// Opaque identifier of a standard-cell *type* in an external library.
    ///
    /// The netlist crate never interprets this value; the `sta-cells` crate
    /// assigns it and resolves it back to a cell description.
    CellId,
    "cell"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = NetId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(GateId::from_index(1) < GateId::from_index(2));
        assert_eq!(CellId::from_index(7), CellId::from_index(7));
    }

    #[test]
    #[should_panic(expected = "index exceeds u32::MAX")]
    fn oversized_index_panics() {
        let _ = NetId::from_index(u32::MAX as usize + 1);
    }
}
