//! Error type for netlist construction, validation and parsing.

use std::error::Error;
use std::fmt;

/// Location of a net-level diagnostic: the design it occurred in, the
/// offending net's label, and — when a parser recorded one — the 1-based
/// source line of the net's declaration.
///
/// Renders as `design:net` or `design:net (line N)`, so validation errors
/// point at a place a user can find instead of a bare net index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetRef {
    /// The design (circuit) name.
    pub circuit: String,
    /// The net's label: its declared name, or `n<index>` for anonymous
    /// nets.
    pub net: String,
    /// 1-based source line the net was declared on, if known.
    pub line: Option<u32>,
}

impl NetRef {
    /// A location with no source line.
    pub fn new(circuit: impl Into<String>, net: impl Into<String>) -> NetRef {
        NetRef {
            circuit: circuit.into(),
            net: net.into(),
            line: None,
        }
    }

    /// Attaches a 1-based source line.
    #[must_use]
    pub fn at_line(mut self, line: u32) -> NetRef {
        self.line = Some(line);
        self
    }
}

impl fmt::Display for NetRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.circuit, self.net)?;
        if let Some(line) = self.line {
            write!(f, " (line {line})")?;
        }
        Ok(())
    }
}

/// Errors produced while building, validating or parsing a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was created with no inputs, or a unary gate with the wrong
    /// arity.
    BadArity {
        /// Description of the offending gate.
        gate: String,
        /// Number of inputs supplied.
        got: usize,
    },
    /// A net was driven by two gates (or by a gate and a primary input).
    MultipleDrivers(NetRef),
    /// A net is used but never driven and is not a primary input.
    Undriven(NetRef),
    /// The netlist contains a combinational cycle through the named net.
    Cycle(NetRef),
    /// A `.bench`/Verilog keyword did not name a known operator.
    UnknownOperator(String),
    /// Generic parse failure with line number (1-based) and message.
    Parse {
        /// Line the failure occurred on, 1-based.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A name was referenced before/without declaration.
    UnknownName(String),
    /// A duplicate declaration of a name.
    DuplicateName(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::BadArity { gate, got } => {
                write!(f, "gate {gate} has invalid fan-in {got}")
            }
            NetlistError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            NetlistError::Undriven(n) => write!(f, "net {n} is used but never driven"),
            NetlistError::Cycle(n) => write!(f, "combinational cycle through net {n}"),
            NetlistError::UnknownOperator(s) => write!(f, "unknown gate operator {s:?}"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::UnknownName(n) => write!(f, "unknown name {n:?}"),
            NetlistError::DuplicateName(n) => write!(f, "duplicate declaration of {n:?}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = NetlistError::Parse {
            line: 3,
            message: "expected '='".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: expected '='");
    }

    #[test]
    fn net_refs_render_circuit_and_line() {
        let e = NetlistError::Undriven(NetRef::new("c432", "n5"));
        assert_eq!(e.to_string(), "net c432:n5 is used but never driven");
        let e = NetlistError::MultipleDrivers(NetRef::new("bad", "z").at_line(4));
        assert_eq!(e.to_string(), "net bad:z (line 4) has multiple drivers");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
