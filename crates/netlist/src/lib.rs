//! Gate-level netlist data model for combinational circuits.
//!
//! This crate is the structural substrate of the STA reproduction: a compact
//! directed-acyclic netlist of gates and nets, together with
//!
//! * builders and validation ([`Netlist`]),
//! * topological ordering and levelization ([`Netlist::topo_gates`],
//!   [`Netlist::levelize`]),
//! * an ISCAS-85 `.bench` reader/writer ([`bench_fmt`]),
//! * a structural-Verilog subset reader/writer ([`verilog`]),
//! * netlist statistics ([`stats`]).
//!
//! Gates are either *primitive* Boolean operators ([`PrimOp`]) as found in
//! `.bench` files, or *library cell* instances identified by an opaque
//! [`CellId`] that an external standard-cell library assigns (see the
//! `sta-cells` crate). Keeping [`CellId`] opaque here avoids a dependency
//! cycle while letting mapped netlists and raw netlists share one data model.
//!
//! # Example
//!
//! ```
//! use sta_netlist::{Netlist, GateKind, PrimOp};
//!
//! # fn main() -> Result<(), sta_netlist::NetlistError> {
//! let mut nl = Netlist::new("half_adder");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let sum = nl.add_gate(GateKind::Prim(PrimOp::Xor), &[a, b], Some("sum"))?;
//! let carry = nl.add_gate(GateKind::Prim(PrimOp::And), &[a, b], Some("carry"))?;
//! nl.mark_output(sum);
//! nl.mark_output(carry);
//! nl.validate()?;
//! assert_eq!(nl.num_gates(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_fmt;
pub mod cone;
pub mod dot;
mod error;
mod graph;
mod id;
mod prim;
pub mod stats;
pub mod verilog;

pub use error::{NetRef, NetlistError};
pub use graph::{Gate, GateKind, Net, Netlist, PinRef};
pub use id::{CellId, GateId, NetId};
pub use prim::PrimOp;
