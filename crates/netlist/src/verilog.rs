//! Reader and writer for a structural-Verilog subset.
//!
//! Mapped netlists (gates are standard-cell instances) are interchanged as
//! structural Verilog with named port connections:
//!
//! ```text
//! module top (a, b, z);
//!   input a, b;
//!   output z;
//!   wire n1;
//!   AO22 u1 (.Z(n1), .A(a), .B(b), .C(a), .D(b));
//!   INV  u2 (.Z(z), .A(n1));
//! endmodule
//! ```
//!
//! Because this crate does not know cell types, parsing is a two-stage
//! affair: [`parse_module`] produces a [`StructuralModule`] with *string*
//! cell names, and [`StructuralModule::into_netlist`] resolves those names
//! through a caller-supplied [`CellResolver`] (implemented by the cell
//! library in `sta-cells`).

use std::collections::HashMap;

use crate::{CellId, GateKind, NetId, Netlist, NetlistError};

/// Resolves a cell name to its library id and ordered input pin names.
///
/// Returns `(cell id, input pin names in netlist pin order, output pin name)`.
pub trait CellResolver {
    /// Looks up a cell by name.
    ///
    /// # Errors
    ///
    /// Implementations return [`NetlistError::UnknownName`] for cells the
    /// library does not contain.
    fn resolve(&self, cell_name: &str) -> Result<ResolvedCell, NetlistError>;
}

/// A resolved cell interface, as reported by a [`CellResolver`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedCell {
    /// The library id to store in [`GateKind::Cell`].
    pub id: CellId,
    /// Input pin names, in the pin order the netlist gate will use.
    pub input_pins: Vec<String>,
    /// The output pin name.
    pub output_pin: String,
}

/// One parsed cell instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Cell type name, e.g. `"AO22"`.
    pub cell: String,
    /// Instance name, e.g. `"u1"`.
    pub name: String,
    /// Named connections `(.PIN(net))`, in source order.
    pub connections: Vec<(String, String)>,
}

/// A parsed structural module before cell-name resolution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StructuralModule {
    /// Module name.
    pub name: String,
    /// Declared inputs, in order.
    pub inputs: Vec<String>,
    /// Declared outputs, in order.
    pub outputs: Vec<String>,
    /// Declared wires.
    pub wires: Vec<String>,
    /// Cell instances, in source order.
    pub instances: Vec<Instance>,
}

impl StructuralModule {
    /// Resolves the module into a mapped [`Netlist`] using `resolver` for
    /// cell lookups.
    ///
    /// # Errors
    ///
    /// Fails if a cell or pin is unknown, a net is multiply driven or
    /// undriven, or the result has a cycle.
    pub fn into_netlist(self, resolver: &dyn CellResolver) -> Result<Netlist, NetlistError> {
        let mut nl = Netlist::new(&self.name);
        let mut nets: HashMap<String, NetId> = HashMap::new();
        for name in &self.inputs {
            if nets.contains_key(name) {
                return Err(NetlistError::DuplicateName(name.clone()));
            }
            nets.insert(name.clone(), nl.add_input(name));
        }
        for name in self.outputs.iter().chain(&self.wires) {
            if !nets.contains_key(name) {
                nets.insert(name.clone(), nl.add_named_net(name));
            }
        }
        for inst in &self.instances {
            let resolved = resolver.resolve(&inst.cell)?;
            let conn: HashMap<&str, &str> = inst
                .connections
                .iter()
                .map(|(p, n)| (p.as_str(), n.as_str()))
                .collect();
            let lookup = |net_name: &str| -> Result<NetId, NetlistError> {
                nets.get(net_name)
                    .copied()
                    .ok_or_else(|| NetlistError::UnknownName(net_name.to_string()))
            };
            let out_name = conn
                .get(resolved.output_pin.as_str())
                .ok_or_else(|| NetlistError::UnknownName(resolved.output_pin.clone()))?;
            let out = lookup(out_name)?;
            let mut ins = Vec::with_capacity(resolved.input_pins.len());
            for pin in &resolved.input_pins {
                let net_name = conn
                    .get(pin.as_str())
                    .ok_or_else(|| NetlistError::UnknownName(pin.clone()))?;
                ins.push(lookup(net_name)?);
            }
            nl.add_gate_driving(GateKind::Cell(resolved.id), &ins, out)?;
        }
        for name in &self.outputs {
            nl.mark_output(nets[name]);
        }
        nl.validate()?;
        Ok(nl)
    }
}

/// Parses one structural-Verilog module.
///
/// Supported constructs: `module`/`endmodule`, `input`/`output`/`wire`
/// declarations (comma-separated scalar names), and cell instances with
/// named port connections. `//` line comments and `/* */` block comments are
/// stripped.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for anything outside the subset.
pub fn parse_module(text: &str) -> Result<StructuralModule, NetlistError> {
    let text = strip_comments(text);
    let mut module = StructuralModule::default();
    let mut seen_module = false;
    for (stmt, line_no) in split_statements(&text) {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let mut words = stmt.split_whitespace();
        let head = words.next().unwrap_or_default();
        match head {
            "module" => {
                let rest = stmt["module".len()..].trim();
                let name_end = rest
                    .find(|c: char| c == '(' || c.is_whitespace())
                    .unwrap_or(rest.len());
                module.name = rest[..name_end].to_string();
                seen_module = true;
            }
            "endmodule" => break,
            "input" | "output" | "wire" => {
                if !seen_module {
                    return Err(NetlistError::Parse {
                        line: line_no,
                        message: "declaration before module header".into(),
                    });
                }
                let names = stmt[head.len()..]
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty());
                match head {
                    "input" => module.inputs.extend(names),
                    "output" => module.outputs.extend(names),
                    _ => module.wires.extend(names),
                }
            }
            _ => {
                // Cell instance: `CELL name ( .P(n), ... )`
                let inst = parse_instance(stmt, line_no)?;
                module.instances.push(inst);
            }
        }
    }
    if !seen_module {
        return Err(NetlistError::Parse {
            line: 1,
            message: "no module header found".into(),
        });
    }
    Ok(module)
}

fn parse_instance(stmt: &str, line: usize) -> Result<Instance, NetlistError> {
    let open = stmt.find('(').ok_or_else(|| NetlistError::Parse {
        line,
        message: format!("expected instance port list in {stmt:?}"),
    })?;
    let close = stmt.rfind(')').ok_or_else(|| NetlistError::Parse {
        line,
        message: "missing ')' in instance".into(),
    })?;
    if close <= open {
        return Err(NetlistError::Parse {
            line,
            message: "')' precedes '(' in instance".into(),
        });
    }
    let header: Vec<&str> = stmt[..open].split_whitespace().collect();
    if header.len() != 2 {
        return Err(NetlistError::Parse {
            line,
            message: format!("expected 'CELL name (...)', got {stmt:?}"),
        });
    }
    let mut connections = Vec::new();
    for part in stmt[open + 1..close].split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let pin_net = part
            .strip_prefix('.')
            .and_then(|p| {
                let o = p.find('(')?;
                let c = p.rfind(')')?;
                (c > o).then(|| (p[..o].trim().to_string(), p[o + 1..c].trim().to_string()))
            })
            .ok_or_else(|| NetlistError::Parse {
                line,
                message: format!("expected named connection '.PIN(net)', got {part:?}"),
            })?;
        connections.push(pin_net);
    }
    Ok(Instance {
        cell: header[0].to_string(),
        name: header[1].to_string(),
        connections,
    })
}

/// Splits text on `;`, keeping `module ... ;` style statements together and
/// tracking the 1-based line each statement starts on.
fn split_statements(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut start_line = 1;
    let mut line = 1;
    for ch in text.chars() {
        if ch == '\n' {
            line += 1;
        }
        if ch == ';' {
            out.push((std::mem::take(&mut current), start_line));
            start_line = line;
        } else {
            if current.trim().is_empty() && !ch.is_whitespace() {
                start_line = line;
            }
            current.push(ch);
        }
    }
    if !current.trim().is_empty() {
        out.push((current, start_line));
    }
    out
}

fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                if bytes[i] == b'\n' {
                    out.push('\n'); // keep line numbers aligned
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Pretty-prints a mapped netlist as structural Verilog.
///
/// `cell_name` maps a [`CellId`] to its library name and pin names (inputs
/// in netlist pin order, then the output pin name).
pub fn write_module(
    nl: &Netlist,
    mut cell_name: impl FnMut(CellId) -> (String, Vec<String>, String),
) -> String {
    let mut out = String::new();
    let ports: Vec<String> = nl
        .inputs()
        .iter()
        .chain(nl.outputs())
        .map(|&n| nl.net_label(n))
        .collect();
    out.push_str(&format!("module {} ({});\n", nl.name(), ports.join(", ")));
    let ins: Vec<String> = nl.inputs().iter().map(|&n| nl.net_label(n)).collect();
    let outs: Vec<String> = nl.outputs().iter().map(|&n| nl.net_label(n)).collect();
    out.push_str(&format!("  input {};\n", ins.join(", ")));
    out.push_str(&format!("  output {};\n", outs.join(", ")));
    let wires: Vec<String> = nl
        .net_ids()
        .filter(|&n| !nl.net(n).is_input() && !nl.outputs().contains(&n))
        .map(|n| nl.net_label(n))
        .collect();
    if !wires.is_empty() {
        out.push_str(&format!("  wire {};\n", wires.join(", ")));
    }
    for (idx, g) in nl.topo_gates().into_iter().enumerate() {
        let gate = nl.gate(g);
        let (name, in_pins, out_pin) = match gate.kind() {
            GateKind::Cell(c) => cell_name(c),
            GateKind::Prim(op) => (
                op.keyword().to_string(),
                (0..gate.fanin()).map(|i| format!("I{i}")).collect(),
                "Z".to_string(),
            ),
        };
        let mut conns = vec![format!(".{}({})", out_pin, nl.net_label(gate.output()))];
        for (pin, &inp) in gate.inputs().iter().enumerate() {
            conns.push(format!(".{}({})", in_pins[pin], nl.net_label(inp)));
        }
        out.push_str(&format!("  {} u{} ({});\n", name, idx, conns.join(", ")));
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoCellLib;

    impl CellResolver for TwoCellLib {
        fn resolve(&self, cell_name: &str) -> Result<ResolvedCell, NetlistError> {
            match cell_name {
                "INV" => Ok(ResolvedCell {
                    id: CellId::from_index(0),
                    input_pins: vec!["A".into()],
                    output_pin: "Z".into(),
                }),
                "NAND2" => Ok(ResolvedCell {
                    id: CellId::from_index(1),
                    input_pins: vec!["A".into(), "B".into()],
                    output_pin: "Z".into(),
                }),
                other => Err(NetlistError::UnknownName(other.to_string())),
            }
        }
    }

    const SRC: &str = "\
// a tiny mapped design
module tiny (a, b, z);
  input a, b;
  output z;
  wire n1; /* internal */
  NAND2 u1 (.Z(n1), .A(a), .B(b));
  INV u2 (.Z(z), .A(n1));
endmodule
";

    #[test]
    fn parse_and_resolve() {
        let module = parse_module(SRC).unwrap();
        assert_eq!(module.name, "tiny");
        assert_eq!(module.inputs, vec!["a", "b"]);
        assert_eq!(module.instances.len(), 2);
        let nl = module.into_netlist(&TwoCellLib).unwrap();
        assert_eq!(nl.num_gates(), 2);
        assert_eq!(nl.outputs().len(), 1);
        let g_out = nl.net(nl.outputs()[0]).driver().unwrap();
        assert_eq!(nl.gate(g_out).kind(), GateKind::Cell(CellId::from_index(0)));
    }

    #[test]
    fn writer_roundtrips() {
        let module = parse_module(SRC).unwrap();
        let nl = module.into_netlist(&TwoCellLib).unwrap();
        let text = write_module(&nl, |c| {
            let (name, pins) = match c.index() {
                0 => ("INV", vec!["A"]),
                _ => ("NAND2", vec!["A", "B"]),
            };
            (
                name.to_string(),
                pins.into_iter().map(String::from).collect(),
                "Z".to_string(),
            )
        });
        let back = parse_module(&text)
            .unwrap()
            .into_netlist(&TwoCellLib)
            .unwrap();
        assert_eq!(back.num_gates(), nl.num_gates());
        assert_eq!(back.inputs().len(), nl.inputs().len());
    }

    #[test]
    fn unknown_cell_is_reported() {
        let src = "module m (a, z); input a; output z; XYZ u (.Z(z), .A(a)); endmodule";
        let module = parse_module(src).unwrap();
        let err = module.into_netlist(&TwoCellLib).unwrap_err();
        assert_eq!(err, NetlistError::UnknownName("XYZ".into()));
    }

    #[test]
    fn missing_connection_is_reported() {
        let src = "module m (a, z); input a; output z; NAND2 u (.Z(z), .A(a)); endmodule";
        let module = parse_module(src).unwrap();
        let err = module.into_netlist(&TwoCellLib).unwrap_err();
        assert_eq!(err, NetlistError::UnknownName("B".into()));
    }

    #[test]
    fn comments_are_stripped() {
        let module = parse_module("/* x */ module m (); // y\nendmodule").unwrap();
        assert_eq!(module.name, "m");
    }
}
