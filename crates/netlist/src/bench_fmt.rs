//! Reader and writer for the ISCAS-85 `.bench` netlist format.
//!
//! The format, as used by the published ISCAS-85 benchmark set:
//!
//! ```text
//! # c17
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! Blank lines and `#` comments are ignored. Gate keywords are parsed
//! case-insensitively (`BUFF` is accepted for `BUF`). Signals referenced
//! before definition are allowed — the reader resolves forward references.

use std::collections::HashMap;

use crate::{GateKind, NetId, NetRef, Netlist, NetlistError, PrimOp};

/// Parses `.bench` text into a primitive-gate [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::UnknownOperator`] for unknown gate keywords,
/// [`NetlistError::MultipleDrivers`] / [`NetlistError::Undriven`] /
/// [`NetlistError::Cycle`] if the described circuit is not a single-driver
/// DAG.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sta_netlist::NetlistError> {
/// let nl = sta_netlist::bench_fmt::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n", "inv")?;
/// assert_eq!(nl.num_gates(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str, design_name: &str) -> Result<Netlist, NetlistError> {
    let mut nl = Netlist::new(design_name);
    // First pass: declare inputs and collect gate lines so forward
    // references resolve.
    struct GateLine<'a> {
        line_no: usize,
        out: &'a str,
        op: PrimOp,
        ins: Vec<&'a str>,
    }
    let mut gate_lines: Vec<GateLine<'_>> = Vec::new();
    let mut outputs: Vec<(usize, &str)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        // A declaration is `INPUT(name)` / `OUTPUT(name)`: keyword directly
        // followed by a parenthesized name (a signal that merely *starts*
        // with "input" would appear on the left of an '=' instead).
        let decl = |kw: &str| -> Option<&str> {
            upper
                .strip_prefix(kw)
                .filter(|rest| rest.trim_start().starts_with('('))
                .map(|_| &line[kw.len()..])
        };
        if let Some(rest) = decl("INPUT") {
            let name = strip_parens(rest, line_no)?;
            if nl.net_by_name(name).is_some() {
                return Err(NetlistError::DuplicateName(name.to_string()));
            }
            let id = nl.add_input(name);
            nl.set_src_line(id, line_no as u32);
        } else if let Some(rest) = decl("OUTPUT") {
            outputs.push((line_no, strip_parens(rest, line_no)?));
        } else if let Some(eq) = line.find('=') {
            let out = line[..eq].trim();
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                line: line_no,
                message: "expected '(' after gate keyword".into(),
            })?;
            let close = rhs.rfind(')').ok_or_else(|| NetlistError::Parse {
                line: line_no,
                message: "missing closing ')'".into(),
            })?;
            let op: PrimOp = rhs[..open].trim().parse()?;
            let ins: Vec<&str> = rhs[open + 1..close]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if ins.is_empty() {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: "gate with no inputs".into(),
                });
            }
            gate_lines.push(GateLine {
                line_no,
                out,
                op,
                ins,
            });
        } else {
            return Err(NetlistError::Parse {
                line: line_no,
                message: format!("unrecognized statement {line:?}"),
            });
        }
    }

    // Create all gate output nets up front so forward references resolve;
    // the map covers both inputs and gate outputs.
    let mut nets: HashMap<String, NetId> = nl
        .inputs()
        .iter()
        .map(|&i| (nl.net(i).name().expect("named").to_string(), i))
        .collect();
    for gl in &gate_lines {
        if nets.contains_key(gl.out) {
            return Err(NetlistError::MultipleDrivers(
                NetRef::new(design_name, gl.out).at_line(gl.line_no as u32),
            ));
        }
        let id = nl.add_named_net(gl.out);
        nl.set_src_line(id, gl.line_no as u32);
        nets.insert(gl.out.to_string(), id);
    }
    // Wire the gates.
    for gl in &gate_lines {
        let out = nets[gl.out];
        let mut ins = Vec::with_capacity(gl.ins.len());
        for name in &gl.ins {
            let id = nets
                .get(*name)
                .copied()
                .ok_or_else(|| NetlistError::Parse {
                    line: gl.line_no,
                    message: format!("undefined signal {name:?}"),
                })?;
            ins.push(id);
        }
        nl.add_gate_driving(GateKind::Prim(gl.op), &ins, out)?;
    }
    for (line_no, name) in outputs {
        let id = nets.get(name).copied().ok_or(NetlistError::Parse {
            line: line_no,
            message: format!("OUTPUT references undefined signal {name:?}"),
        })?;
        nl.mark_output(id);
    }
    nl.validate()?;
    Ok(nl)
}

fn strip_parens(s: &str, line: usize) -> Result<&str, NetlistError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('(')
        .and_then(|x| x.strip_suffix(')'))
        .ok_or_else(|| NetlistError::Parse {
            line,
            message: "expected parenthesized name".into(),
        })?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Err(NetlistError::Parse {
            line,
            message: "empty name".into(),
        });
    }
    Ok(inner)
}

/// Serializes a primitive-gate netlist back to `.bench` text.
///
/// # Panics
///
/// Panics if the netlist contains [`GateKind::Cell`] instances (mapped
/// netlists have no `.bench` representation).
pub fn write(nl: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", nl.name()));
    for &i in nl.inputs() {
        out.push_str(&format!("INPUT({})\n", nl.net_label(i)));
    }
    for &o in nl.outputs() {
        out.push_str(&format!("OUTPUT({})\n", nl.net_label(o)));
    }
    out.push('\n');
    for g in nl.topo_gates() {
        let gate = nl.gate(g);
        let op = match gate.kind() {
            GateKind::Prim(op) => op,
            GateKind::Cell(_) => panic!("cannot write a mapped netlist as .bench"),
        };
        let ins: Vec<String> = gate.inputs().iter().map(|&n| nl.net_label(n)).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            nl.net_label(gate.output()),
            op.keyword(),
            ins.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
# c17 — the canonical tiny ISCAS-85 circuit
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let nl = parse(C17, "c17").unwrap();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.num_gates(), 6);
        assert_eq!(nl.depth(), 3);
    }

    #[test]
    fn c17_logic_is_correct() {
        let nl = parse(C17, "c17").unwrap();
        // Inputs in declaration order: 1,2,3,6,7.
        for bits in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| bits & (1 << i) != 0).collect();
            let (i1, i2, i3, i6, i7) = (v[0], v[1], v[2], v[3], v[4]);
            let n10 = !(i1 && i3);
            let n11 = !(i3 && i6);
            let n16 = !(i2 && n11);
            let n19 = !(n11 && i7);
            let o22 = !(n10 && n16);
            let o23 = !(n16 && n19);
            assert_eq!(nl.eval_prim(&v), vec![o22, o23], "bits={bits:05b}");
        }
    }

    #[test]
    fn roundtrip_through_writer() {
        let nl = parse(C17, "c17").unwrap();
        let text = write(&nl);
        let back = parse(&text, "c17").unwrap();
        assert_eq!(back.num_gates(), nl.num_gates());
        assert_eq!(back.inputs().len(), nl.inputs().len());
        for bits in [0u32, 5, 13, 31] {
            let v: Vec<bool> = (0..5).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(back.eval_prim(&v), nl.eval_prim(&v));
        }
    }

    #[test]
    fn forward_references_resolve() {
        let nl = parse("INPUT(a)\nOUTPUT(z)\nz = NOT(m)\nm = BUF(a)\n", "fwd").unwrap();
        assert_eq!(nl.eval_prim(&[true]), vec![false]);
    }

    #[test]
    fn rejects_undefined_signal() {
        let err = parse("INPUT(a)\nOUTPUT(z)\nz = NOT(q)\n", "bad").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }), "{err}");
    }

    #[test]
    fn rejects_double_definition() {
        let err = parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = BUF(a)\n", "bad").unwrap_err();
        assert_eq!(
            err,
            NetlistError::MultipleDrivers(NetRef::new("bad", "z").at_line(4))
        );
        assert_eq!(err.to_string(), "net bad:z (line 4) has multiple drivers");
    }

    #[test]
    fn comments_and_case_are_tolerated() {
        let nl = parse("# hi\nINPUT(x) # inline\noutput(y)\ny = nand(x, x)\n", "t").unwrap();
        assert_eq!(nl.eval_prim(&[true]), vec![false]);
    }
}
