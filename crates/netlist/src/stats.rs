//! Summary statistics for netlists (used by reports and the repro harness).

use std::fmt;

use crate::{GateKind, Netlist};

/// Aggregate statistics of a netlist.
#[derive(Clone, Debug, PartialEq)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of gate instances.
    pub gates: usize,
    /// Number of nets.
    pub nets: usize,
    /// Logic depth in gate levels.
    pub depth: usize,
    /// Number of fanout stems (nets feeding more than one pin).
    pub stems: usize,
    /// Maximum fanout over all nets.
    pub max_fanout: usize,
    /// Number of library-cell (mapped) gates; the rest are primitives.
    pub cell_gates: usize,
}

impl NetlistStats {
    /// Computes statistics for `nl`.
    pub fn of(nl: &Netlist) -> Self {
        let mut stems = 0;
        let mut max_fanout = 0;
        for n in nl.net_ids() {
            let f = nl.net(n).fanout().len();
            if f > 1 {
                stems += 1;
            }
            max_fanout = max_fanout.max(f);
        }
        let cell_gates = nl
            .gate_ids()
            .filter(|&g| matches!(nl.gate(g).kind(), GateKind::Cell(_)))
            .count();
        NetlistStats {
            inputs: nl.inputs().len(),
            outputs: nl.outputs().len(),
            gates: nl.num_gates(),
            nets: nl.num_nets(),
            depth: nl.depth(),
            stems,
            max_fanout,
            cell_gates,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PI={} PO={} gates={} (mapped {}) nets={} depth={} stems={} maxFO={}",
            self.inputs,
            self.outputs,
            self.gates,
            self.cell_gates,
            self.nets,
            self.depth,
            self.stems,
            self.max_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, Netlist, PrimOp};

    #[test]
    fn stats_count_correctly() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[a, b], None)
            .unwrap();
        let y = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[a, x], None)
            .unwrap();
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[x, y], None)
            .unwrap();
        nl.mark_output(z);
        let s = NetlistStats::of(&nl);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 3);
        assert_eq!(s.depth, 3);
        assert_eq!(s.stems, 2); // a and x both feed two pins
        assert_eq!(s.max_fanout, 2);
        assert_eq!(s.cell_gates, 0);
        assert!(format!("{s}").contains("gates=3"));
    }
}
