//! Primitive Boolean operators used by raw (unmapped) netlists.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::NetlistError;

/// A primitive Boolean operator, as found in ISCAS-85 `.bench` files.
///
/// All operators except [`PrimOp::Not`] and [`PrimOp::Buf`] accept an
/// arbitrary fan-in of two or more.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimOp {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Inverted AND.
    Nand,
    /// Inverted OR.
    Nor,
    /// Inverter (fan-in exactly 1).
    Not,
    /// Buffer (fan-in exactly 1).
    Buf,
    /// Exclusive OR (odd parity).
    Xor,
    /// Inverted exclusive OR (even parity).
    Xnor,
}

impl PrimOp {
    /// All primitive operators, in a stable order.
    pub const ALL: [PrimOp; 8] = [
        PrimOp::And,
        PrimOp::Or,
        PrimOp::Nand,
        PrimOp::Nor,
        PrimOp::Not,
        PrimOp::Buf,
        PrimOp::Xor,
        PrimOp::Xnor,
    ];

    /// Evaluates the operator over the given input bits.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or if a single-input operator receives
    /// more than one input.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(!inputs.is_empty(), "primitive gate with no inputs");
        match self {
            PrimOp::And => inputs.iter().all(|&b| b),
            PrimOp::Or => inputs.iter().any(|&b| b),
            PrimOp::Nand => !inputs.iter().all(|&b| b),
            PrimOp::Nor => !inputs.iter().any(|&b| b),
            PrimOp::Not => {
                assert_eq!(inputs.len(), 1, "NOT takes exactly one input");
                !inputs[0]
            }
            PrimOp::Buf => {
                assert_eq!(inputs.len(), 1, "BUF takes exactly one input");
                inputs[0]
            }
            PrimOp::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            PrimOp::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
        }
    }

    /// Returns `true` for the two unary operators ([`PrimOp::Not`],
    /// [`PrimOp::Buf`]).
    pub fn is_unary(self) -> bool {
        matches!(self, PrimOp::Not | PrimOp::Buf)
    }

    /// Returns `true` if the operator inverts its "natural" polarity
    /// (NAND, NOR, NOT, XNOR).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            PrimOp::Nand | PrimOp::Nor | PrimOp::Not | PrimOp::Xnor
        )
    }

    /// The canonical upper-case `.bench` keyword for this operator.
    pub fn keyword(self) -> &'static str {
        match self {
            PrimOp::And => "AND",
            PrimOp::Or => "OR",
            PrimOp::Nand => "NAND",
            PrimOp::Nor => "NOR",
            PrimOp::Not => "NOT",
            PrimOp::Buf => "BUF",
            PrimOp::Xor => "XOR",
            PrimOp::Xnor => "XNOR",
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

impl FromStr for PrimOp {
    type Err = NetlistError;

    /// Parses a `.bench` keyword, case-insensitively. `BUFF` is accepted as
    /// an alias for `BUF` (both appear in published ISCAS files).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.to_ascii_uppercase();
        Ok(match up.as_str() {
            "AND" => PrimOp::And,
            "OR" => PrimOp::Or,
            "NAND" => PrimOp::Nand,
            "NOR" => PrimOp::Nor,
            "NOT" | "INV" => PrimOp::Not,
            "BUF" | "BUFF" => PrimOp::Buf,
            "XOR" => PrimOp::Xor,
            "XNOR" => PrimOp::Xnor,
            _ => return Err(NetlistError::UnknownOperator(s.to_string())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_truth_tables() {
        let cases: &[(PrimOp, &[bool], bool)] = &[
            (PrimOp::And, &[true, true, true], true),
            (PrimOp::And, &[true, false], false),
            (PrimOp::Or, &[false, false], false),
            (PrimOp::Or, &[false, true], true),
            (PrimOp::Nand, &[true, true], false),
            (PrimOp::Nor, &[false, false], true),
            (PrimOp::Not, &[true], false),
            (PrimOp::Buf, &[false], false),
            (PrimOp::Xor, &[true, true, true], true),
            (PrimOp::Xor, &[true, true], false),
            (PrimOp::Xnor, &[true, false], false),
        ];
        for &(op, ins, expect) in cases {
            assert_eq!(op.eval(ins), expect, "{op} {ins:?}");
        }
    }

    #[test]
    fn parse_roundtrip() {
        for op in PrimOp::ALL {
            assert_eq!(op.keyword().parse::<PrimOp>().unwrap(), op);
            assert_eq!(op.keyword().to_lowercase().parse::<PrimOp>().unwrap(), op);
        }
        assert_eq!("BUFF".parse::<PrimOp>().unwrap(), PrimOp::Buf);
        assert!("MAJ".parse::<PrimOp>().is_err());
    }

    #[test]
    #[should_panic(expected = "NOT takes exactly one input")]
    fn unary_arity_enforced() {
        PrimOp::Not.eval(&[true, false]);
    }
}
