//! Graphviz (`dot`) export of netlists, with optional highlighting of a
//! path's nodes — handy for debugging mappers, generators and reported
//! critical paths.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::{GateKind, NetId, Netlist};

/// Options for the dot rendering.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Nets to highlight (e.g. a critical path), drawn in bold red.
    pub highlight: Vec<NetId>,
    /// Resolves a cell id to a display name; primitives use their keyword.
    /// When absent, cells render as `cell<N>`.
    pub cell_names: Option<fn(crate::CellId) -> String>,
}

/// Renders the netlist as a Graphviz digraph. Gates are boxes, primary
/// inputs/outputs are ellipses.
pub fn to_dot(nl: &Netlist, opts: &DotOptions) -> String {
    let highlighted: HashSet<usize> = opts.highlight.iter().map(|n| n.index()).collect();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", nl.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for &pi in nl.inputs() {
        let style = if highlighted.contains(&pi.index()) {
            ", color=red, penwidth=2"
        } else {
            ""
        };
        let _ = writeln!(out, "  \"{}\" [shape=ellipse{style}];", nl.net_label(pi));
    }
    for g in nl.gate_ids() {
        let gate = nl.gate(g);
        let label = match gate.kind() {
            GateKind::Prim(op) => op.keyword().to_string(),
            GateKind::Cell(c) => match opts.cell_names {
                Some(f) => f(c),
                None => format!("{c}"),
            },
        };
        let out_net = gate.output();
        let node = format!("g{}", g.index());
        let style = if highlighted.contains(&out_net.index()) {
            ", color=red, penwidth=2"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  \"{node}\" [shape=box, label=\"{label}\\n{}\"{style}];",
            nl.net_label(out_net)
        );
        for &inp in gate.inputs() {
            let src = match nl.net(inp).driver() {
                None => format!("\"{}\"", nl.net_label(inp)),
                Some(d) => format!("\"g{}\"", d.index()),
            };
            let edge_style =
                if highlighted.contains(&inp.index()) && highlighted.contains(&out_net.index()) {
                    " [color=red, penwidth=2]"
                } else {
                    ""
                };
            let _ = writeln!(out, "  {src} -> \"{node}\"{edge_style};");
        }
    }
    for &po in nl.outputs() {
        let sink = format!("\"{}_out\"", nl.net_label(po));
        let _ = writeln!(
            out,
            "  {sink} [shape=ellipse, label=\"{}\"];",
            nl.net_label(po)
        );
        let src = match nl.net(po).driver() {
            None => format!("\"{}\"", nl.net_label(po)),
            Some(d) => format!("\"g{}\"", d.index()),
        };
        let _ = writeln!(out, "  {src} -> {sink};");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, Netlist, PrimOp};

    #[test]
    fn dot_export_mentions_every_gate_and_port() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[a, b], Some("x"))
            .unwrap();
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Not), &[x], Some("z"))
            .unwrap();
        nl.mark_output(z);
        let dot = to_dot(
            &nl,
            &DotOptions {
                highlight: vec![a, x, z],
                cell_names: None,
            },
        );
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("NAND"));
        assert!(dot.contains("NOT"));
        assert!(dot.contains("color=red"), "{dot}");
        assert_eq!(dot.matches("shape=box").count(), 2);
        // Two inputs + one output ellipse.
        assert_eq!(dot.matches("shape=ellipse").count(), 3);
    }
}
