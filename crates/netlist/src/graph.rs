//! The core netlist graph: nets, gates, builders and DAG utilities.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::{CellId, GateId, NetId, NetRef, NetlistError, PrimOp};

/// What a gate instance computes: a primitive operator or a library cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// A primitive Boolean operator (raw `.bench`-style netlists).
    Prim(PrimOp),
    /// An instance of a standard-cell type from an external library.
    Cell(CellId),
}

/// A reference to one input pin of one gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PinRef {
    /// The gate owning the pin.
    pub gate: GateId,
    /// Zero-based input pin position within the gate.
    pub pin: usize,
}

/// A gate instance: its kind, ordered input nets and single output net.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    kind: GateKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// The gate's function.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Ordered input nets.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The net this gate drives.
    #[inline]
    pub fn output(&self) -> NetId {
        self.output
    }

    /// Number of input pins.
    #[inline]
    pub fn fanin(&self) -> usize {
        self.inputs.len()
    }

    /// Returns the pin position(s) at which `net` feeds this gate.
    pub fn pins_of(&self, net: NetId) -> impl Iterator<Item = usize> + '_ {
        self.inputs
            .iter()
            .enumerate()
            .filter(move |&(_, &n)| n == net)
            .map(|(i, _)| i)
    }
}

/// A net: a single-driver signal with a fan-out list.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    name: Option<String>,
    driver: Option<GateId>,
    fanout: Vec<PinRef>,
    is_input: bool,
    src_line: Option<u32>,
}

impl Net {
    /// Optional user-visible name.
    #[inline]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The gate driving this net, or `None` for primary inputs.
    #[inline]
    pub fn driver(&self) -> Option<GateId> {
        self.driver
    }

    /// The gate input pins this net feeds.
    #[inline]
    pub fn fanout(&self) -> &[PinRef] {
        &self.fanout
    }

    /// Whether this net is a primary input.
    #[inline]
    pub fn is_input(&self) -> bool {
        self.is_input
    }

    /// Whether the net is a fanout stem (feeds more than one pin).
    #[inline]
    pub fn is_stem(&self) -> bool {
        self.fanout.len() > 1
    }

    /// The 1-based source line the net was declared on, when the netlist
    /// came from a text format whose parser recorded it.
    #[inline]
    pub fn src_line(&self) -> Option<u32> {
        self.src_line
    }
}

/// A combinational gate-level netlist.
///
/// Nets are single-driver; primary inputs are undriven nets; primary outputs
/// are an ordered list of nets. The structure is add-only in size — gates and
/// nets cannot be removed (rebuild instead) — but existing gates support two
/// in-place ECO edits: [`Netlist::set_gate_kind`] (cell swap/resize keeps the
/// pin wiring) and [`Netlist::rewire_pin`] (reconnects one input pin with
/// fanout-list maintenance and a cycle check).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    #[serde(skip)]
    name_index: HashMap<String, NetId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The design name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design (generators build under descriptive names and
    /// catalogs expose benchmark aliases).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nets (including primary inputs).
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of gate instances.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Primary input nets, in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in declaration order.
    #[inline]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Immutable access to a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Immutable access to a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl ExactSizeIterator<Item = NetId> {
        (0..self.nets.len()).map(NetId::from_index)
    }

    /// Iterates over all gate ids.
    pub fn gate_ids(&self) -> impl ExactSizeIterator<Item = GateId> {
        (0..self.gates.len()).map(GateId::from_index)
    }

    /// Looks a net up by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.name_index.get(name).copied()
    }

    /// A printable name for a net: its declared name, or `n<index>`.
    pub fn net_label(&self, id: NetId) -> String {
        self.net(id)
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("{id}"))
    }

    /// A diagnostic location for a net: `design:net`, with the declaring
    /// source line when a parser recorded one.
    pub fn net_ref(&self, id: NetId) -> NetRef {
        let mut r = NetRef::new(self.name.clone(), self.net_label(id));
        r.line = self.net(id).src_line;
        r
    }

    /// Records the 1-based source line a net was declared on (parsers call
    /// this so later diagnostics can point back into the source text).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_src_line(&mut self, id: NetId, line: u32) {
        self.nets[id.index()].src_line = Some(line);
    }

    /// Adds a primary input net.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken (inputs are created by generators
    /// and parsers which control their namespaces; a duplicate is a logic
    /// error there).
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let id = self.new_net(Some(name), true);
        self.inputs.push(id);
        id
    }

    /// Adds an anonymous internal net (to be driven by a later gate).
    pub fn add_net(&mut self) -> NetId {
        self.new_net(None, false)
    }

    /// Adds a named internal net (to be driven by a later gate).
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_named_net(&mut self, name: impl Into<String>) -> NetId {
        self.new_net(Some(name.into()), false)
    }

    fn new_net(&mut self, name: Option<String>, is_input: bool) -> NetId {
        let id = NetId::from_index(self.nets.len());
        if let Some(ref n) = name {
            let prev = self.name_index.insert(n.clone(), id);
            assert!(prev.is_none(), "duplicate net name {n:?}");
        }
        self.nets.push(Net {
            name,
            driver: None,
            fanout: Vec::new(),
            is_input,
            src_line: None,
        });
        id
    }

    /// Adds a gate driving a fresh net and returns that output net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the fan-in is invalid for the
    /// kind (empty, or ≠ 1 for unary primitives).
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output_name: Option<&str>,
    ) -> Result<NetId, NetlistError> {
        let out = match output_name {
            Some(n) => self.add_named_net(n),
            None => self.add_net(),
        };
        self.add_gate_driving(kind, inputs, out)?;
        Ok(out)
    }

    /// Adds a gate that drives an existing (so far undriven) net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] for an invalid fan-in and
    /// [`NetlistError::MultipleDrivers`] if `output` is already driven or is
    /// a primary input.
    pub fn add_gate_driving(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId, NetlistError> {
        let arity_ok = match kind {
            GateKind::Prim(op) if op.is_unary() => inputs.len() == 1,
            _ => !inputs.is_empty(),
        };
        if !arity_ok {
            return Err(NetlistError::BadArity {
                gate: format!("{kind:?}"),
                got: inputs.len(),
            });
        }
        {
            let net = &self.nets[output.index()];
            if net.driver.is_some() || net.is_input {
                return Err(NetlistError::MultipleDrivers(self.net_ref(output)));
            }
        }
        let gid = GateId::from_index(self.gates.len());
        for (pin, &inp) in inputs.iter().enumerate() {
            self.nets[inp.index()]
                .fanout
                .push(PinRef { gate: gid, pin });
        }
        self.nets[output.index()].driver = Some(gid);
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        Ok(gid)
    }

    /// Replaces the function of an existing gate, keeping its input pins
    /// and output net unchanged (ECO cell swap / drive resize).
    ///
    /// The graph structure is untouched, so no re-validation is needed;
    /// arity compatibility between the new kind and the existing pin count
    /// is the caller's obligation (`sta-circuits::transforms` checks it
    /// against the cell library).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range.
    pub fn set_gate_kind(&mut self, gate: GateId, kind: GateKind) {
        self.gates[gate.index()].kind = kind;
    }

    /// Reconnects input pin `pin` of `gate` to `new_net` (ECO rewire).
    ///
    /// The old net's fanout list drops the pin, the new net's gains it, and
    /// the edit is rejected — and fully rolled back — if it would create a
    /// combinational cycle. Rewiring a pin to the net it already reads is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if `pin` is out of range for the
    /// gate and [`NetlistError::Cycle`] if the reconnection would make the
    /// gate graph cyclic.
    ///
    /// # Panics
    ///
    /// Panics if `gate` or `new_net` is out of range.
    pub fn rewire_pin(
        &mut self,
        gate: GateId,
        pin: usize,
        new_net: NetId,
    ) -> Result<(), NetlistError> {
        assert!(new_net.index() < self.nets.len(), "net id out of range");
        let old_net = match self.gates[gate.index()].inputs.get(pin) {
            Some(&n) => n,
            None => {
                return Err(NetlistError::BadArity {
                    gate: format!("{:?}", self.gates[gate.index()].kind),
                    got: pin,
                })
            }
        };
        if old_net == new_net {
            return Ok(());
        }
        let pr = PinRef { gate, pin };
        self.nets[old_net.index()].fanout.retain(|p| *p != pr);
        self.nets[new_net.index()].fanout.push(pr);
        self.gates[gate.index()].inputs[pin] = new_net;
        // Cycle check: Kahn's order covers every gate iff the graph is
        // still acyclic. Roll the edit back on failure so the netlist is
        // never left in a broken state.
        if self.topo_gates().len() != self.gates.len() {
            self.nets[new_net.index()].fanout.retain(|p| *p != pr);
            self.nets[old_net.index()].fanout.push(pr);
            self.gates[gate.index()].inputs[pin] = old_net;
            return Err(NetlistError::Cycle(
                self.net_ref(self.gates[gate.index()].output),
            ));
        }
        Ok(())
    }

    /// Declares a net as a primary output. A net may be declared at most
    /// once; repeated declarations are ignored.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Checks structural sanity: every non-input net is driven, and the
    /// gate graph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Undriven`] or [`NetlistError::Cycle`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        for id in self.net_ids() {
            let net = self.net(id);
            if !net.is_input && net.driver.is_none() {
                return Err(NetlistError::Undriven(self.net_ref(id)));
            }
        }
        // Kahn's algorithm over gates; leftover in-degree means a cycle.
        let order = self.topo_gates();
        if order.len() != self.gates.len() {
            let in_order: Vec<bool> = {
                let mut v = vec![false; self.gates.len()];
                for g in &order {
                    v[g.index()] = true;
                }
                v
            };
            let culprit = self
                .gate_ids()
                .find(|g| !in_order[g.index()])
                .expect("some gate must be outside the order");
            return Err(NetlistError::Cycle(
                self.net_ref(self.gate(culprit).output()),
            ));
        }
        Ok(())
    }

    /// Returns the gates in topological order (inputs before users).
    ///
    /// If the netlist contains a cycle the returned order is partial; use
    /// [`Netlist::validate`] to detect that case.
    pub fn topo_gates(&self) -> Vec<GateId> {
        let mut indeg: Vec<usize> = self
            .gates
            .iter()
            .map(|g| {
                g.inputs
                    .iter()
                    .filter(|n| self.net(**n).driver.is_some())
                    .count()
            })
            .collect();
        let mut ready: Vec<GateId> = self.gate_ids().filter(|g| indeg[g.index()] == 0).collect();
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(g) = ready.pop() {
            order.push(g);
            let out = self.gate(g).output();
            for pr in self.net(out).fanout() {
                let d = &mut indeg[pr.gate.index()];
                *d -= 1;
                if *d == 0 {
                    ready.push(pr.gate);
                }
            }
        }
        order
    }

    /// Computes per-net logic levels: primary inputs are level 0, every
    /// other net is 1 + the maximum level of its driver's inputs.
    ///
    /// Nets on combinational cycles keep level `usize::MAX`; validate first.
    pub fn levelize(&self) -> Vec<usize> {
        let mut level = vec![usize::MAX; self.nets.len()];
        for &i in &self.inputs {
            level[i.index()] = 0;
        }
        for g in self.topo_gates() {
            let gate = self.gate(g);
            let max_in = gate
                .inputs()
                .iter()
                .map(|n| level[n.index()])
                .max()
                .unwrap_or(0);
            if max_in != usize::MAX {
                level[gate.output().index()] = max_in + 1;
            }
        }
        level
    }

    /// The logic depth: maximum level over primary outputs (0 for an empty
    /// or input-only netlist).
    pub fn depth(&self) -> usize {
        let levels = self.levelize();
        self.outputs
            .iter()
            .map(|o| levels[o.index()])
            .filter(|&l| l != usize::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the netlist on a Boolean input assignment.
    ///
    /// Only valid for netlists whose gates are all primitives; mapped
    /// netlists are evaluated through the cell library instead (see
    /// `sta-cells`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != self.inputs().len()`, if the netlist
    /// has a cycle, or if a gate is a [`GateKind::Cell`].
    pub fn eval_prim(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(
            assignment.len(),
            self.inputs.len(),
            "assignment length must match the number of primary inputs"
        );
        let mut value = vec![false; self.nets.len()];
        for (&net, &v) in self.inputs.iter().zip(assignment) {
            value[net.index()] = v;
        }
        let order = self.topo_gates();
        assert_eq!(order.len(), self.gates.len(), "netlist has a cycle");
        let mut buf = Vec::new();
        for g in order {
            let gate = self.gate(g);
            let op = match gate.kind() {
                GateKind::Prim(op) => op,
                GateKind::Cell(_) => panic!("eval_prim on a mapped netlist"),
            };
            buf.clear();
            buf.extend(gate.inputs().iter().map(|n| value[n.index()]));
            value[gate.output().index()] = op.eval(&buf);
        }
        self.outputs.iter().map(|o| value[o.index()]).collect()
    }

    /// Rebuilds the name index after deserialization.
    ///
    /// `serde` skips the index; call this once on a deserialized netlist if
    /// name lookups are needed.
    pub fn rebuild_name_index(&mut self) {
        self.name_index.clear();
        for id in 0..self.nets.len() {
            if let Some(name) = self.nets[id].name.clone() {
                self.name_index.insert(name, NetId::from_index(id));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c17ish() -> Netlist {
        // A small reconvergent NAND network.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[a, b], Some("g1"))
            .unwrap();
        let g2 = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[b, c], Some("g2"))
            .unwrap();
        let g3 = nl
            .add_gate(GateKind::Prim(PrimOp::Nand), &[g1, g2], Some("g3"))
            .unwrap();
        nl.mark_output(g3);
        nl
    }

    #[test]
    fn build_and_validate() {
        let nl = c17ish();
        nl.validate().unwrap();
        assert_eq!(nl.num_gates(), 3);
        assert_eq!(nl.num_nets(), 6);
        assert_eq!(nl.depth(), 2);
    }

    #[test]
    fn fanout_lists_are_consistent() {
        let nl = c17ish();
        let b = nl.net_by_name("b").unwrap();
        // b feeds both first-level NANDs.
        assert_eq!(nl.net(b).fanout().len(), 2);
        assert!(nl.net(b).is_stem());
        for pr in nl.net(b).fanout() {
            assert_eq!(nl.gate(pr.gate).inputs()[pr.pin], b);
        }
    }

    #[test]
    fn eval_matches_nand_logic() {
        let nl = c17ish();
        // g3 = NAND(NAND(a,b), NAND(b,c))
        for bits in 0..8u32 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            // Written as nested NANDs to mirror the gate structure.
            #[allow(clippy::nonminimal_bool)]
            let expect = !(!(a && b) && !(b && c));
            assert_eq!(nl.eval_prim(&[a, b, c]), vec![expect]);
        }
    }

    #[test]
    fn undriven_net_is_rejected() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let dangling = nl.add_named_net("x");
        let g = nl
            .add_gate(GateKind::Prim(PrimOp::And), &[a, dangling], Some("g"))
            .unwrap();
        nl.mark_output(g);
        assert_eq!(
            nl.validate(),
            Err(NetlistError::Undriven(NetRef::new("bad", "x")))
        );
    }

    #[test]
    fn double_drive_is_rejected() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let x = nl.add_named_net("x");
        nl.add_gate_driving(GateKind::Prim(PrimOp::Not), &[a], x)
            .unwrap();
        let err = nl
            .add_gate_driving(GateKind::Prim(PrimOp::Buf), &[a], x)
            .unwrap_err();
        assert_eq!(err, NetlistError::MultipleDrivers(NetRef::new("bad", "x")));
    }

    #[test]
    fn cycle_is_detected() {
        let mut nl = Netlist::new("loop");
        let a = nl.add_input("a");
        let x = nl.add_named_net("x");
        let y = nl.add_named_net("y");
        nl.add_gate_driving(GateKind::Prim(PrimOp::And), &[a, y], x)
            .unwrap();
        nl.add_gate_driving(GateKind::Prim(PrimOp::Not), &[x], y)
            .unwrap();
        nl.mark_output(y);
        assert!(matches!(nl.validate(), Err(NetlistError::Cycle(_))));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = c17ish();
        let order = nl.topo_gates();
        let pos: Vec<usize> = {
            let mut v = vec![0; nl.num_gates()];
            for (i, g) in order.iter().enumerate() {
                v[g.index()] = i;
            }
            v
        };
        for g in nl.gate_ids() {
            for &inp in nl.gate(g).inputs() {
                if let Some(d) = nl.net(inp).driver() {
                    assert!(pos[d.index()] < pos[g.index()]);
                }
            }
        }
    }

    #[test]
    fn set_gate_kind_preserves_structure() {
        let mut nl = c17ish();
        let g1 = nl.net_by_name("g1").unwrap();
        let driver = nl.net(g1).driver().unwrap();
        nl.set_gate_kind(driver, GateKind::Prim(PrimOp::Nor));
        assert_eq!(nl.gate(driver).kind(), GateKind::Prim(PrimOp::Nor));
        nl.validate().unwrap();
        assert_eq!(nl.num_gates(), 3);
        // g3 = NAND(NOR(a,b), NAND(b,c))
        let expect = |a: bool, b: bool, c: bool| {
            let nor_ab = !(a || b);
            let nand_bc = !(b && c);
            !(nor_ab && nand_bc)
        };
        for bits in 0..8u32 {
            let (a, b, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            assert_eq!(nl.eval_prim(&[a, b, c]), vec![expect(a, b, c)]);
        }
    }

    #[test]
    fn rewire_pin_maintains_fanout_lists() {
        let mut nl = c17ish();
        let a = nl.net_by_name("a").unwrap();
        let c = nl.net_by_name("c").unwrap();
        let g1 = nl.net_by_name("g1").unwrap();
        let driver = nl.net(g1).driver().unwrap();
        // g1 = NAND(a, b) -> NAND(c, b)
        nl.rewire_pin(driver, 0, c).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.gate(driver).inputs()[0], c);
        assert!(nl.net(a).fanout().iter().all(|p| p.gate != driver));
        assert!(nl.net(c).fanout().contains(&PinRef {
            gate: driver,
            pin: 0
        }));
        for id in nl.net_ids() {
            for pr in nl.net(id).fanout() {
                assert_eq!(nl.gate(pr.gate).inputs()[pr.pin], id);
            }
        }
    }

    #[test]
    fn rewire_pin_rejects_cycles_and_rolls_back() {
        let mut nl = c17ish();
        let g1 = nl.net_by_name("g1").unwrap();
        let g3 = nl.net_by_name("g3").unwrap();
        let driver = nl.net(g1).driver().unwrap();
        let before = nl.clone();
        // Feeding g3 back into g1's first pin closes a loop.
        let err = nl.rewire_pin(driver, 0, g3).unwrap_err();
        assert!(matches!(err, NetlistError::Cycle(_)));
        assert_eq!(nl, before, "failed rewire must leave the netlist intact");
        // Out-of-range pin is a typed error, not a panic.
        assert!(matches!(
            nl.rewire_pin(driver, 7, g3),
            Err(NetlistError::BadArity { got: 7, .. })
        ));
        // Rewiring to the already-connected net is a no-op.
        let b = nl.net_by_name("b").unwrap();
        nl.rewire_pin(driver, 1, b).unwrap();
        assert_eq!(nl, before);
    }

    #[test]
    fn serde_roundtrip_with_name_index_rebuild() {
        let nl = c17ish();
        let json = serde_json::to_string(&nl).unwrap();
        let mut back: Netlist = serde_json::from_str(&json).unwrap();
        back.rebuild_name_index();
        assert_eq!(back.net_by_name("g3"), nl.net_by_name("g3"));
        assert_eq!(back.num_gates(), nl.num_gates());
    }
}
