//! Cone extraction: the transitive fan-in of a net as a standalone
//! netlist. Used to cut small reproducers out of big designs (debugging
//! mappers, inspecting a critical path's logic, shipping test cases).

use std::collections::HashMap;

use crate::{NetId, Netlist, NetlistError};

/// Extracts the fan-in cone of `roots` as a new netlist.
///
/// Nets with no driver inside the cone become primary inputs of the
/// extract; every root becomes a primary output. Net names are preserved.
///
/// # Errors
///
/// Propagates construction errors (none are expected for a valid source
/// netlist).
///
/// # Panics
///
/// Panics if a root id is out of range.
pub fn extract_cone(nl: &Netlist, roots: &[NetId]) -> Result<Netlist, NetlistError> {
    // Mark the cone.
    let mut in_cone = vec![false; nl.num_nets()];
    let mut stack: Vec<NetId> = roots.to_vec();
    while let Some(net) = stack.pop() {
        if in_cone[net.index()] {
            continue;
        }
        in_cone[net.index()] = true;
        if let Some(driver) = nl.net(net).driver() {
            for &inp in nl.gate(driver).inputs() {
                stack.push(inp);
            }
        }
    }
    let mut out = Netlist::new(format!("{}_cone", nl.name()));
    let mut newid: HashMap<NetId, NetId> = HashMap::new();
    // Inputs of the extract: cone nets without an in-cone driver.
    for net in nl.net_ids().filter(|n| in_cone[n.index()]) {
        if nl.net(net).driver().is_none() {
            newid.insert(net, out.add_input(nl.net_label(net)));
        }
    }
    // Gates in topological order.
    for g in nl.topo_gates() {
        let gate = nl.gate(g);
        if !in_cone[gate.output().index()] {
            continue;
        }
        let ins: Vec<NetId> = gate.inputs().iter().map(|n| newid[n]).collect();
        let id = out.add_gate(gate.kind(), &ins, Some(&nl.net_label(gate.output())))?;
        newid.insert(gate.output(), id);
    }
    for &r in roots {
        out.mark_output(newid[&r]);
    }
    out.validate()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, PrimOp};

    #[test]
    fn cone_keeps_only_the_fanin() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl
            .add_gate(GateKind::Prim(PrimOp::And), &[a, b], Some("x"))
            .unwrap();
        let y = nl
            .add_gate(GateKind::Prim(PrimOp::Or), &[b, c], Some("y"))
            .unwrap();
        let z = nl
            .add_gate(GateKind::Prim(PrimOp::Not), &[y], Some("z"))
            .unwrap();
        nl.mark_output(x);
        nl.mark_output(z);
        // Cone of x: only a, b, AND.
        let cone = extract_cone(&nl, &[x]).unwrap();
        assert_eq!(cone.num_gates(), 1);
        assert_eq!(cone.inputs().len(), 2);
        assert_eq!(cone.outputs().len(), 1);
        // Function preserved.
        for bits in 0..4u32 {
            let v = vec![bits & 1 != 0, bits & 2 != 0];
            assert_eq!(cone.eval_prim(&v), vec![v[0] && v[1]]);
        }
        // Cone of z keeps the OR/NOT chain but not the AND.
        let cone_z = extract_cone(&nl, &[z]).unwrap();
        assert_eq!(cone_z.num_gates(), 2);
        assert_eq!(cone_z.inputs().len(), 2); // b and c
    }

    #[test]
    fn multi_root_cone_unions() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl
            .add_gate(GateKind::Prim(PrimOp::Not), &[a], Some("x"))
            .unwrap();
        let y = nl
            .add_gate(GateKind::Prim(PrimOp::Not), &[b], Some("y"))
            .unwrap();
        nl.mark_output(x);
        nl.mark_output(y);
        let cone = extract_cone(&nl, &[x, y]).unwrap();
        assert_eq!(cone.num_gates(), 2);
        assert_eq!(cone.outputs().len(), 2);
    }
}
