//! Stage two of the two-step flow: post-hoc path sensitization with a
//! backtrack limit.
//!
//! This emulates the behaviour the paper attributes to the commercial
//! tool:
//!
//! * for each complex gate on the path it "assigns the vector whose
//!   justification is simpler" — vectors are tried in ascending order of
//!   required logic-1 side values and the first locally consistent one is
//!   *committed* (no revisiting of vector choices);
//! * the remaining justification search is bounded by a backtrack limit;
//!   exceeding it abandons the path ("Backtrack limited" in Table 6);
//! * when the committed vector choices turn out to be jointly
//!   unjustifiable, the path is declared **false** — which may be wrong,
//!   exactly the misidentification the paper measures ("#False paths").

use sta_cells::Library;
use sta_core::justify::{justify_filtered, JustifyBudget, JustifyOutcome};
use sta_core::path::PiValue;
use sta_core::BitsimFilter;
use sta_logic::{Dual, ImplicationEngine, Mask, TriVal, V9};
use sta_netlist::{GateKind, NetId, Netlist};

use crate::structural::StructuralPath;

/// Verdict of the baseline sensitization attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Classification {
    /// A sensitizing input vector was found.
    True,
    /// Declared false (no vector exists *under the committed choices* —
    /// possibly a misidentification).
    False,
    /// The backtrack limit was exceeded before a verdict.
    BacktrackLimited,
}

/// Outcome of sensitizing one structural path.
#[derive(Clone, Debug, PartialEq)]
pub struct SensitizationResult {
    /// The verdict.
    pub classification: Classification,
    /// The single committed vector index per arc (meaningful when
    /// classified true; the baseline never reports alternatives).
    pub chosen_vectors: Vec<usize>,
    /// Witness input vector when classified true.
    pub input_vector: Vec<PiValue>,
    /// Which launch polarities the witness supports.
    pub rise_ok: bool,
    /// See [`SensitizationResult::rise_ok`].
    pub fall_ok: bool,
    /// Backtracks spent.
    pub backtracks: u64,
}

/// Attempts to sensitize `path` with at most `backtrack_limit` backtracks.
///
/// # Panics
///
/// Panics if the path references unmapped gates.
pub fn sensitize_path(
    nl: &Netlist,
    lib: &Library,
    path: &StructuralPath,
    backtrack_limit: u64,
) -> SensitizationResult {
    sensitize_path_with(nl, lib, path, backtrack_limit, None)
}

/// [`sensitize_path`] with an optional bit-parallel justification
/// pre-filter (see `sta_core::bitsim`). The verdict, witness and
/// backtrack count are identical with or without the filter — it only
/// skips exact-engine work on candidates that provably conflict.
///
/// # Panics
///
/// Panics if the path references unmapped gates.
pub fn sensitize_path_with(
    nl: &Netlist,
    lib: &Library,
    path: &StructuralPath,
    backtrack_limit: u64,
    filter: Option<&mut BitsimFilter<'_>>,
) -> SensitizationResult {
    let mut eng = ImplicationEngine::new(nl, lib);
    eng.set_toggles(Some(sta_logic::toggle_analysis(nl, lib, path.source())));
    let mut mask = Mask::BOTH;
    let mut obligations: Vec<NetId> = Vec::new();
    let mut chosen = Vec::with_capacity(path.arcs.len());
    let failure = |class: Classification, backtracks: u64| SensitizationResult {
        classification: class,
        chosen_vectors: Vec::new(),
        input_vector: Vec::new(),
        rise_ok: false,
        fall_ok: false,
        backtracks,
    };

    let conflicts = eng.assign(path.source(), Dual::transition(false), mask);
    mask = mask.minus(conflicts);
    if !mask.any() {
        return failure(Classification::False, 0);
    }

    // Commit the easiest locally-consistent vector at each gate.
    for &(gate_id, pin) in &path.arcs {
        let cell_id = match nl.gate(gate_id).kind() {
            GateKind::Cell(c) => c,
            GateKind::Prim(op) => panic!("baseline on unmapped primitive {op}"),
        };
        let cell = lib.cell(cell_id);
        let mut candidates: Vec<usize> = (0..cell.vectors_of(pin).len()).collect();
        candidates.sort_by_key(|&v| cell.vectors_of(pin)[v].ones());
        let mut committed = None;
        for v in candidates {
            let sv = &cell.vectors_of(pin)[v];
            let mark = eng.mark();
            let mut alive = mask;
            let gate = nl.gate(gate_id);
            let mut assigned = Vec::new();
            for p in 0..gate.fanin() as u8 {
                if p == pin {
                    continue;
                }
                if let Some(val) = sv.side_value(p) {
                    let net = gate.inputs()[p as usize];
                    let conflicts = eng.assign(net, Dual::stable(val), alive);
                    alive = alive.minus(conflicts);
                    assigned.push(net);
                    if !alive.any() {
                        break;
                    }
                }
            }
            if alive.any() {
                committed = Some((v, alive, assigned));
                break;
            }
            eng.rollback(mark);
        }
        match committed {
            Some((v, alive, assigned)) => {
                chosen.push(v);
                mask = alive;
                obligations.extend(assigned);
            }
            None => return failure(Classification::False, 0),
        }
    }

    // Justify everything with the bounded budget.
    let mut budget = JustifyBudget::with_backtrack_limit(backtrack_limit);
    match justify_filtered(&mut eng, nl, obligations, mask, &mut budget, filter) {
        JustifyOutcome::Satisfied(m) => {
            let input_vector = nl
                .inputs()
                .iter()
                .map(|&pi| {
                    if pi == path.source() {
                        return PiValue::Transition;
                    }
                    let d = eng.value(pi);
                    let v = if m.r { d.r } else { d.f };
                    match (v.init(), v.fin()) {
                        (TriVal::X, TriVal::X) => PiValue::X,
                        _ if v == V9::S0 => PiValue::Zero,
                        _ if v == V9::S1 => PiValue::One,
                        (_, TriVal::Zero) => PiValue::Zero,
                        (_, TriVal::One) => PiValue::One,
                        _ => PiValue::X,
                    }
                })
                .collect();
            SensitizationResult {
                classification: Classification::True,
                chosen_vectors: chosen,
                input_vector,
                rise_ok: m.r,
                fall_ok: m.f,
                backtracks: budget.backtracks,
            }
        }
        JustifyOutcome::Unsatisfiable => failure(Classification::False, budget.backtracks),
        JustifyOutcome::BudgetExhausted => {
            failure(Classification::BacktrackLimited, budget.backtracks)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_netlist::{GateId, GateKind};

    fn path_of(_nl: &Netlist, nodes: Vec<NetId>, arcs: Vec<(GateId, u8)>) -> StructuralPath {
        StructuralPath {
            nodes,
            arcs,
            est_delay: 0.0,
        }
    }

    #[test]
    fn sensitizes_simple_and_gate() {
        let lib = Library::standard();
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_gate(GateKind::Cell(and2), &[a, b], None).unwrap();
        nl.mark_output(z);
        let g = nl.net(z).driver().unwrap();
        let p = path_of(&nl, vec![a, z], vec![(g, 0)]);
        let r = sensitize_path(&nl, &lib, &p, 1000);
        assert_eq!(r.classification, Classification::True);
        assert!(r.rise_ok && r.fall_ok);
        assert_eq!(r.input_vector[1], PiValue::One);
    }

    /// A genuinely false path is classified false.
    #[test]
    fn blocked_path_is_false() {
        let lib = Library::standard();
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let nor2 = lib.cell_by_name("NOR2").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let x = nl.add_gate(GateKind::Cell(and2), &[a, a], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(nor2), &[a, a], None).unwrap();
        let z = nl.add_gate(GateKind::Cell(and2), &[x, y], None).unwrap();
        nl.mark_output(z);
        let gx = nl.net(x).driver().unwrap();
        let gz = nl.net(z).driver().unwrap();
        let p = path_of(&nl, vec![a, x, z], vec![(gx, 0), (gz, 0)]);
        let r = sensitize_path(&nl, &lib, &p, 1000);
        assert_eq!(r.classification, Classification::False);
    }

    /// The baseline commits the *easiest* vector: for an AO22 entered
    /// through A it picks Case 1 (C=0, D=0) even though slower vectors
    /// exist — the misbehaviour the paper measures in Table 6.
    #[test]
    fn commits_easiest_vector() {
        let lib = Library::standard();
        let ao22 = lib.cell_by_name("AO22").unwrap().id();
        let mut nl = Netlist::new("t");
        let ins: Vec<_> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let z = nl.add_gate(GateKind::Cell(ao22), &ins, None).unwrap();
        nl.mark_output(z);
        let g = nl.net(z).driver().unwrap();
        let p = path_of(&nl, vec![ins[0], z], vec![(g, 0)]);
        let r = sensitize_path(&nl, &lib, &p, 1000);
        assert_eq!(r.classification, Classification::True);
        assert_eq!(r.chosen_vectors, vec![0], "Case 1 has the fewest ones");
    }

    /// With a zero backtrack limit, a path whose justification genuinely
    /// requires a retry is abandoned. Under unit propagation + MRV the
    /// scenario must branch: side requirements `x = p ⊕ q = 1` and
    /// `w = (p·q) + r = 1`, where the justifier branches on `w` first and
    /// its first minimal candidate (`p·q = 1` ⇒ `p = q = 1`) kills the
    /// XOR — only the retry (`r = 1`) survives.
    #[test]
    fn backtrack_limit_abandons() {
        let lib = Library::standard();
        let xor2 = lib.cell_by_name("XOR2").unwrap().id();
        let and2 = lib.cell_by_name("AND2").unwrap().id();
        let or2 = lib.cell_by_name("OR2").unwrap().id();
        let and3 = lib.cell_by_name("AND3").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let p = nl.add_input("p");
        let q = nl.add_input("q");
        let r = nl.add_input("r");
        let x = nl.add_gate(GateKind::Cell(xor2), &[p, q], None).unwrap();
        let t = nl.add_gate(GateKind::Cell(and2), &[p, q], None).unwrap();
        let w = nl.add_gate(GateKind::Cell(or2), &[t, r], None).unwrap();
        let z = nl.add_gate(GateKind::Cell(and3), &[a, x, w], None).unwrap();
        nl.mark_output(z);
        let gz = nl.net(z).driver().unwrap();
        let path = path_of(&nl, vec![a, z], vec![(gz, 0)]);
        let res = sensitize_path(&nl, &lib, &path, 0);
        assert_eq!(res.classification, Classification::BacktrackLimited);
        let res = sensitize_path(&nl, &lib, &path, 1000);
        assert_eq!(res.classification, Classification::True);
        assert!(res.backtracks >= 1, "a retry was required");
    }
}
