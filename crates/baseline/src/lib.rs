//! Commercial-style two-step STA baseline — the comparison target of the
//! paper's Tables 6–9.
//!
//! Architecture (paper §I, §IV.B):
//!
//! 1. [`structural`] — enumerate the K longest *structural* paths with a
//!    vector-blind LUT delay estimate (no sensitization);
//! 2. [`sensitize`] — for each path, in delay order, attempt post-hoc
//!    sensitization: commit the *easiest* vector per complex gate and
//!    justify under a backtrack limit. Paths can be wrongly declared
//!    false, or abandoned at the limit;
//! 3. [`lutdelay`] — report the path delay from the reference-vector LUT,
//!    ignoring which vector actually sensitizes the path.
//!
//! All three deficiencies are deliberate — they are precisely what the
//! paper's single-pass vector-aware tool improves on.
//!
//! # Example
//!
//! ```no_run
//! use sta_baseline::{run_baseline, BaselineConfig};
//! use sta_cells::{Library, Technology};
//! use sta_charlib::{characterize, CharConfig};
//! # fn netlist() -> sta_netlist::Netlist { unimplemented!() }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Library::standard();
//! let tech = Technology::n130();
//! let tlib = characterize(&lib, &tech, &CharConfig::standard())?;
//! let nl = netlist();
//! let report = run_baseline(&nl, &lib, &tlib, &BaselineConfig::new(1000, 1000));
//! println!(
//!     "true {} / false {} / abandoned {}",
//!     report.num_true, report.num_false, report.num_backtrack_limited
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lutdelay;
pub mod sensitize;
pub mod structural;

pub use lutdelay::{lut_path_delay, LutPathDelay};
pub use sensitize::{sensitize_path, sensitize_path_with, Classification, SensitizationResult};
pub use structural::{k_longest, lut_gate_bounds, StructuralPath};

use sta_cells::{Edge, Library};
use sta_charlib::TimingLibrary;
use sta_netlist::Netlist;

/// Baseline run configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaselineConfig {
    /// Number of structural paths to explore (the "#Paths" column).
    pub k_paths: usize,
    /// Backtrack limit of the sensitization stage.
    pub backtrack_limit: u64,
    /// Input transition time at the PIs, in tenths of ps (stored as an
    /// integer to keep the config `Eq`; 600 = 60.0 ps).
    pub input_slew_tenths: u32,
    /// Pre-filter justification candidates through the 64-lane
    /// bit-parallel simulation (see `sta_core::bitsim`). Verdicts and
    /// witnesses are identical either way.
    pub bitsim: bool,
}

impl BaselineConfig {
    /// Creates a configuration with the default 60 ps input slew.
    pub fn new(k_paths: usize, backtrack_limit: u64) -> Self {
        BaselineConfig {
            k_paths,
            backtrack_limit,
            input_slew_tenths: 600,
            bitsim: true,
        }
    }

    /// Enables or disables the bit-parallel justification pre-filter (on
    /// by default). Never changes any verdict.
    pub fn with_bitsim(mut self, on: bool) -> Self {
        self.bitsim = on;
        self
    }

    /// The input slew in ps.
    pub fn input_slew(&self) -> f64 {
        f64::from(self.input_slew_tenths) / 10.0
    }
}

/// Verdict and timing of one explored structural path.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselinePathReport {
    /// The structural path.
    pub path: StructuralPath,
    /// Sensitization verdict and (single) witness.
    pub sens: SensitizationResult,
    /// LUT delay under a rising launch, ps.
    pub delay_rise: f64,
    /// LUT delay under a falling launch, ps.
    pub delay_fall: f64,
}

impl BaselinePathReport {
    /// The worst LUT delay over both launches.
    pub fn worst_delay(&self) -> f64 {
        self.delay_rise.max(self.delay_fall)
    }
}

/// Aggregate result of a baseline run.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineReport {
    /// Per-path verdicts, in exploration (descending-estimate) order.
    pub paths: Vec<BaselinePathReport>,
    /// Paths classified true.
    pub num_true: usize,
    /// Paths declared false.
    pub num_false: usize,
    /// Paths abandoned at the backtrack limit.
    pub num_backtrack_limited: usize,
}

impl BaselineReport {
    /// The paper's "False path ratio": paths without a found vector
    /// (false + abandoned) over all explored paths.
    pub fn false_path_ratio(&self) -> f64 {
        if self.paths.is_empty() {
            return 0.0;
        }
        (self.num_false + self.num_backtrack_limited) as f64 / self.paths.len() as f64
    }
}

/// Runs the full two-step baseline flow.
///
/// # Panics
///
/// Panics if the netlist is not technology-mapped or has a cycle.
pub fn run_baseline(
    nl: &Netlist,
    lib: &Library,
    tlib: &TimingLibrary,
    cfg: &BaselineConfig,
) -> BaselineReport {
    let structural = k_longest(nl, tlib, cfg.k_paths, cfg.input_slew());
    let mut paths = Vec::with_capacity(structural.len());
    let (mut num_true, mut num_false, mut num_backtrack_limited) = (0, 0, 0);
    // One compiled program and one filter reused across every path.
    let schedule = cfg.bitsim.then(|| sta_logic::Schedule::compile(nl, lib));
    let mut filter = schedule.as_ref().map(sta_core::BitsimFilter::new);
    for path in structural {
        let sens = sensitize_path_with(nl, lib, &path, cfg.backtrack_limit, filter.as_mut());
        match sens.classification {
            Classification::True => num_true += 1,
            Classification::False => num_false += 1,
            Classification::BacktrackLimited => num_backtrack_limited += 1,
        }
        let delay_rise = lut_path_delay(nl, tlib, &path, Edge::Rise, cfg.input_slew()).total;
        let delay_fall = lut_path_delay(nl, tlib, &path, Edge::Fall, cfg.input_slew()).total;
        paths.push(BaselinePathReport {
            path,
            sens,
            delay_rise,
            delay_fall,
        });
    }
    BaselineReport {
        paths,
        num_true,
        num_false,
        num_backtrack_limited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::Technology;
    use sta_charlib::{characterize, CharConfig};
    use sta_netlist::GateKind;

    #[test]
    fn full_flow_on_small_circuit() {
        let lib = Library::standard();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let ao22 = lib.cell_by_name("AO22").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let x = nl.add_gate(GateKind::Cell(nand2), &[a, b], None).unwrap();
        let y = nl
            .add_gate(GateKind::Cell(ao22), &[x, b, c, d], None)
            .unwrap();
        nl.mark_output(y);
        let report = run_baseline(&nl, &lib, &tlib, &BaselineConfig::new(100, 1000));
        assert!(!report.paths.is_empty());
        assert_eq!(
            report.num_true + report.num_false + report.num_backtrack_limited,
            report.paths.len()
        );
        assert!(report.num_true > 0);
        // Every true path has exactly one committed vector per arc.
        for p in &report.paths {
            if p.sens.classification == Classification::True {
                assert_eq!(p.sens.chosen_vectors.len(), p.path.arcs.len());
                assert!(p.worst_delay() > 0.0);
            }
        }
        assert!(report.false_path_ratio() >= 0.0);
    }
}
