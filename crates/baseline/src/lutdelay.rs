//! LUT-based path delay calculation — the baseline's delay engine.
//!
//! Vector-blind by construction: every pin uses its single reference-vector
//! table regardless of which sensitization vector is actually in force,
//! and the tables only exist at the nominal corner. Both properties match
//! the commercial model the paper compares against.

use sta_cells::Edge;
use sta_charlib::TimingLibrary;
use sta_netlist::{GateKind, Netlist};

use crate::structural::StructuralPath;

/// Per-gate breakdown of a LUT path delay.
#[derive(Clone, Debug, PartialEq)]
pub struct LutPathDelay {
    /// The launch edge.
    pub launch: Edge,
    /// (delay, output slew) per gate, ps.
    pub stages: Vec<(f64, f64)>,
    /// Total path delay, ps.
    pub total: f64,
    /// Edge at the endpoint (according to the reference-vector
    /// polarities).
    pub final_edge: Edge,
}

/// Computes the LUT delay of a structural path with slew propagation.
///
/// # Panics
///
/// Panics if the path references unmapped gates.
pub fn lut_path_delay(
    nl: &Netlist,
    tlib: &TimingLibrary,
    path: &StructuralPath,
    launch: Edge,
    input_slew: f64,
) -> LutPathDelay {
    let mut stages = Vec::with_capacity(path.arcs.len());
    let mut edge = launch;
    let mut slew = input_slew;
    let mut total = 0.0;
    for &(gate_id, pin) in &path.arcs {
        let gate = nl.gate(gate_id);
        let cell = match gate.kind() {
            GateKind::Cell(c) => c,
            GateKind::Prim(op) => panic!("baseline on unmapped primitive {op}"),
        };
        let fo = tlib.equivalent_fanout(nl, gate.output(), cell);
        let (d, s) = tlib.lut_delay_slew(cell, pin, edge, fo, slew);
        let d = d.max(0.1);
        let s = s.max(0.5);
        stages.push((d, s));
        total += d;
        slew = s;
        edge = edge.through(tlib.cell(cell).lut(pin).polarity);
    }
    LutPathDelay {
        launch,
        stages,
        total,
        final_edge: edge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::{Library, Technology};
    use sta_charlib::{characterize, CharConfig};
    use sta_netlist::GateKind;

    #[test]
    fn lut_delay_accumulates_with_slew() {
        let lib = Library::standard();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let inv = lib.cell_by_name("INV").unwrap().id();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let x = nl.add_gate(GateKind::Cell(inv), &[a], None).unwrap();
        let y = nl.add_gate(GateKind::Cell(inv), &[x], None).unwrap();
        nl.mark_output(y);
        let gx = nl.net(x).driver().unwrap();
        let gy = nl.net(y).driver().unwrap();
        let p = StructuralPath {
            nodes: vec![a, x, y],
            arcs: vec![(gx, 0), (gy, 0)],
            est_delay: 0.0,
        };
        let d = lut_path_delay(&nl, &tlib, &p, Edge::Rise, 60.0);
        assert_eq!(d.stages.len(), 2);
        let sum: f64 = d.stages.iter().map(|s| s.0).sum();
        assert!((sum - d.total).abs() < 1e-9);
        assert_eq!(d.final_edge, Edge::Rise); // two inversions
        assert!(d.total > 0.0);
    }
}
