//! Stage one of the two-step commercial flow: K-longest *structural* path
//! enumeration, with no sensitization check (paper §I/§IV.B: "first look
//! for structural paths and compute their delay").

use sta_cells::Edge;
use sta_charlib::TimingLibrary;
use sta_netlist::{GateId, GateKind, NetId, Netlist};

/// A structural path: a gate sequence with a vector-blind delay estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct StructuralPath {
    /// Nets from source PI to endpoint PO.
    pub nodes: Vec<NetId>,
    /// Traversed (gate, input pin) pairs.
    pub arcs: Vec<(GateId, u8)>,
    /// LUT-based delay estimate used for ranking, ps.
    pub est_delay: f64,
}

impl StructuralPath {
    /// The source PI.
    pub fn source(&self) -> NetId {
        self.nodes[0]
    }

    /// The endpoint.
    pub fn endpoint(&self) -> NetId {
        *self.nodes.last().expect("non-empty path")
    }
}

/// Per-gate worst LUT delay (max over pins and edges) at the given input
/// slew and the gate's real fanout load.
pub fn lut_gate_bounds(nl: &Netlist, tlib: &TimingLibrary, default_slew: f64) -> Vec<f64> {
    nl.gate_ids()
        .map(|g| {
            let gate = nl.gate(g);
            let cell = match gate.kind() {
                GateKind::Cell(c) => c,
                GateKind::Prim(op) => panic!("baseline on unmapped primitive {op}"),
            };
            let fo = tlib.equivalent_fanout(nl, gate.output(), cell);
            let mut worst: f64 = 0.0;
            for pin in 0..gate.fanin() as u8 {
                for edge in Edge::BOTH {
                    let (d, _) = tlib.lut_delay_slew(cell, pin, edge, fo, default_slew);
                    worst = worst.max(d);
                }
            }
            worst
        })
        .collect()
}

/// Enumerates the K longest structural paths by estimated delay,
/// descending. Uses depth-first search pruned against the current K-th
/// best with a static remaining-delay bound — the classic first stage of
/// a two-step timer.
pub fn k_longest(
    nl: &Netlist,
    tlib: &TimingLibrary,
    k: usize,
    default_slew: f64,
) -> Vec<StructuralPath> {
    assert!(k > 0, "k must be positive");
    let bound = lut_gate_bounds(nl, tlib, default_slew);
    // remaining[net] = worst delay from net to any PO.
    let order = nl.topo_gates();
    assert_eq!(order.len(), nl.num_gates(), "netlist has a cycle");
    let mut remaining = vec![0.0_f64; nl.num_nets()];
    for &g in order.iter().rev() {
        let gate = nl.gate(g);
        let through = remaining[gate.output().index()] + bound[g.index()];
        for n in gate.inputs() {
            if through > remaining[n.index()] {
                remaining[n.index()] = through;
            }
        }
    }
    let mut collector = Collector {
        nl,
        bound: &bound,
        remaining: &remaining,
        k,
        found: Vec::new(),
        threshold: f64::NEG_INFINITY,
        nodes: Vec::new(),
        arcs: Vec::new(),
    };
    let is_output: Vec<bool> = {
        let mut v = vec![false; nl.num_nets()];
        for &o in nl.outputs() {
            v[o.index()] = true;
        }
        v
    };
    for &src in nl.inputs() {
        collector.dfs(src, 0.0, &is_output);
    }
    let mut found = collector.found;
    found.sort_by(|a, b| b.est_delay.total_cmp(&a.est_delay));
    found.truncate(k);
    found
}

struct Collector<'a> {
    nl: &'a Netlist,
    bound: &'a [f64],
    remaining: &'a [f64],
    k: usize,
    found: Vec<StructuralPath>,
    threshold: f64,
    nodes: Vec<NetId>,
    arcs: Vec<(GateId, u8)>,
}

impl Collector<'_> {
    fn dfs(&mut self, net: NetId, delay: f64, is_output: &[bool]) {
        if self.found.len() >= self.k && delay + self.remaining[net.index()] <= self.threshold {
            return;
        }
        self.nodes.push(net);
        if is_output[net.index()] && !self.arcs.is_empty() {
            self.record(delay);
        }
        let fanout: Vec<_> = self.nl.net(net).fanout().to_vec();
        for pr in fanout {
            let d = delay + self.bound[pr.gate.index()];
            self.arcs.push((pr.gate, pr.pin as u8));
            self.dfs(self.nl.gate(pr.gate).output(), d, is_output);
            self.arcs.pop();
        }
        self.nodes.pop();
    }

    fn record(&mut self, delay: f64) {
        if self.found.len() >= self.k && delay <= self.threshold {
            return;
        }
        self.found.push(StructuralPath {
            nodes: self.nodes.clone(),
            arcs: self.arcs.clone(),
            est_delay: delay,
        });
        if self.found.len() >= 2 * self.k {
            self.found
                .sort_by(|a, b| b.est_delay.total_cmp(&a.est_delay));
            self.found.truncate(self.k);
        }
        if self.found.len() >= self.k {
            let mut ds: Vec<f64> = self.found.iter().map(|p| p.est_delay).collect();
            ds.sort_by(f64::total_cmp);
            self.threshold = ds[ds.len() - self.k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_cells::{Library, Technology};
    use sta_charlib::{characterize, CharConfig};
    use sta_netlist::GateKind;

    fn diamond() -> (Netlist, Library) {
        // a → INV → NAND2 ┐
        //   └────────────→ NAND2 → z   (two structural paths from a)
        let lib = Library::standard();
        let inv = lib.cell_by_name("INV").unwrap().id();
        let nand2 = lib.cell_by_name("NAND2").unwrap().id();
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(GateKind::Cell(inv), &[a], None).unwrap();
        let z = nl.add_gate(GateKind::Cell(nand2), &[x, a], None).unwrap();
        let w = nl.add_gate(GateKind::Cell(nand2), &[z, b], None).unwrap();
        nl.mark_output(w);
        (nl, lib)
    }

    #[test]
    fn enumerates_all_structural_paths_in_order() {
        let (nl, lib) = diamond();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let paths = k_longest(&nl, &tlib, 10, 60.0);
        // Structural paths: a-x-z-w, a-z-w, b-w.
        assert_eq!(paths.len(), 3);
        // Sorted by descending estimate; the 3-gate path is the longest.
        assert!(paths[0].est_delay >= paths[1].est_delay);
        assert_eq!(paths[0].arcs.len(), 3);
        assert_eq!(paths[2].arcs.len(), 1);
    }

    #[test]
    fn k_truncates_to_longest() {
        let (nl, lib) = diamond();
        let tech = Technology::n90();
        let tlib = characterize(&lib, &tech, &CharConfig::fast()).unwrap();
        let all = k_longest(&nl, &tlib, 10, 60.0);
        let top = k_longest(&nl, &tlib, 2, 60.0);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].nodes, all[0].nodes);
        assert_eq!(top[1].nodes, all[1].nodes);
    }
}
