//! E5 (Table 6): technology-independent critical-path identification —
//! the developed single-pass tool versus the two-step baseline, per
//! benchmark circuit.

use std::collections::HashMap;
use std::time::Instant;

use sta_baseline::{run_baseline, BaselineConfig, Classification};
use sta_cells::{Corner, Technology};
use sta_core::{EnumerationConfig, PathEnumerator, TruePath};
use sta_netlist::NetId;

use crate::harness::{benchmark, library, render_table, timing_library};

/// Per-circuit knobs (the paper bounds some runs).
#[derive(Clone, Debug)]
pub struct Table6Config {
    /// Backtrack limit of the baseline.
    pub backtrack_limit: u64,
    /// Structural paths the baseline explores.
    pub k_paths: usize,
    /// Cap on the developed tool's emissions (`None` = enumerate all).
    pub max_paths: Option<usize>,
    /// Search-decision budget for the developed tool.
    pub max_decisions: u64,
    /// N-worst restriction for the developed tool on huge circuits.
    pub n_worst: Option<usize>,
    /// Skip the baseline stage entirely (the paper's own Table 6 leaves
    /// the commercial columns blank on c1355 — the two-step tool did not
    /// complete there, and the same parity-heavy justification hurts our
    /// baseline emulation).
    pub skip_baseline: bool,
}

impl Default for Table6Config {
    fn default() -> Self {
        Table6Config {
            backtrack_limit: 1000,
            k_paths: 1000,
            max_paths: Some(200_000),
            max_decisions: 50_000_000,
            n_worst: None,
            skip_baseline: false,
        }
    }
}

/// One Table 6 row.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Circuit name.
    pub circuit: String,
    /// Developed tool: sensitizing input vectors found (column 2).
    pub input_vectors: usize,
    /// Developed tool: structural paths with > 1 sensitization vector
    /// (column 3).
    pub multi_input_paths: usize,
    /// Developed tool: CPU seconds (column 4).
    pub dev_cpu_s: f64,
    /// Whether the developed run hit a budget.
    pub dev_truncated: bool,
    /// Baseline backtrack limit (column 5).
    pub backtrack_limit: u64,
    /// Baseline CPU seconds (column 6).
    pub base_cpu_s: f64,
    /// Baseline: structural paths explored (#Paths).
    pub base_paths: usize,
    /// Baseline: paths it sensitized (#True paths).
    pub base_true: usize,
    /// Baseline: paths it wrongly declared false — the developed tool
    /// found a vector for them (#False paths).
    pub base_false_wrong: usize,
    /// Baseline: paths abandoned at the backtrack limit.
    pub base_limited: usize,
    /// (false + limited) / explored (the "False path ratio").
    pub false_path_ratio: f64,
    /// Fraction of matched multi-vector paths where the baseline's single
    /// vector is the actual worst-delay vector.
    pub worst_delay_prediction_ratio: f64,
    /// Number of paths the prediction ratio was evaluated over.
    pub prediction_sample: usize,
}

/// Groups developed-tool emissions by structural path.
fn group_paths(paths: &[TruePath]) -> HashMap<Vec<NetId>, Vec<&TruePath>> {
    let mut groups: HashMap<Vec<NetId>, Vec<&TruePath>> = HashMap::new();
    for p in paths {
        groups.entry(p.structural_key()).or_default().push(p);
    }
    groups
}

/// Runs the Table 6 experiment on one circuit at one technology.
pub fn run_circuit(name: &str, tech: &Technology, cfg: &Table6Config) -> Table6Row {
    let lib = library();
    let tlib = timing_library(tech);
    let bench = benchmark(name);
    let nl = &bench.mapped;
    let corner = Corner::nominal(tech);

    // Developed tool.
    let mut ecfg = EnumerationConfig::new(corner);
    ecfg.max_paths = cfg.max_paths;
    ecfg.max_decisions = cfg.max_decisions;
    ecfg.n_worst = cfg.n_worst;
    let t0 = Instant::now();
    let (paths, stats) = PathEnumerator::new(nl, lib, tlib, ecfg).run();
    let dev_cpu_s = t0.elapsed().as_secs_f64();
    let groups = group_paths(&paths);
    let multi_input_paths = groups.values().filter(|g| g.len() > 1).count();

    // Baseline.
    if cfg.skip_baseline {
        return Table6Row {
            circuit: name.to_string(),
            input_vectors: stats.input_vectors,
            multi_input_paths,
            dev_cpu_s,
            dev_truncated: stats.truncated,
            backtrack_limit: cfg.backtrack_limit,
            base_cpu_s: f64::NAN,
            base_paths: 0,
            base_true: 0,
            base_false_wrong: 0,
            base_limited: 0,
            false_path_ratio: f64::NAN,
            worst_delay_prediction_ratio: f64::NAN,
            prediction_sample: 0,
        };
    }
    let t1 = Instant::now();
    let report = run_baseline(
        nl,
        lib,
        tlib,
        &BaselineConfig::new(cfg.k_paths, cfg.backtrack_limit),
    );
    let base_cpu_s = t1.elapsed().as_secs_f64();

    // Misidentified-false count: baseline said false but the developed
    // tool holds a sensitizing vector for the same structural path.
    let base_false_wrong = report
        .paths
        .iter()
        .filter(|bp| {
            bp.sens.classification == Classification::False && groups.contains_key(&bp.path.nodes)
        })
        .count();

    // Worst-delay-vector prediction: over baseline-true multi-vector
    // paths, does its committed vector match the developed tool's worst?
    let mut correct = 0usize;
    let mut sample = 0usize;
    for bp in &report.paths {
        if bp.sens.classification != Classification::True {
            continue;
        }
        let Some(group) = groups.get(&bp.path.nodes) else {
            continue;
        };
        if group.len() < 2 {
            continue;
        }
        sample += 1;
        let worst = group
            .iter()
            .max_by(|a, b| a.worst_arrival().total_cmp(&b.worst_arrival()))
            .expect("non-empty group");
        let worst_vectors: Vec<usize> = worst.arcs.iter().map(|a| a.vector).collect();
        if bp.sens.chosen_vectors == worst_vectors {
            correct += 1;
        }
    }
    let worst_delay_prediction_ratio = if sample == 0 {
        f64::NAN
    } else {
        correct as f64 / sample as f64
    };

    Table6Row {
        circuit: name.to_string(),
        input_vectors: stats.input_vectors,
        multi_input_paths,
        dev_cpu_s,
        dev_truncated: stats.truncated,
        backtrack_limit: cfg.backtrack_limit,
        base_cpu_s,
        base_paths: report.paths.len(),
        base_true: report.num_true,
        base_false_wrong,
        base_limited: report.num_backtrack_limited,
        false_path_ratio: report.false_path_ratio(),
        worst_delay_prediction_ratio,
        prediction_sample: sample,
    }
}

/// Renders Table 6 for a list of circuits.
pub fn render(circuits: &[(&str, Table6Config)], tech: &Technology) -> String {
    let rows: Vec<Table6Row> = circuits
        .iter()
        .map(|(name, cfg)| run_circuit(name, tech, cfg))
        .collect();
    render_rows(&rows)
}

/// Renders already-computed rows.
pub fn render_rows(rows: &[Table6Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.circuit.clone(),
                format!(
                    "{}{}",
                    r.input_vectors,
                    if r.dev_truncated { "*" } else { "" }
                ),
                r.multi_input_paths.to_string(),
                format!("{:.2}", r.dev_cpu_s),
                r.backtrack_limit.to_string(),
                if r.base_cpu_s.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.2}", r.base_cpu_s)
                },
                r.base_paths.to_string(),
                r.base_true.to_string(),
                r.base_false_wrong.to_string(),
                r.base_limited.to_string(),
                if r.false_path_ratio.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.1}%", r.false_path_ratio * 100.0)
                },
                if r.worst_delay_prediction_ratio.is_nan() {
                    "-".to_string()
                } else {
                    format!(
                        "{:.1}% ({})",
                        r.worst_delay_prediction_ratio * 100.0,
                        r.prediction_sample
                    )
                },
            ]
        })
        .collect();
    render_table(
        "Table 6: critical-path identification, developed tool vs commercial-style baseline\n\
         (* = developed-tool budget hit; prediction column shows sample size)",
        &[
            "Circuit",
            "InputVecs",
            "MultiPaths",
            "DevCPU(s)",
            "BTlimit",
            "BaseCPU(s)",
            "#Paths",
            "#True",
            "#False",
            "BTlimited",
            "FalseRatio",
            "WorstPred",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// On c17 (all NAND2s, single-vector arcs) both tools agree: every
    /// structural path is true, nothing is multi-vector.
    #[test]
    fn c17_row_matches_paper_shape() {
        let tech = Technology::n130();
        let row = run_circuit("c17", &tech, &Table6Config::default());
        // Paper: 8 paths for the commercial tool, all true, 0 false.
        assert_eq!(row.base_paths, 11, "c17 has 11 structural paths");
        assert_eq!(row.base_true, row.base_paths);
        assert_eq!(row.base_false_wrong, 0);
        assert_eq!(row.base_limited, 0);
        assert_eq!(row.multi_input_paths, 0, "NAND2-only circuit");
        assert!(!row.dev_truncated);
        // Dual-polarity tracing: 2 vectors per structural path.
        assert_eq!(row.input_vectors, 2 * row.base_paths);
    }

    /// The sample circuit's paths through the AO22 are multi-vector, and
    /// the baseline (committing the easiest vector) predicts the worst
    /// vector poorly.
    #[test]
    fn sample_circuit_exposes_baseline_weakness() {
        let tech = Technology::n130();
        let row = run_circuit("sample", &tech, &Table6Config::default());
        assert!(row.multi_input_paths >= 1);
        assert!(row.prediction_sample >= 1);
        assert!(
            row.worst_delay_prediction_ratio < 0.5,
            "easiest-vector commitment should miss most worst vectors, got {}",
            row.worst_delay_prediction_ratio
        );
    }
}
