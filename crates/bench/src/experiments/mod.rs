//! The per-table/figure experiment implementations (see DESIGN.md §3 for
//! the experiment index).
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`sens_tables`] | Tables 1–2, Figs. 2–3 |
//! | [`delay_tables`] | Tables 3–4 |
//! | [`table5`] | Fig. 4 + Table 5 |
//! | [`table6`] | Table 6 |
//! | [`errors`] | Tables 7–9 |
//! | [`ablation`] | §V.B polynomial-vs-LUT claim |

pub mod ablation;
pub mod delay_tables;
pub mod errors;
pub mod sens_tables;
pub mod table5;
pub mod table6;
