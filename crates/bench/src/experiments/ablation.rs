//! E9 (ablation, §V.B closing claim): "in all the cases studied the
//! polynomial model provides better delay estimations than the look-up
//! table model …, even using a first order model".
//!
//! The comparison the paper makes is against the *commercial* LUT, which
//! is characterized at a single reference sensitization vector. This
//! ablation therefore decomposes the error sources:
//!
//! * `poly_auto` / `poly_order1` — vector-specific polynomial models
//!   (auto-selected orders vs forced first order);
//! * `lut_ref` — a 4×4 LUT tabulated at the **reference (Case 1) vector**,
//!   exactly like the baseline's model (vector-blind);
//! * `lut_same` — the same 4×4 LUT tabulated at the **actual vector**
//!   (what a LUT could do if the format knew about vectors).
//!
//! All four are evaluated at off-grid operating points against golden
//! electrical simulation of the *actual* vector.

use sta_cells::{Corner, Edge, Technology};
use sta_charlib::poly::{PolyModel, Sample};
use sta_charlib::Lut2d;
use sta_esim::cellsim::{cell_input_cap, simulate_arc, Drive};

use crate::harness::{library, render_table};

/// Mean absolute percentage error of the model variants on one arc.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// `CELL/pin/case` label.
    pub arc: String,
    /// Whether the pin has more than one sensitization vector.
    pub multi_vector: bool,
    /// Auto-order vector-specific polynomial MAPE.
    pub poly_auto: f64,
    /// First-order vector-specific polynomial MAPE.
    pub poly_order1: f64,
    /// Reference-vector (baseline-style, vector-blind) 4×4 LUT MAPE.
    pub lut_ref: f64,
    /// Same-vector 4×4 LUT MAPE (interpolation error only).
    pub lut_same: f64,
    /// Coefficient counts (auto, order-1); both LUTs store 16 entries.
    pub coeffs: (usize, usize),
}

/// Runs the model ablation on a set of standard arcs at the given
/// technology.
pub fn run(tech: &Technology) -> Vec<AblationRow> {
    let lib = library();
    let corner = Corner::nominal(tech);
    // (cell, pin, 0-based vector index of the *actual* arc under study)
    let arcs: [(&str, u8, usize); 4] = [
        ("AO22", 0, 1),  // the paper's slow Case 2
        ("OA12", 2, 2),  // Case 3
        ("AOI21", 2, 1), // Case 2 of the C pin
        ("NAND3", 1, 0), // single-vector pin: pure interpolation contrast
    ];
    let fo_grid = [0.5, 1.0, 2.0, 4.0, 8.0];
    let tin_grid = [10.0, 30.0, 80.0, 200.0, 500.0];
    let lut_fo = vec![0.5, 2.0, 5.0, 8.0];
    let lut_tin = vec![10.0, 80.0, 250.0, 500.0];
    // Off-grid probe points.
    let probes = [
        (0.8, 22.0),
        (1.5, 55.0),
        (3.0, 140.0),
        (6.0, 320.0),
        (2.5, 45.0),
        (5.0, 95.0),
    ];
    let edge = Edge::Fall;
    let mut rows = Vec::new();
    for (cell_name, pin, case_idx) in arcs {
        let cell = lib.cell_by_name(cell_name).expect("standard cell");
        let vectors = cell.vectors_of(pin);
        let case_idx = case_idx.min(vectors.len() - 1);
        let actual = &vectors[case_idx];
        let reference = &vectors[0];
        let cin = cell_input_cap(cell, tech);
        let sim = |vector: &sta_cells::SensVector, fo: f64, tin: f64| -> f64 {
            simulate_arc(
                cell,
                tech,
                corner,
                vector,
                edge,
                Drive::Ramp { transition: tin },
                fo * cin,
            )
            .expect("arc simulates")
            .delay
        };
        // Vector-specific training data on the grid.
        let mut samples = Vec::new();
        for &fo in &fo_grid {
            for &tin in &tin_grid {
                samples.push(Sample {
                    fo,
                    t_in: tin,
                    temperature: corner.temperature,
                    vdd: corner.vdd,
                    value: sim(actual, fo, tin),
                });
            }
        }
        let poly_auto =
            PolyModel::fit_auto(&samples, [3, 3, 0, 0], 0.005).expect("grid is non-empty");
        let poly_o1 = PolyModel::fit(&samples, [1, 1, 0, 0]).expect("grid is non-empty");
        let lut_ref = Lut2d::tabulate(lut_fo.clone(), lut_tin.clone(), |fo, tin| {
            sim(reference, fo, tin)
        });
        let lut_same = Lut2d::tabulate(lut_fo.clone(), lut_tin.clone(), |fo, tin| {
            sim(actual, fo, tin)
        });
        // Probe off-grid against the actual vector's golden delay.
        let mut errs = [0.0f64; 4];
        for &(fo, tin) in &probes {
            let golden = sim(actual, fo, tin);
            let preds = [
                poly_auto.eval(fo, tin, corner.temperature, corner.vdd),
                poly_o1.eval(fo, tin, corner.temperature, corner.vdd),
                lut_ref.eval(fo, tin),
                lut_same.eval(fo, tin),
            ];
            for (e, p) in errs.iter_mut().zip(preds) {
                *e += ((p - golden) / golden).abs();
            }
        }
        let n = probes.len() as f64;
        rows.push(AblationRow {
            arc: format!(
                "{cell_name}/{}/case{}",
                sta_cells::func::pin_name(pin),
                case_idx + 1
            ),
            multi_vector: vectors.len() > 1,
            poly_auto: errs[0] / n,
            poly_order1: errs[1] / n,
            lut_ref: errs[2] / n,
            lut_same: errs[3] / n,
            coeffs: (poly_auto.num_coefficients(), poly_o1.num_coefficients()),
        });
    }
    rows
}

/// Renders the ablation report.
pub fn render(tech: &Technology) -> String {
    let rows = run(tech);
    let pct = |v: f64| format!("{:.2}%", v * 100.0);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.arc.clone(),
                pct(r.poly_auto),
                pct(r.poly_order1),
                pct(r.lut_ref),
                pct(r.lut_same),
                format!("{}/{}", r.coeffs.0, r.coeffs.1),
            ]
        })
        .collect();
    render_table(
        &format!(
            "Model ablation ({}): off-grid delay MAPE vs the actual vector's golden sim\n\
             (lut_ref = reference-vector LUT as the commercial baseline uses; lut_same = \
             hypothetical vector-aware LUT)",
            tech.name
        ),
        &[
            "Arc",
            "PolyAuto",
            "PolyOrder1",
            "LUTref4x4",
            "LUTsame4x4",
            "coeffs",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §V.B claim, in its actual context: the vector-specific
    /// polynomial model beats the commercial (reference-vector) LUT on
    /// multi-vector arcs — even at first order — because the LUT is blind
    /// to the vector in force.
    #[test]
    fn polynomial_beats_baseline_lut() {
        let rows = run(&Technology::n90());
        let multi: Vec<&AblationRow> = rows.iter().filter(|r| r.multi_vector).collect();
        assert!(!multi.is_empty());
        for r in &multi {
            assert!(
                r.poly_auto < r.lut_ref,
                "{}: auto {} vs lut_ref {}",
                r.arc,
                r.poly_auto,
                r.lut_ref
            );
            assert!(
                r.poly_order1 < r.lut_ref,
                "{}: order-1 {} vs lut_ref {}",
                r.arc,
                r.poly_order1,
                r.lut_ref
            );
        }
        // The auto-order model is accurate in absolute terms too.
        let mean_auto: f64 = multi.iter().map(|r| r.poly_auto).sum::<f64>() / multi.len() as f64;
        assert!(mean_auto < 0.05, "auto-order MAPE {mean_auto}");
    }

    /// Decomposition sanity: a vector-aware LUT would be competitive —
    /// the baseline's real handicap is vector blindness, not
    /// interpolation.
    #[test]
    fn vector_blindness_dominates_interpolation_error() {
        let rows = run(&Technology::n130());
        for r in rows.iter().filter(|r| r.multi_vector) {
            assert!(
                r.lut_ref > r.lut_same,
                "{}: ref {} should exceed same {}",
                r.arc,
                r.lut_ref,
                r.lut_same
            );
        }
    }
}
