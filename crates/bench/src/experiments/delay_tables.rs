//! E3 (Tables 3–4): gate delay versus sensitization vector, per
//! technology, from golden electrical simulation — each gate loaded with a
//! gate of its own type, nominal supply, 25 °C, exactly as §II describes.

use sta_cells::{Corner, Edge, Technology};
use sta_esim::cellsim::{cell_input_cap, simulate_arc, Drive};

use crate::harness::{library, render_table};

/// One (technology, edge) row of Table 3/4.
#[derive(Clone, Debug)]
pub struct VectorDelayRow {
    /// Technology name.
    pub tech: String,
    /// Input edge label (`In Rise` / `In Fall`).
    pub edge: Edge,
    /// Delay per case, ps (case 1 first).
    pub delays: Vec<f64>,
}

impl VectorDelayRow {
    /// Percentage difference of case `k` (1-based ≥ 2) versus case 1.
    pub fn diff_pct(&self, k: usize) -> f64 {
        (self.delays[k - 1] - self.delays[0]) / self.delays[0] * 100.0
    }
}

/// Measures the per-vector delays of `cell_name` through `pin` for all
/// technologies (the data behind Tables 3 and 4).
///
/// `t_in` is the input transition time in ps; the load is one gate of the
/// same type.
pub fn vector_delays(cell_name: &str, pin: u8, t_in: f64) -> Vec<VectorDelayRow> {
    let lib = library();
    let cell = lib.cell_by_name(cell_name).expect("standard cell");
    let mut rows = Vec::new();
    for tech in Technology::all() {
        let corner = Corner::nominal(&tech);
        let load = cell_input_cap(cell, &tech);
        for edge in Edge::BOTH {
            let delays: Vec<f64> = cell
                .vectors_of(pin)
                .iter()
                .map(|v| {
                    simulate_arc(
                        cell,
                        &tech,
                        corner,
                        v,
                        edge,
                        Drive::Ramp { transition: t_in },
                        load,
                    )
                    .unwrap_or_else(|e| panic!("{cell_name} case {}: {e}", v.case))
                    .delay
                })
                .collect();
            rows.push(VectorDelayRow {
                tech: tech.name.clone(),
                edge,
                delays,
            });
        }
    }
    rows
}

/// Renders Tables 3 and 4 side by side.
pub fn table3_4(t_in: f64) -> String {
    let mut out = String::new();
    for (title, cell, pin) in [
        ("Table 3: AO22 propagation delay (input A), ps", "AO22", 0u8),
        ("Table 4: OA12 propagation delay (input C), ps", "OA12", 2u8),
    ] {
        let rows = vector_delays(cell, pin, t_in);
        let n_cases = rows[0].delays.len();
        let mut headers = vec!["Tech", "Edge"];
        let case_names: Vec<String> = (1..=n_cases).map(|c| format!("Case {c}")).collect();
        let diff_names: Vec<String> = (2..=n_cases).map(|c| format!("%diff {c}")).collect();
        for c in &case_names {
            headers.push(c);
        }
        for d in &diff_names {
            headers.push(d);
        }
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut cells = vec![r.tech.clone(), format!("In {:?}", r.edge)];
                cells.extend(r.delays.iter().map(|d| format!("{d:.2}")));
                cells.extend((2..=n_cases).map(|k| format!("{:+.2}%", r.diff_pct(k))));
                cells
            })
            .collect();
        out.push_str(&render_table(title, &headers, &body));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline result, asserted per technology: AO22 input-A falling
    /// delay depends on the vector with Case 2 slowest (paper Table 3
    /// shows +12 % to +22 % for Case 2), and OA12 input-C rising has
    /// Case 3 fastest (paper Table 4 shows negative diffs).
    #[test]
    fn vector_dependence_shape_holds_in_all_technologies() {
        let ao22 = vector_delays("AO22", 0, 50.0);
        for row in ao22.iter().filter(|r| r.edge == Edge::Fall) {
            assert!(
                row.diff_pct(2) > 5.0 && row.diff_pct(2) < 35.0,
                "{}: case2 {:+.1}%",
                row.tech,
                row.diff_pct(2)
            );
            assert!(row.diff_pct(3) > 0.0, "{}: case3 positive", row.tech);
            assert!(
                row.diff_pct(2) > row.diff_pct(3),
                "{}: case2 slowest",
                row.tech
            );
        }
        let oa12 = vector_delays("OA12", 2, 50.0);
        for row in oa12.iter().filter(|r| r.edge == Edge::Rise) {
            assert!(row.diff_pct(3) < 0.0, "{}: case3 fastest", row.tech);
            assert!(row.diff_pct(2) < 0.0, "{}: case2 negative", row.tech);
        }
    }

    #[test]
    fn rendered_table_contains_all_rows() {
        let t = table3_4(50.0);
        for tech in ["130nm", "90nm", "65nm"] {
            assert_eq!(t.matches(tech).count(), 4, "{tech} rows in\n{t}");
        }
    }
}
