//! E1 (Tables 1–2): sensitization-vector propagation tables, and
//! E2 (Figs. 2–3): transistor-state analysis per vector.

use sta_cells::sensitization::propagation_table;
use sta_cells::topology::{device_states, DeviceState};
use sta_cells::Edge;

use crate::harness::library;

/// Renders the paper's Tables 1 and 2: all sensitization vectors of AO22
/// and OA12.
pub fn table1_2() -> String {
    let lib = library();
    let mut out = String::new();
    for name in ["AO22", "OA12"] {
        let cell = lib.cell_by_name(name).expect("standard cell");
        out.push_str(&propagation_table(
            &format!("{name}  (Z = {})", cell.expr().display()),
            cell.arcs(),
        ));
        out.push('\n');
    }
    out
}

/// Renders the paper's Figs. 2 and 3 as text: the ON/OFF/switching state
/// of every transistor of AO22 (falling input A) and OA12 (rising input
/// C) under each sensitization vector.
pub fn fig2_3() -> String {
    let lib = library();
    let mut out = String::new();
    let dump = |out: &mut String, cell_name: &str, pin: u8, edge: Edge| {
        let cell = lib.cell_by_name(cell_name).expect("standard cell");
        out.push_str(&format!(
            "{cell_name}, input {} {} ({} stages, {} transistors)\n",
            sta_cells::func::pin_name(pin),
            edge,
            cell.topology().stages.len(),
            cell.topology().transistor_count(),
        ));
        let initial = edge == Edge::Fall; // pin starts high for a fall
        for v in cell.vectors_of(pin) {
            let reports = device_states(cell.topology(), pin, initial, &v.side);
            let mut on = Vec::new();
            let mut turning = Vec::new();
            for r in reports.iter().filter(|r| r.stage == 0) {
                match r.state {
                    DeviceState::On => on.push(r.label.clone()),
                    DeviceState::TurnsOn => turning.push(format!("{}↑", r.label)),
                    DeviceState::TurnsOff => turning.push(format!("{}↓", r.label)),
                    DeviceState::Off => {}
                }
            }
            out.push_str(&format!(
                "  Case {}: {}  ON: [{}]  switching: [{}]\n",
                v.case,
                v,
                on.join(" "),
                turning.join(" ")
            ));
        }
        out.push('\n');
    };
    // Fig. 2: AO22, falling transition through input A.
    dump(&mut out, "AO22", 0, Edge::Fall);
    // Fig. 3: OA12, rising transition through input C.
    dump(&mut out, "OA12", 2, Edge::Rise);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The rendered Table 1 must contain the paper's exact Case rows for
    /// input A of AO22: `T 1 0 0`, `T 1 1 0`, `T 1 0 1`.
    #[test]
    fn table1_rows_match_paper() {
        let t = table1_2();
        for row in ["T 1 0 0 T", "T 1 1 0 T", "T 1 0 1 T"] {
            assert!(t.contains(row), "missing row {row:?} in\n{t}");
        }
        // OA12 rows for input C: `1 0 T`, `0 1 T`, `1 1 T`.
        for row in ["1 0 T T", "0 1 T T", "1 1 T T"] {
            assert!(t.contains(row), "missing row {row:?} in\n{t}");
        }
    }

    /// Fig. 2 analysis: Case 2 must show nC conducting (the extra internal
    /// charging path the paper blames for the slowdown).
    #[test]
    fn fig2_shows_the_charge_sharing_device() {
        let f = fig2_3();
        let case2_line = f
            .lines()
            .find(|l| l.contains("Case 2") && l.contains("C=1"))
            .expect("case 2 line present");
        assert!(case2_line.contains("nC"), "{case2_line}");
    }
}
