//! E6–E8 (Tables 7–9): delay-estimation error of the developed tool's
//! polynomial model and the baseline's vector-blind LUT model, both
//! against golden electrical simulation, per circuit and technology.
//!
//! Following §V.B, the analysis focuses on paths with more than one
//! sensitization vector: for each sampled true path the whole path is
//! electrically simulated stage by stage with the *actual* vectors in
//! force, then each model's per-gate and per-path delays are compared.

use sta_baseline::lut_path_delay;
use sta_baseline::structural::StructuralPath;
use sta_cells::{Corner, Technology};
use sta_core::{EnumerationConfig, PathEnumerator, TruePath};
use sta_esim::pathsim::{simulate_path, PathStage};
use sta_netlist::GateKind;

use crate::harness::{benchmark, library, render_table, timing_library};

/// Error statistics for one tool on one circuit.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErrorStats {
    /// Mean relative path-delay error.
    pub mean_path: f64,
    /// Maximum relative path-delay error.
    pub max_path: f64,
    /// Mean relative per-gate delay error.
    pub mean_gate: f64,
    /// Maximum relative per-gate delay error.
    pub max_gate: f64,
}

/// One Table 7/8/9 row.
#[derive(Clone, Debug)]
pub struct ErrorRow {
    /// Circuit name.
    pub circuit: String,
    /// Developed tool (polynomial model) errors.
    pub developed: ErrorStats,
    /// Commercial-style baseline (LUT model) errors.
    pub commercial: ErrorStats,
    /// Number of paths that entered the statistics.
    pub paths_measured: usize,
    /// Sampled paths whose golden simulation failed (skipped).
    pub paths_skipped: usize,
}

/// Configuration of the error experiment.
#[derive(Clone, Copy, Debug)]
pub struct ErrorConfig {
    /// Maximum sampled paths per circuit.
    pub sample_paths: usize,
    /// N-worst cap for the enumeration that feeds the sample.
    pub n_worst: usize,
    /// Search budget.
    pub max_decisions: u64,
}

impl Default for ErrorConfig {
    fn default() -> Self {
        ErrorConfig {
            sample_paths: 6,
            n_worst: 100,
            max_decisions: 3_000_000,
        }
    }
}

/// Runs the error analysis for one circuit.
pub fn run_circuit(name: &str, tech: &Technology, cfg: &ErrorConfig) -> ErrorRow {
    let lib = library();
    let tlib = timing_library(tech);
    let bench = benchmark(name);
    let nl = &bench.mapped;
    let corner = Corner::nominal(tech);
    let mut ecfg = EnumerationConfig::new(corner).with_n_worst(cfg.n_worst);
    ecfg.max_decisions = cfg.max_decisions;
    let input_slew = ecfg.input_slew;
    let (paths, _) = PathEnumerator::new(nl, lib, tlib, ecfg).run();

    // Prefer multi-vector paths (the paper's focus), longest first; fall
    // back to any path on circuits without complex gates on the worst
    // paths. One path per structural key.
    let mut seen_keys: Vec<Vec<sta_netlist::NetId>> = Vec::new();
    let mut sample: Vec<&TruePath> = Vec::new();
    let is_multi = |p: &TruePath| {
        p.arcs.iter().any(|a| {
            let cell = match nl.gate(a.gate).kind() {
                GateKind::Cell(c) => lib.cell(c),
                GateKind::Prim(_) => unreachable!("mapped netlist"),
            };
            cell.vectors_of(a.pin).len() > 1
        })
    };
    for pass in 0..2 {
        for p in &paths {
            if sample.len() >= cfg.sample_paths {
                break;
            }
            if pass == 0 && !is_multi(p) {
                continue;
            }
            if seen_keys.contains(&p.nodes) {
                continue;
            }
            seen_keys.push(p.nodes.clone());
            sample.push(p);
        }
    }

    let mut dev = Accum::default();
    let mut com = Accum::default();
    let mut measured = 0usize;
    let mut skipped = 0usize;
    for p in sample {
        let (launch, timing) = match (&p.fall, &p.rise) {
            (Some(t), _) => (sta_cells::Edge::Fall, t),
            (None, Some(t)) => (sta_cells::Edge::Rise, t),
            (None, None) => continue,
        };
        // Golden stage-by-stage simulation with the actual vectors.
        let stages: Vec<PathStage<'_>> = p
            .arcs
            .iter()
            .map(|a| {
                let gate = nl.gate(a.gate);
                let cell = match gate.kind() {
                    GateKind::Cell(c) => lib.cell(c),
                    GateKind::Prim(_) => unreachable!("mapped netlist"),
                };
                PathStage {
                    cell,
                    vector: &cell.vectors_of(a.pin)[a.vector],
                    load_ff: tlib.net_load(nl, gate.output()).max(tech.c_wire),
                }
            })
            .collect();
        let golden = match simulate_path(&stages, tech, corner, launch, input_slew) {
            Ok(g) => g,
            Err(e) => {
                skipped += 1;
                eprintln!("  [{}] golden sim skipped on {}: {e}", tech.name, name);
                continue;
            }
        };
        measured += 1;
        // Developed tool: the enumerator's per-gate polynomial delays.
        dev.add_path(timing.arrival, golden.total_delay);
        for (model, gold) in timing.gate_delays.iter().zip(&golden.stages) {
            dev.add_gate(*model, gold.delay);
        }
        // Commercial: vector-blind LUT on the same structural path.
        let sp = StructuralPath {
            nodes: p.nodes.clone(),
            arcs: p.arcs.iter().map(|a| (a.gate, a.pin)).collect(),
            est_delay: 0.0,
        };
        let lut = lut_path_delay(nl, tlib, &sp, launch, input_slew);
        com.add_path(lut.total, golden.total_delay);
        for ((d, _), gold) in lut.stages.iter().zip(&golden.stages) {
            com.add_gate(*d, gold.delay);
        }
    }
    ErrorRow {
        circuit: name.to_string(),
        developed: dev.stats(),
        commercial: com.stats(),
        paths_measured: measured,
        paths_skipped: skipped,
    }
}

#[derive(Default)]
struct Accum {
    path_errs: Vec<f64>,
    gate_errs: Vec<f64>,
}

impl Accum {
    fn add_path(&mut self, model: f64, golden: f64) {
        if golden > 1e-9 {
            self.path_errs.push((model - golden).abs() / golden);
        }
    }

    fn add_gate(&mut self, model: f64, golden: f64) {
        if golden > 1e-9 {
            self.gate_errs.push((model - golden).abs() / golden);
        }
    }

    fn stats(&self) -> ErrorStats {
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let max = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
        ErrorStats {
            mean_path: mean(&self.path_errs),
            max_path: max(&self.path_errs),
            mean_gate: mean(&self.gate_errs),
            max_gate: max(&self.gate_errs),
        }
    }
}

/// Renders a Table 7/8/9 for the given circuits and technology.
pub fn render(circuits: &[&str], tech: &Technology, cfg: &ErrorConfig) -> String {
    let rows: Vec<ErrorRow> = circuits.iter().map(|c| run_circuit(c, tech, cfg)).collect();
    render_rows(&rows, tech)
}

/// Renders already-computed rows.
pub fn render_rows(rows: &[ErrorRow], tech: &Technology) -> String {
    let pct = |v: f64| format!("{:.2}%", v * 100.0);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.circuit.clone(),
                pct(r.developed.mean_path),
                pct(r.developed.max_path),
                pct(r.developed.mean_gate),
                pct(r.developed.max_gate),
                pct(r.commercial.mean_path),
                pct(r.commercial.max_path),
                pct(r.commercial.mean_gate),
                pct(r.commercial.max_gate),
                format!(
                    "{}{}",
                    r.paths_measured,
                    if r.paths_skipped > 0 {
                        format!("(-{})", r.paths_skipped)
                    } else {
                        String::new()
                    }
                ),
            ]
        })
        .collect();
    render_table(
        &format!(
            "Table 7/8/9 ({}): delay error vs electrical simulation — developed (poly) vs commercial (LUT)",
            tech.name
        ),
        &[
            "Circuit",
            "DevMeanPath",
            "DevMaxPath",
            "DevMeanGate",
            "DevMaxGate",
            "ComMeanPath",
            "ComMaxPath",
            "ComMeanGate",
            "ComMaxGate",
            "#Paths",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reproduction claim for Tables 7–9 on a small circuit: the
    /// polynomial model beats the vector-blind LUT on multi-vector paths.
    #[test]
    fn developed_model_beats_lut_on_sample_circuit() {
        let tech = Technology::n130();
        let cfg = ErrorConfig {
            sample_paths: 6,
            n_worst: 50,
            max_decisions: 5_000_000,
        };
        let row = run_circuit("sample", &tech, &cfg);
        assert!(
            row.paths_measured >= 2,
            "paths measured {}",
            row.paths_measured
        );
        assert!(
            row.developed.mean_path < row.commercial.mean_path,
            "dev {:?} vs com {:?}",
            row.developed,
            row.commercial
        );
        assert!(row.developed.mean_path < 0.10, "{:?}", row.developed);
    }
}
