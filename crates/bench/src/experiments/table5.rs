//! E4 (Fig. 4 + Table 5): the sample circuit whose critical path crosses
//! an AO22. The developed tool reports one path per sensitization vector
//! (with different delays); the commercial baseline commits the easiest —
//! and fastest — vector, underestimating the critical delay.

use sta_baseline::{run_baseline, BaselineConfig, Classification};
use sta_cells::{Corner, Edge, Technology};
use sta_core::{EnumerationConfig, PathEnumerator, TruePath};
use sta_esim::pathsim::{simulate_path, PathStage};
use sta_netlist::GateKind;

use crate::harness::{benchmark, library, render_table, timing_library};

/// One Table 5 row: an input vector sensitizing the critical path and its
/// measured delay.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Witness input vector, formatted like the paper (`N1=F, N2=1, …`).
    pub input_vector: String,
    /// Which AO22 case this corresponds to (1-based).
    pub case: usize,
    /// Polynomial-model path delay, ps.
    pub model_delay: f64,
    /// Golden electrical-simulation path delay, ps.
    pub golden_delay: f64,
    /// Whether the commercial baseline reports this vector.
    pub reported_by_baseline: bool,
}

/// Result of the sample-circuit experiment.
#[derive(Clone, Debug)]
pub struct Table5 {
    /// Rows sorted by descending golden delay.
    pub rows: Vec<Table5Row>,
    /// The baseline's (single) reported delay for the path, ps.
    pub baseline_delay: f64,
}

/// Runs the experiment on the `sample` benchmark at the given technology.
pub fn run(tech: &Technology) -> Table5 {
    let lib = library();
    let tlib = timing_library(tech);
    let bench = benchmark("sample");
    let nl = &bench.mapped;
    let corner = Corner::nominal(tech);
    let cfg = EnumerationConfig::new(corner);
    let input_slew = cfg.input_slew;
    let (paths, _) = PathEnumerator::new(nl, lib, tlib, cfg).run();

    // The paths of interest run from N1 through the AO22 to N20.
    let n1 = nl.net_by_name("N1").expect("sample has N1");
    let through_ao22: Vec<&TruePath> = paths
        .iter()
        .filter(|p| p.source == n1 && p.arcs.len() == 4)
        .collect();

    // Baseline for comparison.
    let baseline = run_baseline(nl, lib, tlib, &BaselineConfig::new(50, 1000));
    let base_for_path = |p: &TruePath| {
        baseline
            .paths
            .iter()
            .find(|bp| bp.sens.classification == Classification::True && bp.path.nodes == p.nodes)
    };

    let mut rows = Vec::new();
    for p in &through_ao22 {
        // Launch with the polarity that makes the AO22 input fall (the
        // paper launches a falling edge at N1; with a NAND in front the
        // AO22 sees a rising A — either way both polarities are
        // computed; report the falling-launch one like the paper).
        let (launch, timing) = match (&p.fall, &p.rise) {
            (Some(t), _) => (Edge::Fall, t),
            (None, Some(t)) => (Edge::Rise, t),
            (None, None) => continue,
        };
        // Golden electrical simulation of the sensitized path.
        let stages: Vec<PathStage<'_>> = p
            .arcs
            .iter()
            .map(|a| {
                let gate = nl.gate(a.gate);
                let cell = match gate.kind() {
                    GateKind::Cell(c) => lib.cell(c),
                    GateKind::Prim(_) => unreachable!("mapped netlist"),
                };
                PathStage {
                    cell,
                    vector: &cell.vectors_of(a.pin)[a.vector],
                    load_ff: tlib.net_load(nl, gate.output()).max(tech.c_wire),
                }
            })
            .collect();
        let golden = simulate_path(&stages, tech, corner, launch, input_slew)
            .map(|m| m.total_delay)
            .unwrap_or(f64::NAN);
        // Which case is in force at the AO22 (the path's widest-choice arc)?
        let case = p
            .arcs
            .iter()
            .map(|a| {
                let cell = match nl.gate(a.gate).kind() {
                    GateKind::Cell(c) => lib.cell(c),
                    GateKind::Prim(_) => unreachable!(),
                };
                (cell.vectors_of(a.pin).len(), a.vector + 1)
            })
            .max_by_key(|(n, _)| *n)
            .map(|(_, case)| case)
            .unwrap_or(1);
        let base = base_for_path(p);
        rows.push(Table5Row {
            input_vector: p.input_vector_string(nl, launch),
            case,
            model_delay: timing.arrival,
            golden_delay: golden,
            reported_by_baseline: base.is_some_and(|bp| {
                // Baseline reports one vector; does it match this row's
                // vector choice at every arc?
                bp.sens.chosen_vectors == p.arcs.iter().map(|a| a.vector).collect::<Vec<_>>()
            }),
        });
    }
    rows.sort_by(|a, b| b.golden_delay.total_cmp(&a.golden_delay));
    let baseline_delay = baseline
        .paths
        .iter()
        .filter(|bp| bp.sens.classification == Classification::True)
        .map(|bp| bp.worst_delay())
        .fold(0.0, f64::max);
    Table5 {
        rows,
        baseline_delay,
    }
}

/// Renders the Table 5 report.
pub fn render(tech: &Technology) -> String {
    let t = run(tech);
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.input_vector.clone(),
                format!("case {}", r.case),
                format!("{:.2}", r.model_delay),
                format!("{:.2}", r.golden_delay),
                if r.reported_by_baseline { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    let mut out = render_table(
        &format!(
            "Table 5: sample-circuit critical path, delay vs input vector ({})",
            tech.name
        ),
        &[
            "Input vector",
            "AO22 case",
            "Model (ps)",
            "Spice-level (ps)",
            "Baseline reports",
        ],
        &rows,
    );
    out.push_str(&format!(
        "Commercial-style baseline critical delay: {:.2} ps\n",
        t.baseline_delay
    ));
    if let (Some(worst), Some(easiest)) = (
        t.rows.first(),
        t.rows.iter().find(|r| r.reported_by_baseline),
    ) {
        out.push_str(&format!(
            "Worst vector is {:.1}% slower than the baseline-reported one.\n",
            (worst.golden_delay - easiest.golden_delay) / easiest.golden_delay * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reproduction of the paper's Table 5 claim: the developed tool
    /// reports multiple vectors for the AO22 path, the slowest is several
    /// percent slower than the easiest one, and the baseline only reports
    /// the easiest.
    #[test]
    fn slow_vector_exists_and_baseline_misses_it() {
        let tech = Technology::n130();
        let t = run(&tech);
        assert!(
            t.rows.len() >= 2,
            "expected multiple vectors, got {}",
            t.rows.len()
        );
        let worst = &t.rows[0];
        let easiest = t
            .rows
            .iter()
            .find(|r| r.reported_by_baseline)
            .expect("baseline reports one of the vectors");
        assert!(
            !worst.reported_by_baseline,
            "the slowest vector must not be the baseline's pick"
        );
        let gain = (worst.golden_delay - easiest.golden_delay) / easiest.golden_delay;
        assert!(
            gain > 0.02 && gain < 0.40,
            "delay increase {gain:.3} out of the paper's single-digit-percent band"
        );
        // The polynomial model ranks the vectors the same way.
        assert!(worst.model_delay > easiest.model_delay);
    }
}
