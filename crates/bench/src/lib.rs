//! Reproduction harness: one binary per paper table/figure plus shared
//! experiment code and Criterion benches.
//!
//! Binaries (run with `cargo run --release -p sta-bench --bin <name>`):
//!
//! * `repro_table1_2` — sensitization-vector propagation tables (E1);
//! * `repro_fig2_3` — transistor-state analysis per vector (E2);
//! * `repro_table3_4` — gate delay vs vector per technology (E3);
//! * `repro_table5` — sample-circuit critical path, Fig. 4 + Table 5 (E4);
//! * `repro_table6` — path-identification comparison vs baseline (E5);
//! * `repro_table7_8_9` — delay-error comparison vs electrical sim
//!   (E6–E8);
//! * `repro_ablation_model` — polynomial-vs-LUT ablation (E9);
//! * `calibrate` — raw per-vector delay dump used to tune the technology
//!   parameters;
//! * `repro_all` — everything above in sequence, writing
//!   `EXPERIMENTS-data/` artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use harness::{benchmark, cache_dir, library, render_table, timing_library, Bench};
