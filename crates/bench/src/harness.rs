//! Shared plumbing for the reproduction binaries and Criterion benches:
//! cached characterization, benchmark loading, and plain-text table
//! rendering.

use std::path::PathBuf;
use std::sync::OnceLock;

use parking_lot::Mutex;
use std::collections::HashMap;

use sta_cells::{Library, Technology};
use sta_charlib::{characterize_cached, CharConfig, TimingLibrary};
use sta_circuits::catalog;
use sta_netlist::Netlist;

/// Directory holding cached characterized libraries (JSON, keyed by
/// technology + configuration fingerprint).
pub fn cache_dir() -> PathBuf {
    // crates/bench/../../.char-cache == workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(".char-cache")
}

/// The standard cell library (shared instance).
pub fn library() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(Library::standard)
}

/// The characterized timing library for `tech`, loaded from the disk cache
/// or characterized on first use (shared per technology).
///
/// # Panics
///
/// Panics if characterization fails (malformed cell — a bug, not an
/// environmental condition).
pub fn timing_library(tech: &Technology) -> &'static TimingLibrary {
    static CACHE: OnceLock<Mutex<HashMap<String, &'static TimingLibrary>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock();
    if let Some(t) = map.get(&tech.name) {
        return t;
    }
    let tlib = characterize_cached(library(), tech, &CharConfig::standard(), &cache_dir())
        .unwrap_or_else(|e| panic!("characterization of {} failed: {e}", tech.name));
    let leaked: &'static TimingLibrary = Box::leak(Box::new(tlib));
    map.insert(tech.name.clone(), leaked);
    leaked
}

/// A loaded benchmark: raw primitive netlist plus its technology-mapped
/// form.
#[derive(Clone, Debug)]
pub struct Bench {
    /// Benchmark name.
    pub name: String,
    /// Primitive-gate netlist.
    pub raw: Netlist,
    /// Technology-mapped netlist.
    pub mapped: Netlist,
}

/// Loads a benchmark by catalog name.
///
/// # Panics
///
/// Panics on unknown names or mapping failures.
pub fn benchmark(name: &str) -> Bench {
    let raw = catalog::primitive(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mapped = catalog::mapped(name, library())
        .expect("mapping succeeds")
        .expect("known benchmark");
    Bench {
        name: name.to_string(),
        raw,
        mapped,
    }
}

/// Renders a fixed-width text table (first row of `rows` may be reused as
/// units line etc. — purely cosmetic).
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&sep);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:>w$} ", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("|")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Formats a ps value with two decimals.
pub fn ps(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "T",
            &["a", "bbb"],
            &[
                vec!["1".into(), "2".into()],
                vec!["10".into(), "2000".into()],
            ],
        );
        assert!(t.contains("bbb"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn benchmark_loads_c17() {
        let b = benchmark("c17");
        assert_eq!(b.raw.num_gates(), 6);
        assert_eq!(b.mapped.num_gates(), 6);
    }

    #[test]
    fn pct_and_ps_format() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(ps(1.5), "1.50");
    }
}
