//! Measures the parallel enumeration engine at 1/2/4/8 worker threads
//! and writes `BENCH_parallel_enum.json` (repo root) with the raw
//! wall-clock numbers, the speedup over serial, and a determinism check
//! of each configuration's path set against the serial one.

use std::time::Instant;

use serde::Serialize;
use sta_bench::{benchmark, library, timing_library};
use sta_cells::{Corner, Technology};
use sta_core::{EnumerationConfig, PathEnumerator};

#[derive(Serialize)]
struct ThreadResult {
    /// Requested worker-pool size.
    threads: usize,
    /// Workers that can actually run concurrently on this host
    /// (`min(threads, host_parallelism)`) — on a 1-core host every row
    /// reports 1 here, which is why the speedup column is flat.
    effective_threads: usize,
    /// Best-of-3 wall-clock, milliseconds.
    wall_ms: f64,
    speedup_vs_serial: f64,
    paths: usize,
    matches_serial: bool,
}

/// Echo of the enumeration configuration shared by every run, so a
/// stored report is interpretable without knowing the binary's defaults.
#[derive(Serialize)]
struct EngineConfig {
    n_worst: usize,
    compiled_kernels: bool,
    bitsim: bool,
}

#[derive(Serialize)]
struct CircuitResult {
    circuit: String,
    n_worst: usize,
    worst_arrival_ps: f64,
    runs: Vec<ThreadResult>,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    technology: String,
    host_parallelism: usize,
    engine: EngineConfig,
    note: &'static str,
    circuits: Vec<CircuitResult>,
}

fn main() {
    let tech = Technology::n130();
    let lib = library();
    let tlib = timing_library(&tech);
    let corner = Corner::nominal(&tech);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n_worst = 50;

    let mut circuits = Vec::new();
    for name in ["c432", "c880"] {
        let nl = benchmark(name).mapped.clone();
        let cfg_at = |threads: usize| {
            EnumerationConfig::new(corner)
                .with_n_worst(n_worst)
                .with_threads(threads)
        };
        let (serial_paths, _) = PathEnumerator::new(&nl, lib, tlib, cfg_at(1)).run();
        let serial_bytes = serde_json::to_string(&serial_paths).unwrap();
        let worst = serial_paths.first().map_or(0.0, |p| p.worst_arrival());

        let mut runs = Vec::new();
        let mut serial_ms = 0.0;
        for threads in [1usize, 2, 4, 8] {
            // Warm-up, then best of 3.
            let enumr = PathEnumerator::new(&nl, lib, tlib, cfg_at(threads));
            let (paths, _) = enumr.run();
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                let _ = PathEnumerator::new(&nl, lib, tlib, cfg_at(threads)).run();
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            if threads == 1 {
                serial_ms = best;
            }
            let matches = serde_json::to_string(&paths).unwrap() == serial_bytes;
            println!(
                "{name}: {threads} thread(s) {best:.1} ms ({}x), {} paths, identical={matches}",
                if best > 0.0 { serial_ms / best } else { 0.0 },
                paths.len(),
            );
            runs.push(ThreadResult {
                threads,
                effective_threads: threads.min(host),
                wall_ms: best,
                speedup_vs_serial: if best > 0.0 { serial_ms / best } else { 0.0 },
                paths: paths.len(),
                matches_serial: matches,
            });
        }
        circuits.push(CircuitResult {
            circuit: name.to_string(),
            n_worst,
            worst_arrival_ps: worst,
            runs,
        });
    }

    let cfg_echo = EnumerationConfig::new(corner).with_n_worst(n_worst);
    let report = Report {
        bench: "parallel_enum",
        technology: tech.name.clone(),
        host_parallelism: host,
        engine: EngineConfig {
            n_worst,
            compiled_kernels: cfg_echo.compile_kernels,
            bitsim: cfg_echo.bitsim,
        },
        note: "Wall-clock is best of 3 after warm-up. Speedup over serial is \
               bounded by the host's available parallelism; on a single-core \
               host all thread counts measure the serial runtime plus pool \
               overhead.",
        circuits,
    };
    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write("BENCH_parallel_enum.json", &json).unwrap();
    println!("wrote BENCH_parallel_enum.json ({} bytes)", json.len());
}
