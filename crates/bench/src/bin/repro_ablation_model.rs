//! E9: the §V.B ablation — polynomial versus LUT delay models, off-grid
//! accuracy and model size.

use sta_cells::Technology;

fn main() {
    for tech in Technology::all() {
        print!("{}", sta_bench::experiments::ablation::render(&tech));
        println!();
    }
}
