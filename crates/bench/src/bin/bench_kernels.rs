//! Interpreted-vs-compiled delay kernel benchmark (`BENCH_kernel_compile.json`).
//!
//! For each catalog circuit the harness:
//!
//! 1. enumerates true paths in both modes — interpreted models vs the
//!    corner-compiled kernel table — and verifies the two runs produce
//!    identical path sets and arrivals (the kernels are bit-identical by
//!    construction, so any divergence is a bug); the timed rounds are
//!    warmed up and interleaved so clock ramp-up and cache warming do
//!    not bias one mode;
//! 2. replays the circuit's real delay-evaluation workload (every arc of
//!    every emitted path with propagated slews) through the three
//!    evaluation paths — direct interpreted [`sta_charlib::poly`] walk,
//!    the hash-keyed `ModelCache`, and the compiled kernel — and reports
//!    best-of-3 per-eval timings;
//! 3. records kernel compile time and footprint.
//!
//! Usage: `bench_kernels [--circuit NAME]... [--out PATH]`
//! (default circuits: c17 c432 c880; default out: BENCH_kernel_compile.json)

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;
use sta_bench::{benchmark, library, timing_library};
use sta_cells::{Corner, Edge, Technology};
use sta_charlib::ModelCache;
use sta_core::{EnumerationConfig, PathEnumerator, TruePath};
use sta_netlist::CellId;

/// One recorded model evaluation of the replay workload.
#[derive(Clone, Copy)]
struct EvalSite {
    cell: CellId,
    pin: u8,
    vector: usize,
    edge: Edge,
    fo: f64,
    slew: f64,
}

#[derive(Serialize)]
struct EvalWorkload {
    /// Distinct recorded evaluation sites.
    sites: usize,
    /// Total evaluations timed per implementation.
    evals: usize,
    interpreted_ns_per_eval: f64,
    cached_ns_per_eval: f64,
    compiled_ns_per_eval: f64,
    /// Compiled-kernel speedup over the direct interpreted walk.
    speedup_vs_interpreted: f64,
    /// Compiled-kernel speedup over the `ModelCache` path.
    speedup_vs_cached: f64,
}

#[derive(Serialize)]
struct EndToEnd {
    interpreted_ms: f64,
    compiled_ms: f64,
    speedup: f64,
    /// Paths, arrivals, and witness vectors agree between the two modes.
    identical_paths: bool,
    paths: usize,
    compiled_evals: u64,
    fallback_evals: u64,
}

#[derive(Serialize)]
struct KernelInfo {
    arcs: usize,
    coefficients: usize,
    compile_ms: f64,
}

#[derive(Serialize)]
struct CircuitReport {
    name: String,
    eval_workload: EvalWorkload,
    end_to_end: EndToEnd,
    kernel: KernelInfo,
}

#[derive(Serialize)]
struct Report {
    tech: String,
    circuits: Vec<CircuitReport>,
}

fn config(name: &str, corner: Corner, kernels: bool) -> EnumerationConfig {
    let mut cfg = EnumerationConfig::new(corner).with_compiled_kernels(kernels);
    // Full enumeration where it is cheap, N-worst where it is not.
    if name == "c17" || name == "c432" {
        cfg.max_paths = Some(100_000);
    } else {
        cfg = cfg.with_n_worst(50);
    }
    cfg
}

fn paths_identical(a: &[TruePath], b: &[TruePath]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.source == y.source
                && x.nodes == y.nodes
                && x.arcs == y.arcs
                && x.input_vector == y.input_vector
                && [(&x.rise, &y.rise), (&x.fall, &y.fall)]
                    .iter()
                    .all(|(s, t)| match (s, t) {
                        (Some(s), Some(t)) => {
                            s.arrival.to_bits() == t.arrival.to_bits()
                                && s.slew.to_bits() == t.slew.to_bits()
                        }
                        (None, None) => true,
                        _ => false,
                    })
        })
}

/// Replays every arc of every emitted path with slew propagation,
/// recording the evaluation sites the enumerator's inner loop hits.
fn record_sites(
    nl: &sta_netlist::Netlist,
    tlib: &sta_charlib::TimingLibrary,
    corner: Corner,
    input_slew: f64,
    paths: &[TruePath],
) -> Vec<EvalSite> {
    let mut sites = Vec::new();
    for p in paths {
        for (launch, timing) in [(Edge::Rise, &p.rise), (Edge::Fall, &p.fall)] {
            if timing.is_none() {
                continue;
            }
            let mut edge = launch;
            let mut slew = input_slew;
            for arc in &p.arcs {
                let gate = nl.gate(arc.gate);
                let cell = match gate.kind() {
                    sta_netlist::GateKind::Cell(c) => c,
                    sta_netlist::GateKind::Prim(_) => unreachable!("mapped netlist"),
                };
                let fo = tlib.equivalent_fanout(nl, gate.output(), cell);
                sites.push(EvalSite {
                    cell,
                    pin: arc.pin,
                    vector: arc.vector,
                    edge,
                    fo,
                    slew,
                });
                let (_, s) = tlib.delay_slew(cell, arc.pin, arc.vector, edge, fo, slew, corner);
                slew = s.max(0.5);
                edge = edge.through(arc.polarity);
            }
        }
    }
    sites
}

/// Best-of-3 wall time of `f` over `rounds` passes of the site list,
/// in ns per evaluation.
fn time_evals(sites: &[EvalSite], rounds: usize, mut f: impl FnMut(&EvalSite) -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut acc = 0.0;
        for _ in 0..rounds {
            for s in sites {
                acc += f(black_box(s));
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        black_box(acc);
        best = best.min(dt * 1e9 / (rounds * sites.len()) as f64);
    }
    best
}

fn main() {
    let mut circuits: Vec<String> = Vec::new();
    let mut out = String::from("BENCH_kernel_compile.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--circuit" => circuits.push(args.next().expect("--circuit NAME")),
            "--out" => out = args.next().expect("--out PATH"),
            other => panic!("unknown argument {other}"),
        }
    }
    if circuits.is_empty() {
        circuits = ["c17", "c432", "c880"].map(String::from).to_vec();
    }

    let tech = Technology::n130();
    let lib = library();
    let tlib = timing_library(&tech);
    let corner = Corner::nominal(&tech);
    let mut report = Report {
        tech: tech.name.to_string(),
        circuits: Vec::new(),
    };

    for name in &circuits {
        let nl = benchmark(name).mapped.clone();

        // Kernel compile cost and footprint.
        let t0 = Instant::now();
        let kernel = tlib.compile_corner(corner);
        let compile_ms = t0.elapsed().as_secs_f64() * 1e3;

        // End-to-end enumeration, both modes. One untimed warmup run per
        // mode, then the timed rounds ALTERNATE interpreted/compiled (best
        // of 3 each): timing one mode's rounds back-to-back before the
        // other's hands whichever goes second a warmed cache hierarchy and
        // a ramped-up clock, which on short runs (c432 is ~100 ms) is
        // enough to flip the reported speedup sign.
        let enum_int = PathEnumerator::new(&nl, lib, tlib, config(name, corner, false));
        let enum_cmp = PathEnumerator::new(&nl, lib, tlib, config(name, corner, true));
        black_box(enum_int.run());
        black_box(enum_cmp.run());
        let mut int_ms = f64::INFINITY;
        let mut cmp_ms = f64::INFINITY;
        let mut int_result = None;
        let mut cmp_result = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let (paths, stats) = enum_int.run();
            int_ms = int_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            int_result = Some((paths, stats));
            let t0 = Instant::now();
            let (paths, stats) = enum_cmp.run();
            cmp_ms = cmp_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            cmp_result = Some((paths, stats));
        }
        let (int_paths, _int_stats) = int_result.expect("ran");
        let (cmp_paths, cmp_stats) = cmp_result.expect("ran");
        let identical = paths_identical(&int_paths, &cmp_paths);
        assert!(
            identical,
            "{name}: compiled and interpreted path sets diverge"
        );

        // Replay the real evaluation workload through the three paths.
        let input_slew = config(name, corner, true).input_slew;
        let sites = record_sites(&nl, tlib, corner, input_slew, &cmp_paths);
        assert!(!sites.is_empty(), "{name}: no evaluation sites recorded");
        let rounds = (1_000_000 / sites.len()).max(1);
        let interp_ns = time_evals(&sites, rounds, |s| {
            tlib.delay_slew(s.cell, s.pin, s.vector, s.edge, s.fo, s.slew, corner)
                .0
        });
        let mut cache = ModelCache::new();
        let cached_ns = time_evals(&sites, rounds, |s| {
            tlib.delay_slew_cached(
                &mut cache, s.cell, s.pin, s.vector, s.edge, s.fo, s.slew, corner,
            )
            .0
        });
        let compiled_ns = time_evals(&sites, rounds, |s| {
            kernel
                .eval(kernel.arc_id(s.cell, s.pin, s.vector), s.edge, s.fo, s.slew)
                .0
        });

        let circuit = CircuitReport {
            name: name.clone(),
            eval_workload: EvalWorkload {
                sites: sites.len(),
                evals: rounds * sites.len(),
                interpreted_ns_per_eval: interp_ns,
                cached_ns_per_eval: cached_ns,
                compiled_ns_per_eval: compiled_ns,
                speedup_vs_interpreted: interp_ns / compiled_ns,
                speedup_vs_cached: cached_ns / compiled_ns,
            },
            end_to_end: EndToEnd {
                interpreted_ms: int_ms,
                compiled_ms: cmp_ms,
                speedup: int_ms / cmp_ms,
                identical_paths: identical,
                paths: cmp_paths.len(),
                compiled_evals: cmp_stats.compiled_evals,
                fallback_evals: cmp_stats.fallback_evals,
            },
            kernel: KernelInfo {
                arcs: kernel.num_arcs(),
                coefficients: kernel.num_coefficients(),
                compile_ms,
            },
        };
        println!(
            "{name}: eval {:.1} ns interpreted / {:.1} ns cached / {:.1} ns compiled \
             ({:.2}x vs interpreted), end-to-end {:.1} ms -> {:.1} ms, identical paths: {}",
            interp_ns,
            cached_ns,
            compiled_ns,
            circuit.eval_workload.speedup_vs_interpreted,
            int_ms,
            cmp_ms,
            identical
        );
        report.circuits.push(circuit);
    }

    let kernel_speedups = report
        .circuits
        .iter()
        .filter(|c| c.eval_workload.speedup_vs_interpreted >= 1.5)
        .count();
    assert!(
        report.circuits.len() < 2 || kernel_speedups >= 2,
        "compiled kernels must be at least 1.5x faster than the interpreted \
         path on two or more circuits"
    );
    let js = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &js).expect("write report");
    println!("wrote {out}");
}
