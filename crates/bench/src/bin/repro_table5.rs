//! E4: reproduces the paper's Fig. 4 + Table 5 (sample circuit: path
//! delay versus input vector; the baseline misses the slow vector).

use sta_cells::Technology;

fn main() {
    let tech = std::env::args()
        .nth(1)
        .and_then(|s| Technology::by_name(&s))
        .unwrap_or_else(Technology::n130);
    print!("{}", sta_bench::experiments::table5::render(&tech));
}
