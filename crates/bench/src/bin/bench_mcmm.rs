//! Measures what the MCMM batch engine buys over independent per-scenario
//! invocations and writes `BENCH_mcmm.json` (repo root).
//!
//! For each circuit the benchmark runs one `run_batch` over a corner ×
//! mode matrix (default: typ/fast/slow of 90 nm × func/test clocks) and
//! then the same scenarios as independent single-scenario `run`s. Three
//! things are checked before any latency is reported:
//!
//! * **sharing** — the batch did the scenario-invariant work exactly once
//!   (`mcmm.netlist_loads`, `mcmm.characterizations`,
//!   `mcmm.schedule_compiles` observability counters all equal 1);
//! * **identity** — every scenario's `CertificateSet` digest equals the
//!   independent run's (the per-scenario byte-identity invariant of
//!   DESIGN.md §5.12);
//! * **amortization** — the batch wall-clock beats the sum of the
//!   independent invocations.
//!
//! Usage: `bench_mcmm [circuits] [CxM]` — e.g. `bench_mcmm c432 2x2`
//! for the CI smoke (first 2 corners × first 2 modes of the matrix).

use std::time::Instant;

use serde::Serialize;
use sta_bench::cache_dir;
use sta_cells::Technology;
use sta_charlib::CharConfig;
use sta_circuits::catalog;
use sta_core::{AnalysisRequest, CertificateSet, CornerDef, Mode, Scenario};
use sta_obs::{digest_string, Observer};

#[derive(Serialize)]
struct ScenarioResult {
    scenario: String,
    paths: usize,
    truncated: bool,
    single_s: f64,
    /// FNV digest of the batch certificate set; the independent run is
    /// asserted equal before this row is emitted.
    digest: String,
    digest_identical: bool,
}

#[derive(Serialize)]
struct SharedPrep {
    netlist_loads: u64,
    characterizations: u64,
    schedule_compiles: u64,
    kernel_compiles: u64,
    sdc_parses: u64,
}

#[derive(Serialize)]
struct CircuitResult {
    circuit: String,
    n_worst: usize,
    decision_budget: Option<u64>,
    corners: Vec<String>,
    modes: Vec<String>,
    batch_s: f64,
    singles_sum_s: f64,
    /// `singles_sum_s / batch_s`.
    speedup: f64,
    shared_prep: SharedPrep,
    merged_worst_output: String,
    merged_worst_slack_ps: f64,
    merged_worst_scenario: String,
    scenarios: Vec<ScenarioResult>,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    technology: String,
    batch_threads: usize,
    note: &'static str,
    circuits: Vec<CircuitResult>,
}

fn request(circuit: &str, n_worst: usize) -> AnalysisRequest {
    AnalysisRequest::new(circuit)
        .n_worst(Some(n_worst))
        .char_config(CharConfig::standard())
        .cache_dir(cache_dir())
        .max_decisions(catalog::benchmark_info(circuit).and_then(|b| b.decision_budget))
}

fn main() {
    let circuits: Vec<String> = std::env::args()
        .nth(1)
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| vec!["c880".to_string()]);
    let (n_corners, n_modes) = match std::env::args().nth(2) {
        Some(spec) => {
            let (c, m) = spec
                .split_once('x')
                .unwrap_or_else(|| panic!("matrix spec {spec:?} is not CxM"));
            (
                c.parse().expect("corner count parses"),
                m.parse().expect("mode count parses"),
            )
        }
        None => (3, 2),
    };
    let tech = Technology::n90();
    // One technology, three PVT points: the batch must characterize once.
    let corners: Vec<CornerDef> = ["typ", "fast", "slow"][..n_corners]
        .iter()
        .map(|name| CornerDef::parse(name, &tech).expect("named corner parses"))
        .collect();
    let modes: Vec<Mode> = [
        Mode::with_sdc("func", "create_clock -period 1000\n"),
        Mode::with_sdc("test", "create_clock -period 1500\n"),
    ][..n_modes]
        .to_vec();
    let set = Scenario::matrix(&corners, &modes);
    let batch_threads = 2;
    let n_worst = 50;

    let mut rows = Vec::new();
    for name in &circuits {
        let budget = catalog::benchmark_info(name).and_then(|b| b.decision_budget);

        // The batch, with counters watching the shared-prep claims.
        let obs = Observer::enabled();
        let t0 = Instant::now();
        let batch = request(name, n_worst)
            .scenarios(set.clone())
            .batch_threads(batch_threads)
            .observer(obs.clone())
            .run_batch()
            .unwrap_or_else(|e| panic!("{name}: batch failed: {e}"));
        let batch_s = t0.elapsed().as_secs_f64();
        let counters = obs.metrics_snapshot().counters;
        let prep = SharedPrep {
            netlist_loads: counters["mcmm.netlist_loads"],
            characterizations: counters["mcmm.characterizations"],
            schedule_compiles: counters["mcmm.schedule_compiles"],
            kernel_compiles: counters["mcmm.kernel_compiles"],
            sdc_parses: counters["mcmm.sdc_parses"],
        };
        assert_eq!(prep.netlist_loads, 1, "{name}: netlist loaded once");
        assert_eq!(prep.characterizations, 1, "{name}: characterized once");
        assert_eq!(prep.schedule_compiles, 1, "{name}: schedule compiled once");

        // The same scenarios as independent invocations, digest-compared.
        let mut singles_sum_s = 0.0;
        let mut scenario_rows = Vec::new();
        for (i, s) in set.iter().enumerate() {
            let t0 = Instant::now();
            let single = request(name, n_worst)
                .scenario(s.clone())
                .run()
                .unwrap_or_else(|e| panic!("{name} {}: single run failed: {e}", s.name()));
            let single_s = t0.elapsed().as_secs_f64();
            singles_sum_s += single_s;
            let digest = digest_string(batch.certificates(i).to_json().as_bytes());
            let single_certs =
                CertificateSet::new(&single.netlist, single.input_slew, single.paths);
            let identical = digest_string(single_certs.to_json().as_bytes()) == digest;
            assert!(
                identical,
                "{name} {}: batch digest diverged from the independent run",
                s.name()
            );
            scenario_rows.push(ScenarioResult {
                scenario: s.name(),
                paths: batch.scenarios[i].paths.len(),
                truncated: batch.scenarios[i].stats.truncated,
                single_s,
                digest,
                digest_identical: identical,
            });
        }
        assert!(
            batch_s < singles_sum_s,
            "{name}: batch ({batch_s:.2}s) is not faster than {} independent runs \
             ({singles_sum_s:.2}s)",
            set.len()
        );

        let worst = batch.merged.worst().expect("at least one endpoint");
        let speedup = singles_sum_s / batch_s;
        println!(
            "{name:>6}: {}x{} scenarios  batch {batch_s:8.2} s  singles {singles_sum_s:8.2} s  \
             ({speedup:5.2}x)  worst {} {:+.1} ps in {}",
            corners.len(),
            modes.len(),
            worst.output,
            worst.slack,
            worst.scenario,
        );
        rows.push(CircuitResult {
            circuit: name.clone(),
            n_worst,
            decision_budget: budget,
            corners: corners.iter().map(|c| c.name.clone()).collect(),
            modes: modes.iter().map(|m| m.name.clone()).collect(),
            batch_s,
            singles_sum_s,
            speedup,
            shared_prep: prep,
            merged_worst_output: worst.output.clone(),
            merged_worst_slack_ps: worst.slack,
            merged_worst_scenario: worst.scenario.clone(),
            scenarios: scenario_rows,
        });
    }

    let report = Report {
        bench: "mcmm",
        technology: tech.name.clone(),
        batch_threads,
        note: "one batch over the corner x mode matrix vs the same scenarios as \
               independent invocations; shared prep is counter-asserted (netlist load, \
               characterization, schedule compile each exactly once) and every \
               scenario's certificate digest is asserted equal to its independent \
               run before timing is reported",
        circuits: rows,
    };
    std::fs::write(
        "BENCH_mcmm.json",
        serde_json::to_string_pretty(&report).unwrap(),
    )
    .unwrap();
    println!("wrote BENCH_mcmm.json");
}
