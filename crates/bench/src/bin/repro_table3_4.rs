//! E3: reproduces the paper's Tables 3–4 (complex-gate delay versus
//! sensitization vector for the three technologies), from golden
//! electrical simulation.

fn main() {
    let t_in = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50.0);
    print!("{}", sta_bench::experiments::delay_tables::table3_4(t_in));
}
