//! Populates the on-disk characterization cache for all three
//! technologies (run once; the repro binaries then start instantly).

use sta_bench::timing_library;
use sta_cells::Technology;

fn main() {
    for tech in Technology::all() {
        let t0 = std::time::Instant::now();
        let tlib = timing_library(&tech);
        println!(
            "{}: {} cells characterized in {:.1} s",
            tech.name,
            tlib.cells.len(),
            t0.elapsed().as_secs_f64()
        );
    }
}
