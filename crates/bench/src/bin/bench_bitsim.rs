//! Bit-parallel 64-lane logic engine benchmark (`BENCH_bitsim.json`).
//!
//! For each catalog circuit the harness:
//!
//! 1. times raw forward simulation of random input vectors — one at a
//!    time through the nine-valued [`ImplicationEngine`] vs 64 per word
//!    through the compiled [`BitSim`] program — and reports ns/vector;
//! 2. enumerates true paths twice — bit-parallel justification
//!    pre-filter on vs off — asserts the two runs produce identical path
//!    sets, arrivals, and witnesses (the filter is refutation-only, so
//!    any divergence is a bug), and reports wall time plus the filter's
//!    own counters (words simulated, lanes filtered, exact justification
//!    calls saved).
//!
//! Usage: `bench_bitsim [--circuit NAME]... [--out PATH]`
//! (default circuits: c17 c432 c880; default out: BENCH_bitsim.json)

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;
use sta_bench::{benchmark, library, timing_library};
use sta_cells::{Corner, Technology};
use sta_core::{EnumerationConfig, PathEnumerator, TruePath};
use sta_logic::{BitSim, Dual, ImplicationEngine, Mask, Schedule, TriVal};

#[derive(Serialize)]
struct VectorSim {
    /// Vectors simulated per timed pass (a multiple of 64).
    vectors: usize,
    scalar_ns_per_vector: f64,
    packed_ns_per_vector: f64,
    /// Packed speedup over one-at-a-time engine simulation.
    speedup: f64,
}

#[derive(Serialize)]
struct EndToEnd {
    exact_ms: f64,
    filtered_ms: f64,
    speedup: f64,
    /// Paths, arrivals, and witness vectors agree between the two modes.
    identical_paths: bool,
    paths: usize,
    bitsim_words: u64,
    bitsim_lanes_filtered: u64,
    bitsim_exact_calls_saved: u64,
    /// Fraction of simulated lanes the filter discharged.
    lanes_filtered_rate: f64,
}

#[derive(Serialize)]
struct CircuitReport {
    name: String,
    vector_sim: VectorSim,
    end_to_end: EndToEnd,
}

#[derive(Serialize)]
struct Report {
    tech: String,
    circuits: Vec<CircuitReport>,
}

fn config(name: &str, corner: Corner, bitsim: bool) -> EnumerationConfig {
    let mut cfg = EnumerationConfig::new(corner).with_bitsim(bitsim);
    // Full enumeration where it is cheap, N-worst where it is not.
    if name == "c17" || name == "c432" {
        cfg.max_paths = Some(100_000);
    } else {
        cfg = cfg.with_n_worst(50);
    }
    cfg
}

fn paths_identical(a: &[TruePath], b: &[TruePath]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.source == y.source
                && x.nodes == y.nodes
                && x.arcs == y.arcs
                && x.input_vector == y.input_vector
                && [(&x.rise, &y.rise), (&x.fall, &y.fall)]
                    .iter()
                    .all(|(s, t)| match (s, t) {
                        (Some(s), Some(t)) => {
                            s.arrival.to_bits() == t.arrival.to_bits()
                                && s.slew.to_bits() == t.slew.to_bits()
                        }
                        (None, None) => true,
                        _ => false,
                    })
        })
}

/// Deterministic xorshift64* stream — no external RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Times the raw vector-simulation throughput of both engines over the
/// same `words * 64` random stable input vectors, best of 3 passes.
fn vector_sim(nl: &sta_netlist::Netlist, lib: &sta_cells::Library, words: usize) -> VectorSim {
    let inputs = nl.inputs().to_vec();
    let outputs = nl.outputs().to_vec();
    // One u64 per (word, input): bit i is input's value in lane i.
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    let stimuli: Vec<Vec<u64>> = (0..words)
        .map(|_| inputs.iter().map(|_| rng.next()).collect())
        .collect();

    let mut eng = ImplicationEngine::new(nl, lib);
    let mut scalar_best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut acc = 0u64;
        for word in &stimuli {
            for lane in 0..64u32 {
                eng.reset();
                for (&pi, bits) in inputs.iter().zip(word) {
                    eng.assign(pi, Dual::stable(bits >> lane & 1 == 1), Mask::BOTH);
                }
                for &po in &outputs {
                    acc += u64::from(eng.value(po).r == sta_logic::V9::S1);
                }
            }
        }
        black_box(acc);
        scalar_best = scalar_best.min(t0.elapsed().as_secs_f64());
    }

    let sched = Schedule::compile(nl, lib);
    let mut sim = BitSim::new(&sched);
    let mut packed_best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut acc = 0u64;
        for word in &stimuli {
            sim.begin(&sched);
            for (&pi, &bits) in inputs.iter().zip(word) {
                sim.require(pi, bits, TriVal::One);
                sim.require(pi, !bits, TriVal::Zero);
            }
            sim.run(&sched, !0);
            for &po in &outputs {
                for lane in 0..64u32 {
                    acc += u64::from(sim.get(po, lane) == Some(TriVal::One));
                }
            }
        }
        black_box(acc);
        packed_best = packed_best.min(t0.elapsed().as_secs_f64());
    }

    let vectors = words * 64;
    let scalar_ns = scalar_best * 1e9 / vectors as f64;
    let packed_ns = packed_best * 1e9 / vectors as f64;
    VectorSim {
        vectors,
        scalar_ns_per_vector: scalar_ns,
        packed_ns_per_vector: packed_ns,
        speedup: scalar_ns / packed_ns,
    }
}

fn main() {
    let mut circuits: Vec<String> = Vec::new();
    let mut out = String::from("BENCH_bitsim.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--circuit" => circuits.push(args.next().expect("--circuit NAME")),
            "--out" => out = args.next().expect("--out PATH"),
            other => panic!("unknown argument {other}"),
        }
    }
    if circuits.is_empty() {
        circuits = ["c17", "c432", "c880"].map(String::from).to_vec();
    }

    let tech = Technology::n130();
    let lib = library();
    let tlib = timing_library(&tech);
    let corner = Corner::nominal(&tech);
    let mut report = Report {
        tech: tech.name.to_string(),
        circuits: Vec::new(),
    };

    for name in &circuits {
        let nl = benchmark(name).mapped.clone();

        let vs = vector_sim(&nl, lib, 64);

        // End-to-end enumeration, both modes, best of 2.
        let run = |bitsim: bool| {
            let cfg = config(name, corner, bitsim);
            let enumr = PathEnumerator::new(&nl, lib, tlib, cfg);
            let mut best = f64::INFINITY;
            let mut result = None;
            for _ in 0..2 {
                let t0 = Instant::now();
                let (paths, stats) = enumr.run();
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                result = Some((paths, stats));
            }
            let (paths, stats) = result.expect("ran");
            (paths, stats, best)
        };
        let (exact_paths, _exact_stats, exact_ms) = run(false);
        let (filt_paths, filt_stats, filt_ms) = run(true);
        let identical = paths_identical(&exact_paths, &filt_paths);
        assert!(
            identical,
            "{name}: path sets diverge with the bit-parallel filter on"
        );

        let simulated_lanes = filt_stats.bitsim_words.saturating_mul(64);
        let circuit = CircuitReport {
            name: name.clone(),
            vector_sim: vs,
            end_to_end: EndToEnd {
                exact_ms,
                filtered_ms: filt_ms,
                speedup: exact_ms / filt_ms,
                identical_paths: identical,
                paths: filt_paths.len(),
                bitsim_words: filt_stats.bitsim_words,
                bitsim_lanes_filtered: filt_stats.bitsim_lanes_filtered,
                bitsim_exact_calls_saved: filt_stats.bitsim_exact_calls_saved,
                lanes_filtered_rate: if simulated_lanes == 0 {
                    0.0
                } else {
                    filt_stats.bitsim_lanes_filtered as f64 / simulated_lanes as f64
                },
            },
        };
        println!(
            "{name}: vector sim {:.1} ns scalar / {:.1} ns packed ({:.1}x), \
             end-to-end {:.1} ms -> {:.1} ms ({:.2}x), {} exact calls saved, \
             identical paths: {}",
            circuit.vector_sim.scalar_ns_per_vector,
            circuit.vector_sim.packed_ns_per_vector,
            circuit.vector_sim.speedup,
            exact_ms,
            filt_ms,
            circuit.end_to_end.speedup,
            circuit.end_to_end.bitsim_exact_calls_saved,
            identical
        );
        report.circuits.push(circuit);
    }

    // The word-level simulator must beat one-at-a-time engine simulation
    // by a wide margin everywhere; the end-to-end win is workload-shaped
    // (reported, not asserted — the filter is correctness-gated instead).
    let packed_wins = report
        .circuits
        .iter()
        .filter(|c| c.vector_sim.speedup >= 8.0)
        .count();
    assert!(
        report.circuits.len() < 2 || packed_wins >= 2,
        "packed simulation must be at least 8x faster than scalar engine \
         simulation on two or more circuits"
    );
    let js = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &js).expect("write report");
    println!("wrote {out}");
}
