//! E6–E8: reproduces the paper's Tables 7, 8 and 9 (delay-estimation
//! error of the developed polynomial model and the commercial-style LUT
//! model against golden electrical simulation).
//!
//! Usage: `repro_table7_8_9 [tech] [circuit...]` — default: all three
//! technologies over the full catalog.

use sta_bench::experiments::errors::{render_rows, run_circuit, ErrorConfig};
use sta_cells::Technology;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let techs: Vec<Technology> = match args.first().and_then(|s| Technology::by_name(s)) {
        Some(t) => vec![t],
        None => Technology::all(),
    };
    let skip = usize::from(args.first().map(|s| Technology::by_name(s).is_some()) == Some(true));
    let selected: Vec<String> = args[skip..].to_vec();
    let default_circuits = [
        "c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
        "c7552",
    ];
    let circuits: Vec<&str> = if selected.is_empty() {
        default_circuits.to_vec()
    } else {
        default_circuits
            .iter()
            .copied()
            .filter(|c| selected.iter().any(|s| s == c))
            .collect()
    };
    let cfg = ErrorConfig::default();
    for tech in techs {
        let mut rows = Vec::new();
        for c in &circuits {
            eprintln!("[{}] measuring {c}...", tech.name);
            rows.push(run_circuit(c, &tech, &cfg));
        }
        print!("{}", render_rows(&rows, &tech));
        println!();
    }
}
