//! E2: reproduces the paper's Figs. 2–3 as a textual transistor-state
//! analysis per sensitization vector.

fn main() {
    print!("{}", sta_bench::experiments::sens_tables::fig2_3());
}
