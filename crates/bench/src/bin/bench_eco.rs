//! Measures what the resident-state ECO path buys over a cold restart,
//! circuit by circuit, and writes `BENCH_serve.json` (repo root).
//!
//! For each circuit the benchmark builds the daemon's resident state (a
//! per-source `SourceCache` plus the compiled corner kernel), applies a
//! single-gate resize at the gate with the smallest dirty-source cone
//! (the canonical near-input ECO), and times two ways of answering the
//! same question on the edited netlist:
//!
//! * **cold** — what a batch restart pays: compile the kernel, enumerate
//!   every source from scratch;
//! * **incremental** — what `sta-repro serve` pays: compute the dirty
//!   cone, re-enumerate only the dirty sources against the resident
//!   kernel, splice into the cached per-source lists.
//!
//! Both answers are digest-compared (the splice-identity invariant of
//! DESIGN.md §5.10) before any latency is reported; a mismatch aborts
//! the benchmark. The headline criterion is `speedup >= 5` on c880 at
//! `n_worst = 50`.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use sta_bench::{benchmark, library, timing_library};
use sta_cells::{Corner, Technology};
use sta_circuits::resize_gate;
use sta_core::{dirty_sources, CertificateSet, EnumerationConfig, PathEnumerator, SourceCache};
use sta_netlist::{GateId, Netlist};
use sta_obs::digest_string;

#[derive(Serialize)]
struct CircuitResult {
    circuit: String,
    n_worst: usize,
    /// Instance name of the resized gate (the net it drives).
    edited_instance: String,
    sources: usize,
    /// Sources re-enumerated by the incremental path.
    dirty_sources: usize,
    paths: usize,
    cold_ms: f64,
    incremental_ms: f64,
    /// `cold_ms / incremental_ms`.
    speedup: f64,
    /// FNV digest of the cold certificate set; the spliced set is
    /// asserted equal before this row is emitted.
    digest: String,
    digest_identical: bool,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    technology: String,
    threads: usize,
    note: &'static str,
    circuits: Vec<CircuitResult>,
}

/// Picks the gate whose resize dirties the fewest sources (ties to the
/// lowest index) — the canonical near-input single-gate ECO.
fn smallest_cone_edit(nl: &Netlist, lib: &sta_cells::Library) -> (String, usize) {
    let mut best: Option<(usize, String)> = None;
    for idx in 0..nl.num_gates() {
        let inst = nl.net_label(nl.gate(GateId::from_index(idx)).output());
        let mut trial = nl.clone();
        let Ok(edit) = resize_gate(&mut trial, lib, &inst) else {
            continue;
        };
        let dirty = dirty_sources(&trial, &edit).iter().filter(|&&d| d).count();
        if best.as_ref().is_none_or(|(d, _)| dirty < *d) {
            best = Some((dirty, inst));
        }
    }
    let (dirty, inst) = best.expect("at least one gate is resizable");
    (inst, dirty)
}

fn main() {
    let only: Option<Vec<String>> = std::env::args()
        .nth(1)
        .map(|s| s.split(',').map(str::to_string).collect());
    let tech = Technology::n90();
    let lib = library();
    let tlib = timing_library(&tech);
    let corner = Corner::nominal(&tech);
    let threads = 1;
    let n_worst = 50;

    let mut circuits = Vec::new();
    for name in ["c432", "c880", "c1908"] {
        if let Some(only) = &only {
            if !only.iter().any(|o| o == name) {
                continue;
            }
        }
        let nl = benchmark(name).mapped.clone();
        let (inst, dirty_count) = smallest_cone_edit(&nl, lib);

        // Resident state, built once before the edit arrives (untimed:
        // the daemon amortizes it over the whole session).
        let per_src = EnumerationConfig::new(corner)
            .with_n_worst(n_worst)
            .with_threads(threads)
            .with_per_source_n_worst(true);
        let enumr = PathEnumerator::new(&nl, lib, tlib, per_src.clone());
        let (mut cache, stats) = SourceCache::build(&enumr);
        assert!(!stats.truncated, "{name}: resident build truncated");
        let kernel = enumr.kernel_arc();
        drop(enumr);

        let mut edited = nl.clone();
        let edit = resize_gate(&mut edited, lib, &inst).expect("chosen gate resizes");

        // Incremental: dirty cone -> filtered re-enumeration against the
        // resident kernel -> splice.
        let t0 = Instant::now();
        let dirty = dirty_sources(&edited, &edit);
        let upd_cfg = per_src.clone().with_source_filter(Arc::new(dirty));
        let upd = PathEnumerator::with_prebuilt(&edited, lib, tlib, upd_cfg, kernel, None);
        let stats = cache.update(&upd);
        let spliced = CertificateSet::new(&edited, 60.0, cache.splice());
        let incremental_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(!stats.truncated, "{name}: incremental update truncated");

        // Cold: what a batch restart pays for the same answer.
        let cold_cfg = EnumerationConfig::new(corner)
            .with_n_worst(n_worst)
            .with_threads(threads);
        let t0 = Instant::now();
        let (cold_paths, cold_stats) = PathEnumerator::new(&edited, lib, tlib, cold_cfg).run();
        let cold = CertificateSet::new(&edited, 60.0, cold_paths);
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(!cold_stats.truncated, "{name}: cold run truncated");

        let digest = digest_string(cold.to_json().as_bytes());
        let identical = digest_string(spliced.to_json().as_bytes()) == digest;
        assert!(
            identical,
            "{name}: spliced digest diverged from the cold run"
        );

        let speedup = cold_ms / incremental_ms;
        println!(
            "{name:>6}: edit {inst:<12} dirty {dirty_count:>3}/{:<3} sources  \
             cold {cold_ms:9.2} ms  incremental {incremental_ms:9.2} ms  ({speedup:6.1}x)",
            cache.num_sources(),
        );
        circuits.push(CircuitResult {
            circuit: name.to_string(),
            n_worst,
            edited_instance: inst,
            sources: cache.num_sources(),
            dirty_sources: dirty_count,
            paths: spliced.paths.len(),
            cold_ms,
            incremental_ms,
            speedup,
            digest,
            digest_identical: identical,
        });
    }

    let report = Report {
        bench: "serve",
        technology: tech.name.clone(),
        threads,
        note: "single-gate resize at the smallest dirty cone; incremental = dirty-cone \
               re-enumeration against the resident kernel + splice, digest-asserted \
               identical to the cold restart before timing is reported",
        circuits,
    };
    std::fs::write(
        "BENCH_serve.json",
        serde_json::to_string_pretty(&report).unwrap(),
    )
    .unwrap();
    println!("wrote BENCH_serve.json");
}
