//! Runs every reproduction experiment in sequence (E1–E9) and prints the
//! full report. Expect tens of minutes on first run (library
//! characterization for three technologies is cached afterwards).

use sta_bench::experiments::{ablation, delay_tables, errors, sens_tables, table5, table6};
use sta_cells::Technology;

fn main() {
    println!("=== E1: Tables 1-2 ===");
    print!("{}", sens_tables::table1_2());
    println!("=== E2: Figs. 2-3 ===");
    print!("{}", sens_tables::fig2_3());
    println!("=== E3: Tables 3-4 ===");
    print!("{}", delay_tables::table3_4(50.0));
    println!("=== E4: Table 5 ===");
    print!("{}", table5::render(&Technology::n130()));
    println!("\n=== E5: Table 6 (130nm) ===");
    let heavy = || table6::Table6Config {
        max_paths: Some(60_000),
        max_decisions: 6_000_000,
        ..Default::default()
    };
    let plan: Vec<(&str, table6::Table6Config)> = vec![
        ("c17", Default::default()),
        ("c432", heavy()),
        ("c499", Default::default()),
        ("c880", heavy()),
        (
            "c1355",
            table6::Table6Config {
                max_decisions: 5_000_000,
                skip_baseline: true,
                ..Default::default()
            },
        ),
        ("c1908", heavy()),
        ("c2670", heavy()),
        ("c3540", heavy()),
        ("c5315", heavy()),
        (
            "c6288",
            table6::Table6Config {
                n_worst: Some(1000),
                max_paths: Some(30_000),
                max_decisions: 6_000_000,
                ..Default::default()
            },
        ),
        ("c7552", heavy()),
    ];
    let rows: Vec<_> = plan
        .iter()
        .map(|(name, cfg)| {
            eprintln!("table6: {name}...");
            table6::run_circuit(name, &Technology::n130(), cfg)
        })
        .collect();
    print!("{}", table6::render_rows(&rows));
    println!("\n=== E6-E8: Tables 7-9 ===");
    let cfg = errors::ErrorConfig::default();
    for tech in Technology::all() {
        let circuits = [
            "c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
            "c7552",
        ];
        let rows: Vec<_> = circuits
            .iter()
            .map(|c| {
                eprintln!("[{}] errors: {c}...", tech.name);
                errors::run_circuit(c, &tech, &cfg)
            })
            .collect();
        print!("{}", errors::render_rows(&rows, &tech));
        println!();
    }
    println!("=== E9: model ablation ===");
    for tech in Technology::all() {
        print!("{}", ablation::render(&tech));
        println!();
    }
}
