//! E5: reproduces the paper's Table 6 (critical-path identification:
//! developed single-pass tool vs the two-step baseline).
//!
//! Usage: `repro_table6 [tech] [circuit...]` — defaults to 130nm over the
//! full catalog with per-circuit budgets mirroring the paper's setup
//! (backtrack-limit sweep on c6288, two limits on c7552).

use sta_bench::experiments::table6::{render_rows, run_circuit, Table6Config};
use sta_cells::Technology;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tech = args
        .first()
        .and_then(|s| Technology::by_name(s))
        .unwrap_or_else(Technology::n130);
    let skip = usize::from(args.first().map(|s| Technology::by_name(s).is_some()) == Some(true));
    let selected: Vec<String> = args[skip..].to_vec();

    let heavy = |paths: usize| Table6Config {
        max_paths: Some(paths),
        max_decisions: 6_000_000,
        ..Table6Config::default()
    };
    let mut plan: Vec<(&str, Table6Config)> = vec![
        ("c17", Table6Config::default()),
        ("c432", heavy(60_000)),
        ("c499", Table6Config::default()),
        ("c880", heavy(120_000)),
        (
            "c1355",
            Table6Config {
                max_paths: Some(60_000),
                // Reconvergent NAND-expanded parity logic defeats the
                // static toggle filters (deltas are conservative through
                // NAND), so bound the search hard; the paper's own Table 6
                // leaves c1355's commercial columns blank as well.
                max_decisions: 5_000_000,
                skip_baseline: true,
                ..Table6Config::default()
            },
        ),
        ("c1908", heavy(60_000)),
        ("c2670", heavy(60_000)),
        ("c3540", heavy(60_000)),
        ("c5315", heavy(60_000)),
        // The paper sweeps the backtrack limit on c6288.
        (
            "c6288",
            Table6Config {
                backtrack_limit: 1000,
                n_worst: Some(1000),
                max_paths: Some(30_000),
                max_decisions: 1_500_000,
                ..Table6Config::default()
            },
        ),
        (
            "c6288",
            Table6Config {
                backtrack_limit: 5000,
                n_worst: Some(1000),
                max_paths: Some(30_000),
                max_decisions: 1_500_000,
                ..Table6Config::default()
            },
        ),
        (
            "c6288",
            Table6Config {
                backtrack_limit: 25000,
                n_worst: Some(1000),
                max_paths: Some(30_000),
                max_decisions: 1_500_000,
                ..Table6Config::default()
            },
        ),
        (
            "c7552",
            Table6Config {
                backtrack_limit: 1000,
                max_paths: Some(60_000),
                max_decisions: 2_000_000,
                ..Table6Config::default()
            },
        ),
        (
            "c7552",
            Table6Config {
                backtrack_limit: 5000,
                k_paths: 5000,
                max_paths: Some(60_000),
                max_decisions: 2_000_000,
                ..Table6Config::default()
            },
        ),
    ];
    if !selected.is_empty() {
        plan.retain(|(name, _)| selected.iter().any(|s| s == name));
    }
    let mut rows = Vec::new();
    for (name, cfg) in &plan {
        eprintln!(
            "running {name} (backtrack limit {})...",
            cfg.backtrack_limit
        );
        let row = run_circuit(name, &tech, cfg);
        eprintln!(
            "  {name}: vectors={}{} multi={} devCPU={:.1}s | base: {}p {}T {}F {}L in {:.1}s pred={:.2}",
            row.input_vectors,
            if row.dev_truncated { "*" } else { "" },
            row.multi_input_paths,
            row.dev_cpu_s,
            row.base_paths,
            row.base_true,
            row.base_false_wrong,
            row.base_limited,
            row.base_cpu_s,
            row.worst_delay_prediction_ratio,
        );
        rows.push(row);
    }
    print!("{}", render_rows(&rows));
}
