//! Raw per-vector delay dump (the data behind Tables 3–4), used while
//! tuning the technology parameter sets.

use sta_bench::experiments::delay_tables::vector_delays;
use sta_cells::Edge;

fn main() {
    for (cell, pin) in [("AO22", 0u8), ("OA12", 2u8)] {
        for row in vector_delays(cell, pin, 50.0) {
            let diffs: Vec<String> = (2..=row.delays.len())
                .map(|k| format!("{:+.1}%", row.diff_pct(k)))
                .collect();
            let delays: Vec<String> = row.delays.iter().map(|d| format!("{d:.1}")).collect();
            println!(
                "{:>5} {:<4} in-{:<5} [{}] diffs [{}]",
                row.tech,
                cell,
                match row.edge {
                    Edge::Rise => "rise",
                    Edge::Fall => "fall",
                },
                delays.join(", "),
                diffs.join(", ")
            );
        }
    }
}
