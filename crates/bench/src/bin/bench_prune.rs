//! Measures what nogood learning and the per-source dominance cut buy
//! the N-worst sensitization search, circuit by circuit, and writes
//! `BENCH_prune.json` (repo root).
//!
//! For every circuit the same configuration is run twice — learning off,
//! then learning on — and the raw search-effort counters (justification
//! decisions, conflicts, bound cuts, wall clock) are reported side by
//! side, together with a byte-identity check of the two path sets: the
//! pruning layer is refutation-only, so any divergence is a bug, not a
//! tuning artifact. c6288 (the 16×16 array multiplier) is a known
//! exponential blow-up and runs under a hard decision budget; its row is
//! reported honestly as a truncated attempt, not a completed analysis.

use std::time::Instant;

use serde::Serialize;
use sta_bench::{benchmark, library, timing_library};
use sta_cells::{Corner, Technology};
use sta_core::{EnumerationConfig, EnumerationStats, PathEnumerator};

/// One engine configuration measured twice.
#[derive(Serialize)]
struct ModeResult {
    learning: bool,
    /// Wall-clock of the measured run, milliseconds (single run — the
    /// counters, not the clock, are the primary signal here).
    wall_ms: f64,
    /// Search decisions (arc choices + justification candidates).
    decisions: u64,
    /// Decisions spent inside justification calls (the pool learning
    /// targets); the split shows how much went to refutations.
    justify_decisions: u64,
    justify_unsat_decisions: u64,
    conflicts: u64,
    /// Subtrees pruned by the static / tightened N-worst bound.
    pruned: u64,
    paths: usize,
    truncated: bool,
    /// Learning-mode counters (all zero with learning off).
    nogoods_stored: u64,
    nogood_hits: u64,
    decisions_saved: u64,
    bound_cuts: u64,
    learn_attempts: u64,
    learn_side_clauses: u64,
    learn_verify_failures: u64,
}

#[derive(Serialize)]
struct CircuitResult {
    circuit: String,
    n_worst: usize,
    /// Per-circuit decision budget (0 = unlimited); keeps CI bounded on
    /// the big ISCAS members and caps the honest c6288 attempt.
    max_decisions: u64,
    worst_arrival_ps: f64,
    off: ModeResult,
    on: ModeResult,
    /// `100 * (1 - on.decisions / off.decisions)`.
    decision_reduction_pct: f64,
    /// `100 * (1 - on.justify_decisions / off.justify_decisions)` — the
    /// headline criterion: how much of the backward-justification search
    /// the pruning layer eliminated.
    justify_decision_reduction_pct: f64,
    /// The two runs' canonical path sets are byte-identical (always
    /// asserted; echoed here for the stored artifact).
    paths_identical: bool,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    technology: String,
    note: &'static str,
    circuits: Vec<CircuitResult>,
}

fn run(
    nl: &sta_netlist::Netlist,
    lib: &sta_cells::Library,
    tlib: &sta_charlib::TimingLibrary,
    cfg: &EnumerationConfig,
) -> (Vec<sta_core::TruePath>, EnumerationStats, f64) {
    let enumr = PathEnumerator::new(nl, lib, tlib, cfg.clone());
    let t0 = Instant::now();
    let (paths, stats) = enumr.run();
    (paths, stats, t0.elapsed().as_secs_f64() * 1e3)
}

fn mode_result(learning: bool, stats: &EnumerationStats, wall_ms: f64, paths: usize) -> ModeResult {
    ModeResult {
        learning,
        wall_ms,
        decisions: stats.decisions,
        justify_decisions: stats.justify_decisions,
        justify_unsat_decisions: stats.justify_unsat_decisions,
        conflicts: stats.conflicts,
        pruned: stats.pruned,
        paths,
        truncated: stats.truncated,
        nogoods_stored: stats.learn_stored,
        nogood_hits: stats.learn_hits,
        decisions_saved: stats.learn_decisions_saved,
        bound_cuts: stats.learn_bound_cuts,
        learn_attempts: stats.learn_attempts,
        learn_side_clauses: stats.learn_side_clauses,
        learn_verify_failures: stats.learn_verify_failures,
    }
}

fn main() {
    let only: Option<Vec<String>> = std::env::args()
        .nth(1)
        .map(|s| s.split(',').map(str::to_string).collect());
    let tech = Technology::n90();
    let lib = library();
    let tlib = timing_library(&tech);
    let corner = Corner::nominal(&tech);

    // (circuit, n_worst, max_decisions). Budgets are per the catalog
    // promotion: every circuit completes or truncates deterministically
    // well inside CI time. c6288 cannot complete — its budget is the
    // honest-attempt cap.
    let plan: &[(&str, usize, u64)] = &[
        ("c17", 3, 0),
        ("c432", 50, 0),
        ("c880", 50, 0),
        ("c1908", 50, 2_000_000),
        ("c2670", 50, 2_000_000),
        ("c3540", 50, 2_000_000),
        ("c5315", 50, 2_000_000),
        ("c7552", 50, 2_000_000),
        ("c6288", 20, 1_000_000),
    ];

    let mut circuits = Vec::new();
    for &(name, n_worst, max_decisions) in plan {
        if let Some(only) = &only {
            if !only.iter().any(|o| o == name) {
                continue;
            }
        }
        let nl = benchmark(name).mapped.clone();
        let mut cfg = EnumerationConfig::new(corner).with_n_worst(n_worst);
        if max_decisions != 0 {
            cfg.max_decisions = max_decisions;
        }
        let (paths_off, stats_off, ms_off) = run(&nl, lib, tlib, &cfg.clone().with_learning(false));
        let (paths_on, stats_on, ms_on) = run(&nl, lib, tlib, &cfg.clone().with_learning(true));

        // Refutation-only / bound-safe claim, checked on every circuit
        // whose run is not cut short by the global decision budget (a
        // truncated run can stop at a different point — see
        // `EnumerationConfig::learning`).
        let comparable = !stats_off.truncated && !stats_on.truncated;
        let identical =
            serde_json::to_string(&paths_off).unwrap() == serde_json::to_string(&paths_on).unwrap();
        assert!(
            !comparable || identical,
            "{name}: learning changed the emitted path set"
        );

        let reduction = if stats_off.decisions > 0 {
            100.0 * (1.0 - stats_on.decisions as f64 / stats_off.decisions as f64)
        } else {
            0.0
        };
        let justify_reduction = if stats_off.justify_decisions > 0 {
            100.0 * (1.0 - stats_on.justify_decisions as f64 / stats_off.justify_decisions as f64)
        } else {
            0.0
        };
        println!(
            "{name:>6}: n{n_worst:<3} decisions {:>12} -> {:>12}  ({reduction:5.1} %)  \
             justify {:>12} -> {:>12}  ({justify_reduction:5.1} %)  hits {:>6}  \
             bound cuts {:>8}  {:7.0} ms -> {:7.0} ms{}",
            stats_off.decisions,
            stats_on.decisions,
            stats_off.justify_decisions,
            stats_on.justify_decisions,
            stats_on.learn_hits,
            stats_on.learn_bound_cuts,
            ms_off,
            ms_on,
            if stats_on.truncated { "  (budget)" } else { "" },
        );
        circuits.push(CircuitResult {
            circuit: name.to_string(),
            n_worst,
            max_decisions,
            worst_arrival_ps: paths_on.first().map_or(0.0, |p| p.worst_arrival()),
            off: mode_result(false, &stats_off, ms_off, paths_off.len()),
            on: mode_result(true, &stats_on, ms_on, paths_on.len()),
            decision_reduction_pct: reduction,
            justify_decision_reduction_pct: justify_reduction,
            paths_identical: identical,
        });
    }

    let report = Report {
        bench: "prune",
        technology: tech.name.clone(),
        note: "same configuration run learning-off then learning-on; path sets \
               asserted byte-identical on every non-truncated run; c6288 is a \
               budget-capped attempt, not a completed analysis",
        circuits,
    };
    std::fs::write(
        "BENCH_prune.json",
        serde_json::to_string_pretty(&report).unwrap(),
    )
    .unwrap();
    println!("wrote BENCH_prune.json");
}
