//! E1: reproduces the paper's Tables 1–2 (sensitization vectors of AO22
//! and OA12).

fn main() {
    print!("{}", sta_bench::experiments::sens_tables::table1_2());
}
