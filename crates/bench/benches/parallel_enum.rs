//! Criterion bench for the parallel enumeration engine: the same
//! N-worst workload at 1/2/4/8 worker threads.
//!
//! On a multi-core host the root-task sharding should scale the
//! wall-clock near-linearly until the task count or the serial merge
//! dominates; on a single-core host (CI containers) the thread counts
//! all degenerate to the serial runtime plus pool overhead, which this
//! bench then quantifies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sta_bench::{benchmark, library, timing_library};
use sta_cells::{Corner, Technology};
use sta_core::{EnumerationConfig, PathEnumerator};

fn bench_parallel(c: &mut Criterion) {
    let tech = Technology::n130();
    let lib = library();
    let tlib = timing_library(&tech);
    let corner = Corner::nominal(&tech);
    let mut group = c.benchmark_group("parallel_enum");
    group.sample_size(10);
    for name in ["c432", "c880"] {
        let nl = benchmark(name).mapped.clone();
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                b.iter(|| {
                    let mut cfg = EnumerationConfig::new(corner)
                        .with_n_worst(50)
                        .with_threads(threads);
                    cfg.max_paths = Some(5_000);
                    cfg.max_decisions = 2_000_000;
                    PathEnumerator::new(&nl, lib, tlib, cfg).run()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
