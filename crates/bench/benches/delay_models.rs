//! Criterion bench backing the paper's §IV.A claim that the analytical
//! polynomial model evaluates faster than LUT interpolation, plus the
//! fitting cost of the one-time extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sta_charlib::poly::{PolyModel, Sample};
use sta_charlib::Lut2d;

fn training_samples() -> Vec<Sample> {
    let mut out = Vec::new();
    for fo in [0.5, 1.0, 2.0, 4.0, 8.0] {
        for t_in in [10.0, 30.0, 80.0, 200.0, 500.0] {
            for temperature in [0.0, 25.0, 75.0, 125.0] {
                for vdd in [0.9, 1.0, 1.1] {
                    out.push(Sample {
                        fo,
                        t_in,
                        temperature,
                        vdd,
                        value: 20.0 + 9.0 * fo + 0.2 * t_in + 0.02 * temperature
                            - 28.0 * (vdd - 1.0)
                            + 0.01 * fo * t_in,
                    });
                }
            }
        }
    }
    out
}

fn bench_models(c: &mut Criterion) {
    let samples = training_samples();
    let poly = PolyModel::fit_auto(&samples, [3, 3, 2, 2], 0.01).unwrap();
    let compiled = poly.compile(25.0, 1.0);
    let lut = Lut2d::tabulate(
        vec![0.5, 2.0, 5.0, 8.0],
        vec![10.0, 80.0, 250.0, 500.0],
        |fo, tin| 20.0 + 9.0 * fo + 0.2 * tin + 0.01 * fo * tin,
    );
    let mut group = c.benchmark_group("delay_model_eval");
    group.bench_function("poly_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                let fo = 0.5 + (i as f64) * 0.07;
                acc += poly.eval(black_box(fo), black_box(55.0), 25.0, 1.0);
            }
            acc
        })
    });
    group.bench_function("compiled_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                let fo = 0.5 + (i as f64) * 0.07;
                acc += compiled.eval(black_box(fo), black_box(55.0));
            }
            acc
        })
    });
    group.bench_function("lut_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                let fo = 0.5 + (i as f64) * 0.07;
                acc += lut.eval(black_box(fo), black_box(55.0));
            }
            acc
        })
    });
    group.finish();

    let mut fit_group = c.benchmark_group("model_fitting");
    fit_group.sample_size(10);
    fit_group.bench_function("poly_fit_fixed_orders", |b| {
        b.iter(|| PolyModel::fit(black_box(&samples), [2, 2, 1, 1]))
    });
    fit_group.bench_function("poly_fit_auto", |b| {
        b.iter(|| PolyModel::fit_auto(black_box(&samples), [3, 3, 2, 2], 0.01))
    });
    fit_group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
