//! Criterion bench for the implication engine: assign/propagate/rollback
//! throughput on a real mapped circuit — the inner loop of the true-path
//! search.

use criterion::{criterion_group, criterion_main, Criterion};

use sta_bench::{benchmark, library};
use sta_logic::{Dual, ImplicationEngine, Mask};

fn bench_implication(c: &mut Criterion) {
    let lib = library();
    let bench = benchmark("c880");
    let nl = &bench.mapped;
    let inputs: Vec<_> = nl.inputs().to_vec();

    let mut group = c.benchmark_group("implication_engine");
    group.bench_function("assign_cone_rollback_c880", |b| {
        let mut eng = ImplicationEngine::new(nl, lib);
        b.iter(|| {
            let mark = eng.mark();
            // Launch a transition and pin a handful of side values — the
            // same mix of work the enumerator issues per arc.
            let mut mask = Mask::BOTH;
            let c0 = eng.assign(inputs[0], Dual::transition(false), mask);
            mask = mask.minus(c0);
            for (i, &pi) in inputs.iter().enumerate().skip(1).take(8) {
                if !mask.any() {
                    break;
                }
                let conflicts = eng.assign(pi, Dual::stable(i % 2 == 0), mask);
                mask = mask.minus(conflicts);
            }
            eng.rollback(mark);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_implication);
criterion_main!(benches);
