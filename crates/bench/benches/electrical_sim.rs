//! Criterion bench for the electrical-simulation substrate: single-arc
//! transient cost (the unit of characterization work) and golden path
//! simulation cost (the unit of Tables 7–9 verification work).

use criterion::{criterion_group, criterion_main, Criterion};

use sta_bench::library;
use sta_cells::{Corner, Edge, Technology};
use sta_esim::cellsim::{cell_input_cap, simulate_arc, Drive};
use sta_esim::pathsim::{simulate_path, PathStage};

fn bench_esim(c: &mut Criterion) {
    let lib = library();
    let tech = Technology::n90();
    let corner = Corner::nominal(&tech);
    let ao22 = lib.cell_by_name("AO22").expect("standard cell");
    let inv = lib.cell_by_name("INV").expect("standard cell");
    let load = 4.0 * cell_input_cap(ao22, &tech);

    let mut group = c.benchmark_group("electrical_sim");
    group.sample_size(20);
    group.bench_function("ao22_arc_transient", |b| {
        b.iter(|| {
            simulate_arc(
                ao22,
                &tech,
                corner,
                &ao22.vectors_of(0)[1],
                Edge::Fall,
                Drive::Ramp { transition: 60.0 },
                load,
            )
            .expect("arc simulates")
        })
    });
    group.bench_function("five_stage_path", |b| {
        let stages: Vec<PathStage<'_>> = (0..5)
            .map(|i| {
                if i % 2 == 0 {
                    PathStage {
                        cell: inv,
                        vector: &inv.vectors_of(0)[0],
                        load_ff: 4.0,
                    }
                } else {
                    PathStage {
                        cell: ao22,
                        vector: &ao22.vectors_of(0)[1],
                        load_ff: load,
                    }
                }
            })
            .collect();
        b.iter(|| simulate_path(&stages, &tech, corner, Edge::Rise, 60.0).expect("path simulates"))
    });
    group.finish();
}

criterion_group!(benches, bench_esim);
criterion_main!(benches);
