//! Criterion bench for the CPU-time columns of Table 6: the developed
//! single-pass enumerator versus the two-step baseline, per circuit.
//!
//! The paper's claim is that the developed tool needs *less* CPU time
//! than the commercial tool while reporting more (and all-vector) paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sta_baseline::{run_baseline, BaselineConfig};
use sta_bench::{benchmark, library, timing_library};
use sta_cells::{Corner, Technology};
use sta_core::{EnumerationConfig, PathEnumerator};

fn bench_enumeration(c: &mut Criterion) {
    let tech = Technology::n130();
    let lib = library();
    let tlib = timing_library(&tech);
    let corner = Corner::nominal(&tech);
    let mut group = c.benchmark_group("table6_cpu");
    group.sample_size(10);
    for name in ["c17", "sample"] {
        let bench = benchmark(name);
        let nl = bench.mapped.clone();
        group.bench_with_input(BenchmarkId::new("developed_full", name), &nl, |b, nl| {
            b.iter(|| {
                let mut cfg = EnumerationConfig::new(corner);
                cfg.max_paths = Some(200_000);
                PathEnumerator::new(nl, lib, tlib, cfg).run()
            })
        });
    }
    // Matched-workload comparison on the mid-size circuits: the developed
    // tool restricted to the N worst paths versus the baseline exploring
    // K = N structural paths.
    for name in ["c432", "c880"] {
        let bench = benchmark(name);
        let nl = bench.mapped.clone();
        group.bench_with_input(BenchmarkId::new("developed_n50", name), &nl, |b, nl| {
            b.iter(|| {
                let mut cfg = EnumerationConfig::new(corner).with_n_worst(50);
                cfg.max_paths = Some(5_000);
                cfg.max_decisions = 2_000_000;
                PathEnumerator::new(nl, lib, tlib, cfg).run()
            })
        });
        group.bench_with_input(BenchmarkId::new("baseline_k50", name), &nl, |b, nl| {
            b.iter(|| run_baseline(nl, lib, tlib, &BaselineConfig::new(50, 1000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
