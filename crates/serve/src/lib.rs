//! `sta-serve` — the persistent timing daemon behind `sta-repro serve`.
//!
//! Batch STA pays its dominant costs — library characterization, corner
//! kernel compilation, and the full sensitization search — on every
//! invocation. An ECO flow asks the same circuit thousands of questions
//! with one-gate edits in between, so this crate keeps everything
//! expensive *resident* and re-derives only what an edit invalidates:
//!
//! * characterized [`sta_charlib::TimingLibrary`]s, one per technology,
//!   shared by every loaded circuit;
//! * the corner-compiled [`sta_charlib::CompiledCorner`] kernel table per
//!   circuit (netlist-independent: it survives edits untouched);
//! * the compiled `sta-logic` bitsim [`sta_logic::Schedule`]
//!   (netlist-dependent: rebuilt once per edit, not per request);
//! * the per-source path cache ([`sta_core::SourceCache`]) and the last
//!   spliced [`sta_core::CertificateSet`] with its FNV digest.
//!
//! The wire protocol is newline-delimited JSON on stdin/stdout (or a Unix
//! socket): one request object per line, one response object per line,
//! `"ok"` distinguishing results from errors. The request schema is
//! checked in at `docs/serve.schema.json` and validated by
//! `sta_obs::schema`; see DESIGN.md §5.10 for the full protocol and the
//! ECO cone-splice proof obligation.
//!
//! # Example
//!
//! ```no_run
//! use sta_serve::{Server, ServerConfig};
//!
//! let mut server = Server::new(ServerConfig::default());
//! let (reply, _shutdown) =
//!     server.handle_line(r#"{"op":"load","circuit":"c17","nworst":10}"#);
//! assert!(reply.contains("\"ok\": true"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod server;

pub use protocol::{
    drift_schema_enum, drift_schema_field, parse_request, protocol_spec, EditKind, Request,
    SERVE_SCHEMA_JSON,
};
#[cfg(unix)]
pub use server::serve_socket;
pub use server::{serve_lines, serve_stdio, Server, ServerConfig};
