//! The daemon itself: resident state, request dispatch, and I/O loops.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;

use serde::Value;
use sta_cells::{Corner, Library, Technology};
use sta_charlib::{characterize_cached, CharConfig, CompiledCorner, TimingLibrary};
use sta_circuits::{catalog, resize_gate, rewire_net, swap_gate, GateEdit};
use sta_core::{
    arc_intervals, arc_intervals_compiled, dirty_sources, slack_report, static_bounds,
    static_bounds_compiled, AnalysisRequest, CertificateSet, CornerDef, EnumerationConfig, Mode,
    PathEnumerator, Scenario, SourceCache, TruePath, ARC_SWEEP_MARGIN,
};
use sta_logic::Schedule;
use sta_netlist::Netlist;
use sta_obs::{digest_string, Observer, SessionCircuit, SessionManifest};

use crate::protocol::{jmap, jstr, parse_request, EditKind, Request};

/// Fraction of the structural worst arrival used as the default timing
/// requirement (matches `AnalysisContext::slack`). Recomputed from the
/// *edited* netlist after every ECO edit — a requirement inherited from a
/// previous revision would silently drift away from its own definition.
const DEFAULT_REQUIRED_FRACTION: f64 = 0.9;

/// Reply fields for one request plus the session-terminating flag
/// (`true` only for `shutdown`); `Err` carries a protocol-level message
/// turned into an error reply without killing the session.
type DispatchReply = Result<(Vec<(&'static str, Value)>, bool), String>;

/// Daemon-wide configuration, fixed for the lifetime of the session.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Characterization grid (the CLI maps `--fast-char` to
    /// [`CharConfig::fast`]).
    pub char_config: CharConfig,
    /// Characterization disk-cache directory.
    pub cache_dir: PathBuf,
    /// Primary-input transition time, ps.
    pub input_slew: f64,
    /// Observability handle; request spans and `serve.*` counters are
    /// recorded into it.
    pub obs: Observer,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            char_config: CharConfig::standard(),
            cache_dir: PathBuf::from(".char-cache"),
            input_slew: 60.0,
            obs: Observer::disabled(),
        }
    }
}

/// One scenario of a resident MCMM batch, kept for the v2 `scenario`
/// selector on `paths` and `verify`.
struct BatchScenario {
    scenario: Scenario,
    certs: CertificateSet,
    digest: String,
    truncated: bool,
}

/// The last `analyze_batch` result for a circuit. Computed against one
/// netlist revision and dropped by the next edit — a batch over a stale
/// revision would silently answer for a netlist that no longer exists.
struct BatchResident {
    /// The per-scenario path cap the batch ran with (`verify` re-runs
    /// with the same cap).
    n_worst: Option<usize>,
    scenarios: Vec<BatchScenario>,
}

/// Everything kept resident for one loaded circuit.
struct CircuitSession {
    tech: Technology,
    corner: Corner,
    netlist: Netlist,
    tlib: Arc<TimingLibrary>,
    /// Corner kernel table: netlist-independent, survives every edit.
    kernel: Option<Arc<CompiledCorner>>,
    /// Bitsim schedule: netlist-dependent, rebuilt once per edit.
    schedule: Option<Arc<Schedule>>,
    cache: SourceCache,
    /// Last spliced result and its digest (the path-set identity).
    certs: CertificateSet,
    digest: String,
    n_worst: Option<usize>,
    threads: usize,
    revision: u64,
    incremental_updates: u64,
    full_rebuilds: u64,
    truncated: bool,
    structural_worst_ps: f64,
    required_ps: f64,
    /// Resident MCMM batch results, when an `analyze_batch` has run at
    /// the current revision.
    batch: Option<BatchResident>,
}

/// Looks up one scenario of the circuit's resident batch by its
/// `corner/mode` name.
fn resident_scenario<'s>(
    session: &'s CircuitSession,
    circuit: &str,
    name: &str,
) -> Result<&'s BatchScenario, String> {
    let batch = session.batch.as_ref().ok_or_else(|| {
        format!("circuit {circuit:?} has no resident batch (send an analyze_batch request first)")
    })?;
    batch
        .scenarios
        .iter()
        .find(|s| s.scenario.name() == name)
        .ok_or_else(|| {
            let have: Vec<String> = batch.scenarios.iter().map(|s| s.scenario.name()).collect();
            format!("scenario {name:?} is not in the resident batch (have {have:?})")
        })
}

/// Parses the `modes` list of an `analyze_batch` request: comma-separated
/// `name=PERIOD_PS` entries, each becoming a single-clock SDC mode.
fn parse_modes(list: &str) -> Result<Vec<Mode>, String> {
    let mut out = Vec::new();
    for item in list.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (name, period) = item
            .split_once('=')
            .ok_or_else(|| format!("bad mode spec {item:?} (expected name=PERIOD_PS)"))?;
        let period: f64 = period
            .trim()
            .parse()
            .map_err(|_| format!("bad mode spec {item:?} (expected name=PERIOD_PS)"))?;
        if !(period.is_finite() && period > 0.0) {
            return Err(format!("bad mode spec {item:?} (period must be positive)"));
        }
        out.push(Mode::with_sdc(
            name.trim(),
            &format!("create_clock -period {period}\n"),
        ));
    }
    if out.is_empty() {
        return Err("empty modes list (expected name=PERIOD_PS entries)".to_string());
    }
    Ok(out)
}

impl CircuitSession {
    /// The enumeration configuration shared by cache builds and updates.
    fn per_source_cfg(&self, input_slew: f64) -> EnumerationConfig {
        let mut cfg = EnumerationConfig::new(self.corner)
            .with_threads(self.threads)
            .with_per_source_n_worst(true);
        if let Some(n) = self.n_worst {
            cfg = cfg.with_n_worst(n);
        }
        cfg.input_slew = input_slew;
        cfg
    }

    /// Recomputes the structural worst arrival and the default
    /// requirement from the *current* netlist revision.
    fn refresh_required(&mut self, input_slew: f64) {
        let probe = slack_report(&self.netlist, &self.tlib, self.corner, input_slew, 0.0);
        self.structural_worst_ps = probe.timing.worst_arrival(&self.netlist);
        self.required_ps = self.structural_worst_ps * DEFAULT_REQUIRED_FRACTION;
    }
}

/// The persistent timing daemon. One instance owns every resident
/// circuit; [`Server::handle_line`] processes one protocol request.
pub struct Server {
    cfg: ServerConfig,
    lib: Library,
    /// Characterized timing libraries, resident per technology name.
    timings: HashMap<String, Arc<TimingLibrary>>,
    /// Loaded circuits in load order (order matters for the manifest).
    circuits: Vec<(String, CircuitSession)>,
    requests: u64,
    errors: u64,
    /// Set once a `shutdown` request has been acknowledged.
    shutting_down: bool,
}

impl Server {
    /// Creates an empty daemon session.
    pub fn new(cfg: ServerConfig) -> Self {
        Server {
            cfg,
            lib: Library::standard(),
            timings: HashMap::new(),
            circuits: Vec::new(),
            requests: 0,
            errors: 0,
            shutting_down: false,
        }
    }

    /// Processes one request line and returns `(response line, shutdown)`.
    /// Responses are single-line JSON objects; protocol errors become
    /// `{"ok": false, "error": ...}` responses, never a dead connection.
    pub fn handle_line(&mut self, line: &str) -> (String, bool) {
        self.requests += 1;
        self.cfg.obs.counter("serve.requests").add(1);
        let (reply, shutdown) = match parse_request(line) {
            Ok((req, id)) => {
                let op = op_name(&req);
                let span = self
                    .cfg
                    .obs
                    .span_with("serve-request", vec![("op", op.to_string())]);
                let outcome = self.dispatch(req);
                drop(span);
                match outcome {
                    Ok((mut fields, shutdown)) => {
                        let mut all = vec![("ok", Value::Bool(true)), ("op", jstr(op))];
                        if let Some(id) = id {
                            all.push(("id", id));
                        }
                        all.append(&mut fields);
                        (jmap(all), shutdown)
                    }
                    Err(msg) => (self.error_reply(Some(op), id, msg), false),
                }
            }
            Err(msg) => (self.error_reply(None, None, msg), false),
        };
        let text = serde_json::to_string(&reply).expect("responses always serialize");
        (text, shutdown)
    }

    fn error_reply(&mut self, op: Option<&str>, id: Option<Value>, msg: String) -> Value {
        self.errors += 1;
        self.cfg.obs.counter("serve.errors").add(1);
        let mut fields = vec![("ok", Value::Bool(false))];
        if let Some(op) = op {
            fields.push(("op", jstr(op)));
        }
        if let Some(id) = id {
            fields.push(("id", id));
        }
        fields.push(("error", jstr(msg)));
        jmap(fields)
    }

    fn dispatch(&mut self, req: Request) -> DispatchReply {
        match req {
            Request::Load {
                circuit,
                tech,
                n_worst,
                threads,
            } => self
                .op_load(&circuit, &tech, n_worst, threads)
                .map(|f| (f, false)),
            Request::Edit { circuit, kind } => self.op_edit(&circuit, &kind).map(|f| (f, false)),
            Request::AnalyzeBatch {
                circuit,
                corners,
                modes,
                n_worst,
                batch_threads,
            } => self
                .op_analyze_batch(
                    &circuit,
                    corners.as_deref(),
                    modes.as_deref(),
                    n_worst,
                    batch_threads,
                )
                .map(|f| (f, false)),
            Request::Paths {
                circuit,
                limit,
                scenario,
            } => self
                .op_paths(&circuit, limit, scenario.as_deref())
                .map(|f| (f, false)),
            Request::Slack { circuit } => self.op_slack(&circuit).map(|f| (f, false)),
            Request::Verify { circuit, scenario } => self
                .op_verify(&circuit, scenario.as_deref())
                .map(|f| (f, false)),
            Request::Audit { circuit } => self.op_audit(circuit.as_deref()).map(|f| (f, false)),
            Request::Status => Ok((self.op_status(), false)),
            Request::Shutdown => {
                self.shutting_down = true;
                Ok((self.op_status(), true))
            }
        }
    }

    fn session(&self, circuit: &str) -> Result<&CircuitSession, String> {
        self.circuits
            .iter()
            .find(|(name, _)| name == circuit)
            .map(|(_, s)| s)
            .ok_or_else(|| format!("circuit {circuit:?} is not loaded (send a load request first)"))
    }

    fn session_mut(&mut self, circuit: &str) -> Result<&mut CircuitSession, String> {
        self.circuits
            .iter_mut()
            .find(|(name, _)| name == circuit)
            .map(|(_, s)| s)
            .ok_or_else(|| format!("circuit {circuit:?} is not loaded (send a load request first)"))
    }

    fn timing_for(&mut self, tech: &Technology) -> Result<Arc<TimingLibrary>, String> {
        if let Some(t) = self.timings.get(&tech.name) {
            return Ok(Arc::clone(t));
        }
        let tlib = characterize_cached(&self.lib, tech, &self.cfg.char_config, &self.cfg.cache_dir)
            .map_err(|e| format!("characterization failed: {e}"))?;
        let tlib = Arc::new(tlib);
        self.timings.insert(tech.name.clone(), Arc::clone(&tlib));
        Ok(tlib)
    }

    fn op_load(
        &mut self,
        circuit: &str,
        tech_name: &str,
        n_worst: Option<usize>,
        threads: usize,
    ) -> Result<Vec<(&'static str, Value)>, String> {
        let tech = Technology::by_name(tech_name)
            .ok_or_else(|| format!("unknown technology {tech_name:?}"))?;
        let netlist = catalog::mapped(circuit, &self.lib)
            .map_err(|e| format!("mapping {circuit:?} failed: {e}"))?
            .ok_or_else(|| format!("unknown benchmark {circuit:?}"))?;
        let tlib = self.timing_for(&tech)?;
        let corner = Corner::nominal(&tech);
        let mut cfg = EnumerationConfig::new(corner)
            .with_threads(threads)
            .with_per_source_n_worst(true);
        if let Some(n) = n_worst {
            cfg = cfg.with_n_worst(n);
        }
        cfg.input_slew = self.cfg.input_slew;
        let enumr = PathEnumerator::new(&netlist, &self.lib, &tlib, cfg);
        let (cache, stats) = SourceCache::build(&enumr);
        let kernel = enumr.kernel_arc();
        let schedule = enumr.schedule_arc();
        drop(enumr);
        let certs = CertificateSet::new(&netlist, self.cfg.input_slew, cache.splice());
        let digest = digest_string(certs.to_json().as_bytes());
        let mut session = CircuitSession {
            tech,
            corner,
            netlist,
            tlib,
            kernel,
            schedule,
            cache,
            certs,
            digest,
            n_worst,
            threads,
            revision: 0,
            incremental_updates: 0,
            full_rebuilds: 0,
            truncated: stats.truncated,
            structural_worst_ps: 0.0,
            required_ps: 0.0,
            batch: None,
        };
        session.refresh_required(self.cfg.input_slew);
        self.cfg.obs.counter("serve.loads").add(1);

        let fields = vec![
            ("circuit", jstr(circuit)),
            ("tech", jstr(session.tech.name.clone())),
            ("revision", Value::UInt(session.revision)),
            ("num_gates", Value::UInt(session.netlist.num_gates() as u64)),
            ("paths", Value::UInt(session.certs.paths.len() as u64)),
            ("truncated", Value::Bool(session.truncated)),
            ("digest", jstr(session.digest.clone())),
            (
                "structural_worst_ps",
                Value::Float(session.structural_worst_ps),
            ),
            ("required_ps", Value::Float(session.required_ps)),
        ];
        // Reloading replaces the previous session of the same name.
        self.circuits.retain(|(name, _)| name != circuit);
        self.circuits.push((circuit.to_string(), session));
        Ok(fields)
    }

    fn op_edit(
        &mut self,
        circuit: &str,
        kind: &EditKind,
    ) -> Result<Vec<(&'static str, Value)>, String> {
        let input_slew = self.cfg.input_slew;
        let lib = self.lib.clone();
        let obs = self.cfg.obs.clone();
        let session = self.session_mut(circuit)?;
        let edit: GateEdit = match kind {
            EditKind::Swap { instance, cell } => {
                swap_gate(&mut session.netlist, &lib, instance, cell)
            }
            EditKind::Resize { instance } => resize_gate(&mut session.netlist, &lib, instance),
            EditKind::Rewire { instance, pin, net } => {
                rewire_net(&mut session.netlist, instance, *pin, net)
            }
        }
        .map_err(|e| format!("edit rejected: {e}"))?;
        session.revision += 1;
        // Any resident batch was computed against the pre-edit netlist.
        session.batch = None;

        let dirty = dirty_sources(&session.netlist, &edit);
        let n_dirty = dirty.iter().filter(|&&d| d).count();
        let n_sources = dirty.len();
        if edit.function_changed {
            session.full_rebuilds += 1;
            obs.counter("serve.full_rebuilds").add(1);
        } else {
            session.incremental_updates += 1;
            obs.counter("serve.incremental_updates").add(1);
        }

        // The netlist changed: the bitsim schedule is stale, the corner
        // kernel is not (it depends only on (timing library, corner)).
        session.schedule = None;
        let cfg = session
            .per_source_cfg(input_slew)
            .with_source_filter(Arc::new(dirty));
        {
            let enumr = PathEnumerator::with_prebuilt(
                &session.netlist,
                &lib,
                &session.tlib,
                cfg,
                session.kernel.clone(),
                None,
            );
            let stats = session.cache.update(&enumr);
            session.schedule = enumr.schedule_arc();
            session.truncated |= stats.truncated;
        }
        session.certs = CertificateSet::new(&session.netlist, input_slew, session.cache.splice());
        session.digest = digest_string(session.certs.to_json().as_bytes());
        session.refresh_required(input_slew);

        Ok(vec![
            ("circuit", jstr(circuit)),
            ("revision", Value::UInt(session.revision)),
            ("function_changed", Value::Bool(edit.function_changed)),
            ("dirty_sources", Value::UInt(n_dirty as u64)),
            ("total_sources", Value::UInt(n_sources as u64)),
            ("paths", Value::UInt(session.certs.paths.len() as u64)),
            ("truncated", Value::Bool(session.truncated)),
            ("digest", jstr(session.digest.clone())),
            (
                "structural_worst_ps",
                Value::Float(session.structural_worst_ps),
            ),
            ("required_ps", Value::Float(session.required_ps)),
        ])
    }

    /// Runs an MCMM batch over the resident netlist revision: one
    /// scenario per (corner, mode) cell, scenario-invariant preparation
    /// shared across the matrix (see `sta_core::mcmm`). The per-scenario
    /// certificate sets stay resident for the v2 `scenario` selector on
    /// `paths` and `verify` until the next edit.
    fn op_analyze_batch(
        &mut self,
        circuit: &str,
        corners: Option<&str>,
        modes: Option<&str>,
        n_worst: Option<usize>,
        batch_threads: usize,
    ) -> Result<Vec<(&'static str, Value)>, String> {
        let cfg = self.cfg.clone();
        let session = self.session(circuit)?;
        let corner_defs = match corners {
            Some(list) => CornerDef::parse_list(list, &session.tech)
                .map_err(|e| format!("bad corners list: {e}"))?,
            None => vec![CornerDef::nominal(session.tech.clone())],
        };
        let mode_defs = match modes {
            Some(list) => parse_modes(list)?,
            None => vec![Mode::unconstrained()],
        };
        let revision = session.revision;
        let req = AnalysisRequest::new(circuit)
            .with_netlist(session.netlist.clone())
            .scenarios(Scenario::matrix(&corner_defs, &mode_defs))
            .n_worst(n_worst)
            .threads(session.threads)
            .batch_threads(batch_threads)
            .input_slew(cfg.input_slew)
            .char_config(cfg.char_config)
            .cache_dir(cfg.cache_dir)
            .observer(cfg.obs.clone());
        let batch = req
            .run_batch()
            .map_err(|e| format!("batch analysis failed: {e}"))?;

        let mut rows = Vec::new();
        let mut resident = Vec::new();
        let mut truncated_any = false;
        for (i, s) in batch.scenarios.iter().enumerate() {
            let certs = batch.certificates(i);
            let digest = digest_string(certs.to_json().as_bytes());
            let worst_slack = batch
                .netlist
                .outputs()
                .iter()
                .map(|&o| s.slack.of(o))
                .fold(f64::INFINITY, f64::min);
            truncated_any |= s.stats.truncated;
            rows.push(jmap(vec![
                ("scenario", jstr(s.scenario.name())),
                ("tech", jstr(s.scenario.corner.tech.name.clone())),
                ("paths", Value::UInt(s.paths.len() as u64)),
                ("truncated", Value::Bool(s.stats.truncated)),
                ("required_ps", Value::Float(s.required)),
                ("worst_slack_ps", Value::Float(worst_slack)),
                ("passes", Value::Bool(worst_slack >= 0.0)),
                ("digest", jstr(digest.clone())),
            ]));
            resident.push(BatchScenario {
                scenario: s.scenario.clone(),
                certs,
                digest,
                truncated: s.stats.truncated,
            });
        }
        let merged_worst = batch
            .merged
            .worst()
            .map(|e| {
                jmap(vec![
                    ("output", jstr(e.output.clone())),
                    ("slack_ps", Value::Float(e.slack)),
                    ("scenario", jstr(e.scenario.clone())),
                ])
            })
            .unwrap_or(Value::Null);
        let fields = vec![
            ("circuit", jstr(circuit)),
            ("revision", Value::UInt(revision)),
            ("scenarios", Value::UInt(batch.scenarios.len() as u64)),
            ("results", Value::Seq(rows)),
            ("merged_worst", merged_worst),
            ("passes", Value::Bool(batch.merged.passes())),
            ("truncated", Value::Bool(truncated_any)),
            ("elapsed_s", Value::Float(batch.elapsed_s)),
        ];
        self.cfg.obs.counter("serve.batches").add(1);
        self.cfg
            .obs
            .counter("serve.batch_scenarios")
            .add(batch.scenarios.len() as u64);
        self.session_mut(circuit)?.batch = Some(BatchResident {
            n_worst,
            scenarios: resident,
        });
        Ok(fields)
    }

    fn op_paths(
        &mut self,
        circuit: &str,
        limit: usize,
        scenario: Option<&str>,
    ) -> Result<Vec<(&'static str, Value)>, String> {
        let session = self.session(circuit)?;
        let (paths, mut extra): (&[TruePath], Vec<(&'static str, Value)>) = match scenario {
            Some(name) => {
                let sc = resident_scenario(session, circuit, name)?;
                (
                    &sc.certs.paths,
                    vec![
                        ("scenario", jstr(name)),
                        ("digest", jstr(sc.digest.clone())),
                    ],
                )
            }
            None => (&session.certs.paths, Vec::new()),
        };
        let worst: Vec<Value> = paths
            .iter()
            .take(limit)
            .enumerate()
            .map(|(i, p)| {
                jmap(vec![
                    ("rank", Value::UInt(i as u64 + 1)),
                    ("arrival_ps", Value::Float(p.worst_arrival())),
                    ("gates", Value::UInt(p.arcs.len() as u64)),
                    ("source", jstr(session.netlist.net_label(p.source))),
                    ("endpoint", jstr(session.netlist.net_label(p.endpoint()))),
                ])
            })
            .collect();
        let mut fields = vec![
            ("circuit", jstr(circuit)),
            ("revision", Value::UInt(session.revision)),
            ("paths", Value::UInt(paths.len() as u64)),
        ];
        fields.append(&mut extra);
        fields.push(("worst_paths", Value::Seq(worst)));
        Ok(fields)
    }

    fn op_slack(&mut self, circuit: &str) -> Result<Vec<(&'static str, Value)>, String> {
        let input_slew = self.cfg.input_slew;
        let session = self.session(circuit)?;
        let report = slack_report(
            &session.netlist,
            &session.tlib,
            session.corner,
            input_slew,
            session.required_ps,
        );
        let violations = report.violations();
        Ok(vec![
            ("circuit", jstr(circuit)),
            ("revision", Value::UInt(session.revision)),
            (
                "structural_worst_ps",
                Value::Float(session.structural_worst_ps),
            ),
            ("required_ps", Value::Float(session.required_ps)),
            ("required_source", jstr("default")),
            ("passes", Value::Bool(report.passes())),
            ("violations", Value::UInt(violations.len() as u64)),
        ])
    }

    /// The splice-identity proof as a service: cold re-run the current
    /// netlist revision with the plain (non-per-source) configuration and
    /// compare certificate digests. `identical` is the proof verdict;
    /// truncation on either side voids it (reported honestly). With a
    /// `scenario` selector the same proof runs against one resident batch
    /// scenario instead: an independent single-scenario re-run must
    /// reproduce the batch's certificate bytes.
    fn op_verify(
        &mut self,
        circuit: &str,
        scenario: Option<&str>,
    ) -> Result<Vec<(&'static str, Value)>, String> {
        if let Some(name) = scenario {
            return self.op_verify_scenario(circuit, name);
        }
        let input_slew = self.cfg.input_slew;
        let lib = self.lib.clone();
        let session = self.session(circuit)?;
        let mut cfg = EnumerationConfig::new(session.corner).with_threads(session.threads);
        if let Some(n) = session.n_worst {
            cfg = cfg.with_n_worst(n);
        }
        cfg.input_slew = input_slew;
        let (paths, stats) = PathEnumerator::new(&session.netlist, &lib, &session.tlib, cfg).run();
        let cold = CertificateSet::new(&session.netlist, input_slew, paths);
        let cold_digest = digest_string(cold.to_json().as_bytes());
        let identical = cold_digest == session.digest;
        self.cfg
            .obs
            .counter(if identical {
                "serve.verify_ok"
            } else {
                "serve.verify_mismatch"
            })
            .add(1);
        let session = self.session(circuit)?;
        Ok(vec![
            ("circuit", jstr(circuit)),
            ("revision", Value::UInt(session.revision)),
            ("identical", Value::Bool(identical)),
            ("spliced_digest", jstr(session.digest.clone())),
            ("cold_digest", jstr(cold_digest)),
            (
                "truncated",
                Value::Bool(session.truncated || stats.truncated),
            ),
        ])
    }

    /// The batch-identity proof for one resident scenario: re-runs it as
    /// an independent single-scenario analysis (same netlist revision,
    /// same path cap) and compares certificate digests.
    fn op_verify_scenario(
        &mut self,
        circuit: &str,
        name: &str,
    ) -> Result<Vec<(&'static str, Value)>, String> {
        let cfg = self.cfg.clone();
        let session = self.session(circuit)?;
        let sc = resident_scenario(session, circuit, name)?;
        let batch_digest = sc.digest.clone();
        let batch_truncated = sc.truncated;
        let revision = session.revision;
        let req = AnalysisRequest::new(circuit)
            .with_netlist(session.netlist.clone())
            .scenario(sc.scenario.clone())
            .n_worst(session.batch.as_ref().expect("resident checked").n_worst)
            .threads(session.threads)
            .input_slew(cfg.input_slew)
            .char_config(cfg.char_config)
            .cache_dir(cfg.cache_dir);
        let single = req
            .run()
            .map_err(|e| format!("verification run failed: {e}"))?;
        let cold = CertificateSet::new(&single.netlist, single.input_slew, single.paths);
        let cold_digest = digest_string(cold.to_json().as_bytes());
        let identical = cold_digest == batch_digest;
        self.cfg
            .obs
            .counter(if identical {
                "serve.verify_ok"
            } else {
                "serve.verify_mismatch"
            })
            .add(1);
        Ok(vec![
            ("circuit", jstr(circuit)),
            ("revision", Value::UInt(revision)),
            ("scenario", jstr(name)),
            ("identical", Value::Bool(identical)),
            ("batch_digest", jstr(batch_digest)),
            ("cold_digest", jstr(cold_digest)),
            (
                "truncated",
                Value::Bool(batch_truncated || single.stats.truncated),
            ),
        ])
    }

    /// The whole-flow soundness audit as a service: runs the `sta-lint`
    /// AI rules (interval enclosure of the resident certificates,
    /// structural dominance of the interval hull), the ECO002 cache
    /// invariants, and the SRV protocol check against the embedded
    /// schema — without disturbing any resident state.
    fn op_audit(&mut self, circuit: Option<&str>) -> Result<Vec<(&'static str, Value)>, String> {
        let input_slew = self.cfg.input_slew;
        sta_lint::register_audit_metrics(&self.cfg.obs);
        self.cfg.obs.counter("serve.audits").add(1);
        self.cfg.obs.counter("audit.flow_runs").add(1);
        let names: Vec<String> = match circuit {
            Some(c) => {
                self.session(c)?; // fail fast on an unloaded circuit
                vec![c.to_string()]
            }
            None => self.circuits.iter().map(|(n, _)| n.clone()).collect(),
        };
        let mut report = sta_lint::LintReport::new();
        let mut certificates = 0u64;
        let mut enclosed = 0u64;
        for name in &names {
            let session = self.session(name)?;
            let arcs = match &session.kernel {
                Some(k) => arc_intervals_compiled(
                    &session.netlist,
                    &session.tlib,
                    k,
                    input_slew,
                    ARC_SWEEP_MARGIN,
                ),
                None => arc_intervals(
                    &session.netlist,
                    &session.tlib,
                    session.corner,
                    input_slew,
                    ARC_SWEEP_MARGIN,
                ),
            };
            let outcome = sta_lint::audit_certificates(
                &session.netlist,
                name,
                &arcs,
                &session.certs,
                input_slew,
            );
            certificates += outcome.certificates as u64;
            enclosed += outcome.enclosed as u64;
            self.cfg
                .obs
                .counter("audit.certificates_checked")
                .add(outcome.certificates as u64);
            self.cfg
                .obs
                .counter("audit.certificates_enclosed")
                .add(outcome.enclosed as u64);
            self.cfg
                .obs
                .counter("audit.sources_checked")
                .add(outcome.sources_checked as u64);
            report.extend(outcome.diagnostics);
            let hull = sta_lint::hull(&session.netlist, &arcs, input_slew);
            let prune_margin = EnumerationConfig::new(session.corner).prune_margin;
            let st = match &session.kernel {
                Some(k) => static_bounds_compiled(
                    &session.netlist,
                    &session.tlib,
                    k,
                    input_slew,
                    prune_margin,
                ),
                None => static_bounds(
                    &session.netlist,
                    &session.tlib,
                    session.corner,
                    input_slew,
                    prune_margin,
                ),
            };
            report.extend(sta_lint::audit_structural_dominance(
                name,
                &session.netlist,
                &hull,
                &st,
            ));
            // The splice identity only holds untruncated; the structural
            // slot invariants always hold.
            let certs = (!session.truncated).then_some(&session.certs);
            report.extend(sta_lint::audit_source_cache(
                name,
                &session.netlist,
                &session.cache,
                certs,
            ));
            self.cfg.obs.counter("audit.circuits").add(1);
        }
        let schema: Value = serde_json::from_str(crate::protocol::SERVE_SCHEMA_JSON)
            .map_err(|e| format!("embedded serve schema is not valid JSON: {e}"))?;
        let spec = crate::protocol::protocol_spec();
        self.cfg
            .obs
            .counter("audit.srv_exemplars")
            .add(spec.exemplars.len() as u64);
        report.extend(sta_lint::check_serve_protocol(&schema, &spec));
        let errors = report.count(sta_lint::Severity::Error) as u64;
        let warnings = report.count(sta_lint::Severity::Warn) as u64;
        self.cfg.obs.counter("audit.errors").add(errors);
        self.cfg.obs.counter("audit.warnings").add(warnings);
        const MAX_FINDINGS: usize = 20;
        let findings: Vec<Value> = report
            .diagnostics
            .iter()
            .take(MAX_FINDINGS)
            .map(|d| jstr(d.to_string()))
            .collect();
        Ok(vec![
            ("circuits", Value::UInt(names.len() as u64)),
            ("certificates", Value::UInt(certificates)),
            ("enclosed", Value::UInt(enclosed)),
            ("errors", Value::UInt(errors)),
            ("warnings", Value::UInt(warnings)),
            (
                "findings_truncated",
                Value::Bool(report.diagnostics.len() > MAX_FINDINGS),
            ),
            ("findings", Value::Seq(findings)),
        ])
    }

    fn op_status(&self) -> Vec<(&'static str, Value)> {
        let manifest = self.manifest();
        let doc: Value = serde_json::from_str(&manifest.to_json())
            .expect("session manifests round-trip through JSON");
        vec![("session", doc)]
    }

    /// The session manifest at this instant (also embedded in `status`
    /// and `shutdown` responses).
    pub fn manifest(&self) -> SessionManifest {
        let circuits = self
            .circuits
            .iter()
            .map(|(name, s)| SessionCircuit {
                circuit: name.clone(),
                revision: s.revision,
                incremental_updates: s.incremental_updates,
                full_rebuilds: s.full_rebuilds,
                path_digest: (!s.digest.is_empty()).then(|| s.digest.clone()),
            })
            .collect();
        SessionManifest::new(self.requests, self.errors, circuits, &self.cfg.obs)
    }
}

fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Load { .. } => "load",
        Request::Edit { .. } => "edit",
        Request::AnalyzeBatch { .. } => "analyze_batch",
        Request::Paths { .. } => "paths",
        Request::Slack { .. } => "slack",
        Request::Verify { .. } => "verify",
        Request::Audit { .. } => "audit",
        Request::Status => "status",
        Request::Shutdown => "shutdown",
    }
}

/// Runs the request loop over arbitrary line-based transports. Returns
/// the number of requests served.
///
/// # Errors
///
/// Propagates transport I/O errors; protocol-level problems are answered
/// in-band and never abort the loop.
pub fn serve_lines(
    server: &mut Server,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<u64> {
    let mut served = 0;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (reply, shutdown) = server.handle_line(&line);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        served += 1;
        if shutdown {
            break;
        }
    }
    Ok(served)
}

/// Serves requests from stdin to stdout until `shutdown` or EOF.
///
/// # Errors
///
/// Propagates stdin/stdout I/O errors.
pub fn serve_stdio(server: &mut Server) -> std::io::Result<u64> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_lines(server, stdin.lock(), stdout.lock())
}

/// Binds a Unix socket at `path` and serves connections sequentially
/// until a client sends `shutdown`. The socket file is removed on exit.
///
/// # Errors
///
/// Propagates bind/accept/transport I/O errors.
#[cfg(unix)]
pub fn serve_socket(server: &mut Server, path: &std::path::Path) -> std::io::Result<u64> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a crashed session blocks bind; remove it.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let mut served = 0;
    loop {
        let (stream, _) = listener.accept()?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        let before = server.requests;
        serve_lines(server, reader, &stream)?;
        served += server.requests - before;
        // serve_lines returns on EOF (client hung up) or shutdown; only
        // shutdown ends the session.
        if server.shutting_down {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_netlist::GateId;

    fn fast_server() -> Server {
        Server::new(ServerConfig {
            char_config: CharConfig::fast(),
            cache_dir: std::env::temp_dir().join("sta-serve-test-cache"),
            input_slew: 60.0,
            obs: Observer::enabled(),
        })
    }

    fn reply(server: &mut Server, line: &str) -> Value {
        let (text, _) = server.handle_line(line);
        serde_json::from_str(&text).expect("responses are valid JSON")
    }

    fn get<'a>(doc: &'a Value, key: &str) -> &'a Value {
        let Value::Map(map) = doc else {
            panic!("response is not an object")
        };
        map.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("response has no {key:?} field: {doc:?}"))
    }

    fn assert_ok(doc: &Value) {
        assert_eq!(get(doc, "ok"), &Value::Bool(true), "error reply: {doc:?}");
    }

    /// Parsed responses carry small numbers as `Int`; responses built
    /// in-process carry them as `UInt`. Compare by value.
    fn as_u64(v: &Value) -> u64 {
        match v {
            Value::Int(i) => u64::try_from(*i).expect("negative count"),
            Value::UInt(u) => *u,
            other => panic!("not an integer: {other:?}"),
        }
    }

    /// An instance name usable in edit requests against mapped c17.
    fn c17_instance(lib: &Library) -> String {
        let nl = catalog::mapped("c17", lib).unwrap().unwrap();
        nl.net_label(nl.gate(GateId::from_index(2)).output())
    }

    #[test]
    fn load_edit_verify_session_round_trip() {
        let mut server = fast_server();
        let inst = c17_instance(&server.lib);

        let loaded = reply(
            &mut server,
            r#"{"id":1,"op":"load","circuit":"c17","nworst":10}"#,
        );
        assert_ok(&loaded);
        assert_eq!(as_u64(get(&loaded, "id")), 1);
        assert_eq!(as_u64(get(&loaded, "revision")), 0);
        let digest0 = get(&loaded, "digest").clone();

        // Before any edit, the cache already matches a cold run.
        let verified = reply(&mut server, r#"{"op":"verify","circuit":"c17"}"#);
        assert_ok(&verified);
        assert_eq!(get(&verified, "identical"), &Value::Bool(true));

        // A resize is delay-only: incremental, and it must not dirty
        // every source nor change the netlist function.
        let edited = reply(
            &mut server,
            &format!(r#"{{"op":"edit","circuit":"c17","kind":"resize","instance":"{inst}"}}"#),
        );
        assert_ok(&edited);
        assert_eq!(as_u64(get(&edited, "revision")), 1);
        assert_eq!(get(&edited, "function_changed"), &Value::Bool(false));
        assert_ne!(get(&edited, "digest"), &digest0);

        // The spliced result is digest-identical to a cold re-run of the
        // edited netlist: the proof obligation, checked in-band.
        let verified = reply(&mut server, r#"{"op":"verify","circuit":"c17"}"#);
        assert_ok(&verified);
        assert_eq!(get(&verified, "identical"), &Value::Bool(true));
        assert_eq!(get(&verified, "truncated"), &Value::Bool(false));

        let paths = reply(&mut server, r#"{"op":"paths","circuit":"c17","limit":3}"#);
        assert_ok(&paths);
        let Value::Seq(worst) = get(&paths, "worst_paths") else {
            panic!("worst_paths is not an array")
        };
        assert_eq!(worst.len(), 3);

        let slack = reply(&mut server, r#"{"op":"slack","circuit":"c17"}"#);
        assert_ok(&slack);
        let (Value::Float(req), Value::Float(worst)) = (
            get(&slack, "required_ps"),
            get(&slack, "structural_worst_ps"),
        ) else {
            panic!("slack response missing numbers")
        };
        assert!((req - worst * DEFAULT_REQUIRED_FRACTION).abs() < 1e-9);

        let status = reply(&mut server, r#"{"op":"status"}"#);
        assert_ok(&status);
        let manifest =
            SessionManifest::from_json(&serde_json::to_string(get(&status, "session")).unwrap())
                .unwrap();
        assert_eq!(manifest.circuits.len(), 1);
        assert_eq!(manifest.circuits[0].revision, 1);
        assert_eq!(manifest.circuits[0].incremental_updates, 1);
        assert_eq!(manifest.circuits[0].full_rebuilds, 0);
    }

    #[test]
    fn required_default_is_recomputed_after_each_edit() {
        let mut server = fast_server();
        let instances: Vec<String> = {
            let nl = catalog::mapped("c17", &server.lib).unwrap().unwrap();
            nl.gate_ids()
                .map(|g| nl.net_label(nl.gate(g).output()))
                .collect()
        };
        assert_ok(&reply(
            &mut server,
            r#"{"op":"load","circuit":"c17","nworst":5}"#,
        ));
        let req = |doc: &Value| match get(doc, "required_ps") {
            Value::Float(f) => *f,
            other => panic!("required_ps is {other:?}"),
        };
        let worst = |doc: &Value| match get(doc, "structural_worst_ps") {
            Value::Float(f) => *f,
            other => panic!("structural_worst_ps is {other:?}"),
        };
        let before = reply(&mut server, r#"{"op":"slack","circuit":"c17"}"#);
        // Resize every gate: doubled widths double every input cap, so
        // every arrival — including the structural worst — moves.
        for inst in &instances {
            let edited = reply(
                &mut server,
                &format!(r#"{{"op":"edit","circuit":"c17","kind":"resize","instance":"{inst}"}}"#),
            );
            assert_ok(&edited);
            // After every single edit the default requirement tracks the
            // *edited* netlist's structural worst, never a stale one.
            assert!((req(&edited) - worst(&edited) * DEFAULT_REQUIRED_FRACTION).abs() < 1e-9);
        }
        let after = reply(&mut server, r#"{"op":"slack","circuit":"c17"}"#);
        assert_ne!(req(&before), req(&after));
        assert!((req(&after) - worst(&after) * DEFAULT_REQUIRED_FRACTION).abs() < 1e-9);
    }

    #[test]
    fn protocol_errors_are_answered_in_band() {
        let mut server = fast_server();
        let bad = reply(&mut server, "not json at all");
        assert_eq!(get(&bad, "ok"), &Value::Bool(false));
        let not_loaded = reply(&mut server, r#"{"op":"paths","circuit":"c880"}"#);
        assert_eq!(get(&not_loaded, "ok"), &Value::Bool(false));
        assert!(matches!(get(&not_loaded, "error"), Value::Str(s) if s.contains("not loaded")));
        let unknown = reply(&mut server, r#"{"op":"load","circuit":"c99999"}"#);
        assert_eq!(get(&unknown, "ok"), &Value::Bool(false));
        let manifest = server.manifest();
        assert_eq!(manifest.requests, 3);
        assert_eq!(manifest.errors, 3);
    }

    #[test]
    fn serve_lines_stops_at_shutdown() {
        let mut server = fast_server();
        let input = b"{\"op\":\"status\"}\n\n{\"op\":\"shutdown\"}\n{\"op\":\"status\"}\n".to_vec();
        let mut out: Vec<u8> = Vec::new();
        let served = serve_lines(&mut server, std::io::Cursor::new(input), &mut out).unwrap();
        assert_eq!(served, 2, "requests after shutdown must not be served");
        assert!(server.shutting_down);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let doc: Value = serde_json::from_str(line).unwrap();
            assert_ok(&doc);
        }
    }

    #[test]
    fn requests_conform_to_the_checked_in_schema() {
        let schema_text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../docs/serve.schema.json"
        ))
        .expect("docs/serve.schema.json is checked in");
        let schema: Value = serde_json::from_str(&schema_text).unwrap();
        let valid = [
            r#"{"op":"load","circuit":"c17","tech":"90nm","nworst":10,"threads":2}"#,
            r#"{"id":1,"op":"edit","circuit":"c17","kind":"swap","instance":"g1","cell":"NAND2_X2"}"#,
            r#"{"op":"edit","circuit":"c17","kind":"rewire","instance":"g1","pin":0,"net":"a"}"#,
            r#"{"op":"paths","circuit":"c17","limit":5}"#,
            r#"{"op":"slack","circuit":"c17"}"#,
            r#"{"op":"verify","circuit":"c17"}"#,
            r#"{"op":"analyze_batch","circuit":"c17","corners":"typ,slow","modes":"func=600","nworst":10,"batch_threads":2}"#,
            r#"{"op":"paths","circuit":"c17","scenario":"typ/func","limit":5}"#,
            r#"{"op":"verify","circuit":"c17","scenario":"typ/func","schema_version":2}"#,
            r#"{"op":"audit","circuit":"c17"}"#,
            r#"{"op":"audit"}"#,
            r#"{"op":"status"}"#,
            r#"{"op":"shutdown"}"#,
        ];
        for line in valid {
            let doc: Value = serde_json::from_str(line).unwrap();
            sta_obs::schema::validate(&schema, &doc)
                .unwrap_or_else(|e| panic!("schema rejects {line}: {e:?}"));
            // The schema and the parser must agree on what is valid.
            parse_request(line).unwrap_or_else(|e| panic!("parser rejects {line}: {e}"));
        }
        let invalid = [
            r#"{"circuit":"c17"}"#,
            r#"{"op":"fly"}"#,
            r#"{"op":"load","circuit":"c17","tech":"45nm"}"#,
            r#"{"op":"load","circuit":"c17","bogus":1}"#,
            r#"{"op":"paths","circuit":"c17","limit":0}"#,
            r#"{"op":"status","schema_version":3}"#,
            r#"{"op":"analyze_batch","circuit":"c17","batch_threads":0}"#,
        ];
        for line in invalid {
            let doc: Value = serde_json::from_str(line).unwrap();
            assert!(
                sta_obs::schema::validate(&schema, &doc).is_err(),
                "schema accepts invalid request {line}"
            );
        }
        // The embedded copy is the same document CI and the audit op use.
        assert_eq!(schema_text, crate::protocol::SERVE_SCHEMA_JSON);
    }

    #[test]
    fn analyze_batch_session_round_trip() {
        let mut server = fast_server();
        let inst = c17_instance(&server.lib);
        assert_ok(&reply(
            &mut server,
            r#"{"op":"load","circuit":"c17","nworst":10}"#,
        ));

        let batch = reply(
            &mut server,
            r#"{"op":"analyze_batch","circuit":"c17","corners":"typ,slow","modes":"func=600,test=900","nworst":10}"#,
        );
        assert_ok(&batch);
        assert_eq!(as_u64(get(&batch, "scenarios")), 4);
        let Value::Seq(results) = get(&batch, "results") else {
            panic!("results is not an array")
        };
        assert_eq!(results.len(), 4);
        // Corners-major matrix order, names are corner/mode.
        assert_eq!(get(&results[0], "scenario"), &jstr("typ/func"));
        assert_eq!(get(&results[3], "scenario"), &jstr("slow/test"));
        let Value::Str(first_digest) = get(&results[0], "digest") else {
            panic!("digest is not a string")
        };
        assert!(!first_digest.is_empty());

        // The scenario selector reads one batch scenario's paths.
        let paths = reply(
            &mut server,
            r#"{"op":"paths","circuit":"c17","scenario":"slow/test","limit":3}"#,
        );
        assert_ok(&paths);
        assert_eq!(get(&paths, "scenario"), &jstr("slow/test"));
        let Value::Seq(worst) = get(&paths, "worst_paths") else {
            panic!("worst_paths is not an array")
        };
        assert_eq!(worst.len(), 3);
        let missing = reply(
            &mut server,
            r#"{"op":"paths","circuit":"c17","scenario":"nope","limit":3}"#,
        );
        assert_eq!(get(&missing, "ok"), &Value::Bool(false));
        assert!(matches!(get(&missing, "error"), Value::Str(s) if s.contains("nope")));

        // An independent single-scenario re-run reproduces the batch's
        // certificate bytes: the MCMM identity, checked in-band.
        let verified = reply(
            &mut server,
            r#"{"op":"verify","circuit":"c17","scenario":"slow/test"}"#,
        );
        assert_ok(&verified);
        assert_eq!(get(&verified, "identical"), &Value::Bool(true));
        assert_eq!(get(&verified, "truncated"), &Value::Bool(false));

        // An edit drops the resident batch: it answered for the pre-edit
        // netlist. The plain ops keep working.
        assert_ok(&reply(
            &mut server,
            &format!(r#"{{"op":"edit","circuit":"c17","kind":"resize","instance":"{inst}"}}"#),
        ));
        let stale = reply(
            &mut server,
            r#"{"op":"paths","circuit":"c17","scenario":"slow/test","limit":3}"#,
        );
        assert_eq!(get(&stale, "ok"), &Value::Bool(false));
        assert!(matches!(get(&stale, "error"), Value::Str(s) if s.contains("analyze_batch")));
        assert_ok(&reply(
            &mut server,
            r#"{"op":"paths","circuit":"c17","limit":3}"#,
        ));

        // Re-batching the edited revision works and verifies again.
        let rebatch = reply(
            &mut server,
            r#"{"op":"analyze_batch","circuit":"c17","corners":"typ","modes":"func=600"}"#,
        );
        assert_ok(&rebatch);
        assert_eq!(as_u64(get(&rebatch, "scenarios")), 1);
        let verified = reply(
            &mut server,
            r#"{"op":"verify","circuit":"c17","scenario":"typ/func"}"#,
        );
        assert_ok(&verified);
        assert_eq!(get(&verified, "identical"), &Value::Bool(true));

        // Bad corner and mode specs answer in-band, not with a dead session.
        let bad = reply(
            &mut server,
            r#"{"op":"analyze_batch","circuit":"c17","corners":"bogus"}"#,
        );
        assert_eq!(get(&bad, "ok"), &Value::Bool(false));
        let bad = reply(
            &mut server,
            r#"{"op":"analyze_batch","circuit":"c17","modes":"func"}"#,
        );
        assert_eq!(get(&bad, "ok"), &Value::Bool(false));
        assert!(matches!(get(&bad, "error"), Value::Str(s) if s.contains("PERIOD")));
    }

    #[test]
    fn audit_op_is_clean_on_resident_circuits() {
        let mut server = fast_server();
        let loaded = reply(&mut server, r#"{"op":"load","circuit":"c17","nworst":10}"#);
        assert_ok(&loaded);

        let audited = reply(&mut server, r#"{"op":"audit","circuit":"c17"}"#);
        assert_ok(&audited);
        assert_eq!(as_u64(get(&audited, "errors")), 0, "{audited:?}");
        let certs = as_u64(get(&audited, "certificates"));
        assert!(certs > 0, "no certificates audited");
        assert_eq!(
            as_u64(get(&audited, "enclosed")),
            certs,
            "every certificate must fall inside its abstract interval"
        );

        // Without a circuit, the audit covers every resident session —
        // and still runs (protocol-only) with none resident.
        let all = reply(&mut server, r#"{"op":"audit"}"#);
        assert_ok(&all);
        assert_eq!(as_u64(get(&all, "circuits")), 1);

        let missing = reply(&mut server, r#"{"op":"audit","circuit":"c432"}"#);
        assert_eq!(get(&missing, "ok"), &Value::Bool(false));
    }

    #[test]
    fn drift_injectors_pin_srv_rule_codes() {
        use crate::protocol::{drift_schema_enum, drift_schema_field, protocol_spec};
        let pristine: Value = serde_json::from_str(crate::protocol::SERVE_SCHEMA_JSON).unwrap();
        let spec = protocol_spec();
        let clean = sta_lint::check_serve_protocol(&pristine, &spec);
        assert!(
            clean.is_empty(),
            "shipped schema/spec must agree: {clean:?}"
        );

        let mut dropped_field = pristine.clone();
        assert!(drift_schema_field(&mut dropped_field, "limit"));
        let ds = sta_lint::check_serve_protocol(&dropped_field, &spec);
        assert!(
            ds.iter().any(|d| d.rule.code() == "SRV002"),
            "dropped property must be SRV002: {ds:?}"
        );

        let mut dropped_op = pristine.clone();
        assert!(drift_schema_enum(&mut dropped_op, "op"));
        let ds = sta_lint::check_serve_protocol(&dropped_op, &spec);
        assert!(ds.iter().any(|d| d.rule.code() == "SRV002"), "{ds:?}");
        assert!(
            ds.iter().any(|d| d.rule.code() == "SRV001"),
            "an exemplar of the dropped op must now disagree: {ds:?}"
        );

        let mut dropped_tech = pristine.clone();
        assert!(drift_schema_enum(&mut dropped_tech, "tech"));
        let ds = sta_lint::check_serve_protocol(&dropped_tech, &spec);
        assert!(ds.iter().any(|d| d.rule.code() == "SRV002"), "{ds:?}");

        assert!(!drift_schema_field(&mut pristine.clone(), "no-such-field"));
        assert!(!drift_schema_enum(&mut pristine.clone(), "instance"));
    }
}
