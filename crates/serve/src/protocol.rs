//! The daemon's wire protocol: newline-delimited JSON requests.
//!
//! Requests are parsed by hand over [`serde::Value`] — the shimmed serde
//! derive has no support for defaulted or optional map fields, and a wire
//! protocol needs both (most request fields are optional with documented
//! defaults). Every request is an object with an `"op"` discriminator and
//! an optional `"id"` echoed verbatim into the response so clients can
//! pipeline. The machine-readable schema lives in `docs/serve.schema.json`
//! (validated by `sta_obs::schema`; a unit test keeps the two in sync).
//!
//! # Versioning
//!
//! The protocol is at schema version 2, which added the MCMM surface:
//! the `analyze_batch` op and the `scenario` selector on `paths` and
//! `verify`. Requests may pin a version with an optional
//! `"schema_version"` field; a request without one is served at the
//! current version. Pinning `1` is the one-version compatibility shim:
//! the v1 surface behaves exactly as it always did, and v2-only
//! constructs are rejected with a message naming the version that
//! provides them. Versions other than 1 or 2 are rejected outright.

use serde::Value;

/// One ECO netlist edit, as carried by an `edit` request.
#[derive(Clone, Debug, PartialEq)]
pub enum EditKind {
    /// Swap an instance to a named cell (`sta_circuits::swap_gate`).
    Swap {
        /// Instance name (= the name of its output net).
        instance: String,
        /// Replacement cell name.
        cell: String,
    },
    /// Toggle an instance between drive variants
    /// (`sta_circuits::resize_gate`).
    Resize {
        /// Instance name.
        instance: String,
    },
    /// Reconnect one input pin to another net
    /// (`sta_circuits::rewire_net`).
    Rewire {
        /// Instance name.
        instance: String,
        /// Input pin position.
        pin: usize,
        /// Name of the new source net.
        net: String,
    },
}

/// A parsed daemon request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Load a catalog circuit and run the initial full analysis.
    Load {
        /// Catalog circuit name.
        circuit: String,
        /// Technology name (default `90nm`).
        tech: String,
        /// Keep the N worst paths (default: full enumeration).
        n_worst: Option<usize>,
        /// Enumeration worker threads (default 1).
        threads: usize,
    },
    /// Apply an ECO edit and re-analyze incrementally.
    Edit {
        /// Loaded circuit the edit applies to.
        circuit: String,
        /// The edit operation.
        kind: EditKind,
    },
    /// Run a whole MCMM scenario matrix over the resident netlist
    /// revision (schema version 2).
    AnalyzeBatch {
        /// Loaded circuit to analyze.
        circuit: String,
        /// Comma-separated corner specs in the CLI `--corners` grammar
        /// (default: the session's nominal corner).
        corners: Option<String>,
        /// Comma-separated `name=PERIOD_PS` mode specs (default: one
        /// unconstrained mode).
        modes: Option<String>,
        /// Keep the N worst paths per scenario (default: full
        /// enumeration).
        n_worst: Option<usize>,
        /// Concurrent scenario jobs (default 1).
        batch_threads: usize,
    },
    /// Report the worst cached paths.
    Paths {
        /// Loaded circuit to query.
        circuit: String,
        /// Maximum paths to return (default 10).
        limit: usize,
        /// Read paths of one resident batch scenario (`corner/mode`)
        /// instead of the spliced ECO cache (schema version 2).
        scenario: Option<String>,
    },
    /// Report the circuit's slack summary at its current revision.
    Slack {
        /// Loaded circuit to query.
        circuit: String,
    },
    /// Prove the spliced cache against a cold re-run (digest comparison).
    Verify {
        /// Loaded circuit to verify.
        circuit: String,
        /// Verify one resident batch scenario against an independent
        /// single-scenario re-run instead (schema version 2).
        scenario: Option<String>,
    },
    /// Run the whole-flow soundness audit (`sta-lint` AI/ECO/SRV rules)
    /// over one resident circuit, or over every resident circuit.
    Audit {
        /// Loaded circuit to audit (default: all resident circuits).
        circuit: Option<String>,
    },
    /// Report the session manifest (resident circuits, counters, metrics).
    Status,
    /// Acknowledge and terminate the session.
    Shutdown,
}

/// The checked-in wire-protocol schema, embedded so the daemon (and the
/// `audit` op) can validate requests without a filesystem lookup.
pub const SERVE_SCHEMA_JSON: &str = include_str!("../../../docs/serve.schema.json");

/// The protocol version this daemon speaks (and serves to requests that
/// do not pin one).
pub const SCHEMA_VERSION: usize = 2;

fn field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field(map: &[(String, Value)], key: &str) -> Result<String, String> {
    match field(map, key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field {key:?} must be a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn opt_usize_field(map: &[(String, Value)], key: &str) -> Result<Option<usize>, String> {
    match field(map, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as usize)),
        Some(Value::UInt(u)) => Ok(Some(*u as usize)),
        Some(_) => Err(format!("field {key:?} must be a non-negative integer")),
    }
}

fn opt_str_field(map: &[(String, Value)], key: &str) -> Result<Option<String>, String> {
    match field(map, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("field {key:?} must be a string")),
    }
}

/// Parses one request line. Returns the request and the client's `"id"`
/// value (echoed into the response), or a message describing what is
/// malformed.
///
/// # Errors
///
/// Returns a human-readable message for invalid JSON, a non-object
/// request, a missing or unknown `"op"`, or missing/mistyped fields.
pub fn parse_request(line: &str) -> Result<(Request, Option<Value>), String> {
    let doc: Value =
        serde_json::from_str(line.trim()).map_err(|e| format!("invalid JSON request: {e}"))?;
    let Value::Map(map) = doc else {
        return Err("request must be a JSON object".to_string());
    };
    let id = field(&map, "id").cloned();
    let version = opt_usize_field(&map, "schema_version")?.unwrap_or(SCHEMA_VERSION);
    if !(1..=SCHEMA_VERSION).contains(&version) {
        return Err(format!(
            "unsupported schema_version {version} (this daemon speaks 1 through {SCHEMA_VERSION})"
        ));
    }
    // The v1 compatibility shim: a request pinned to schema_version 1
    // gets exactly the v1 surface, with v2-only constructs named.
    let v2_only = |what: &str| -> Result<(), String> {
        if version >= 2 {
            Ok(())
        } else {
            Err(format!(
                "{what} requires schema_version 2 (request pinned schema_version 1)"
            ))
        }
    };
    let scenario_field = |map: &[(String, Value)]| -> Result<Option<String>, String> {
        let scenario = opt_str_field(map, "scenario")?;
        if scenario.is_some() {
            v2_only("field \"scenario\"")?;
        }
        Ok(scenario)
    };
    let op = str_field(&map, "op")?;
    let req = match op.as_str() {
        "load" => Request::Load {
            circuit: str_field(&map, "circuit")?,
            tech: opt_str_field(&map, "tech")?.unwrap_or_else(|| "90nm".to_string()),
            n_worst: opt_usize_field(&map, "nworst")?,
            threads: opt_usize_field(&map, "threads")?.unwrap_or(1).max(1),
        },
        "edit" => {
            let circuit = str_field(&map, "circuit")?;
            let kind = match str_field(&map, "kind")?.as_str() {
                "swap" => EditKind::Swap {
                    instance: str_field(&map, "instance")?,
                    cell: str_field(&map, "cell")?,
                },
                "resize" => EditKind::Resize {
                    instance: str_field(&map, "instance")?,
                },
                "rewire" => EditKind::Rewire {
                    instance: str_field(&map, "instance")?,
                    pin: opt_usize_field(&map, "pin")?
                        .ok_or_else(|| "missing field \"pin\"".to_string())?,
                    net: str_field(&map, "net")?,
                },
                other => {
                    return Err(format!(
                        "unknown edit kind {other:?} (expected swap | resize | rewire)"
                    ))
                }
            };
            Request::Edit { circuit, kind }
        }
        "analyze_batch" => {
            v2_only("op \"analyze_batch\"")?;
            Request::AnalyzeBatch {
                circuit: str_field(&map, "circuit")?,
                corners: opt_str_field(&map, "corners")?,
                modes: opt_str_field(&map, "modes")?,
                n_worst: opt_usize_field(&map, "nworst")?,
                batch_threads: opt_usize_field(&map, "batch_threads")?.unwrap_or(1).max(1),
            }
        }
        "paths" => Request::Paths {
            circuit: str_field(&map, "circuit")?,
            limit: opt_usize_field(&map, "limit")?.unwrap_or(10),
            scenario: scenario_field(&map)?,
        },
        "slack" => Request::Slack {
            circuit: str_field(&map, "circuit")?,
        },
        "verify" => Request::Verify {
            circuit: str_field(&map, "circuit")?,
            scenario: scenario_field(&map)?,
        },
        "audit" => Request::Audit {
            circuit: opt_str_field(&map, "circuit")?,
        },
        "status" => Request::Status,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok((req, id))
}

/// The daemon's protocol self-description for the SRV audit rules: enum
/// sets and field universe mirroring [`parse_request`], plus annotated
/// exemplar lines whose `parser_accepts` verdicts are computed against
/// the *real* parser — so the lint check compares the live parser, not a
/// transcription of it, against the checked-in schema.
pub fn protocol_spec() -> sta_lint::ProtocolSpec {
    let ops = [
        "load",
        "edit",
        "analyze_batch",
        "paths",
        "slack",
        "verify",
        "audit",
        "status",
        "shutdown",
    ];
    let kinds = ["swap", "resize", "rewire"];
    let techs = ["130nm", "90nm", "65nm"];
    let fields = [
        "op",
        "id",
        "schema_version",
        "circuit",
        "tech",
        "nworst",
        "threads",
        "kind",
        "instance",
        "cell",
        "pin",
        "net",
        "limit",
        "corners",
        "modes",
        "scenario",
        "batch_threads",
    ];
    // (description, line, schema_should_accept)
    let exemplars: [(&str, &str, bool); 19] = [
        (
            "load-full",
            r#"{"op":"load","circuit":"c17","tech":"90nm","nworst":10,"threads":2}"#,
            true,
        ),
        (
            "edit-swap",
            r#"{"id":1,"op":"edit","circuit":"c17","kind":"swap","instance":"g1","cell":"NAND2_X2"}"#,
            true,
        ),
        (
            "edit-rewire",
            r#"{"op":"edit","circuit":"c17","kind":"rewire","instance":"g1","pin":0,"net":"a"}"#,
            true,
        ),
        ("paths", r#"{"op":"paths","circuit":"c17","limit":5}"#, true),
        ("slack", r#"{"op":"slack","circuit":"c17"}"#, true),
        ("verify", r#"{"op":"verify","circuit":"c17"}"#, true),
        (
            "analyze-batch",
            r#"{"op":"analyze_batch","circuit":"c17","corners":"typ,slow","modes":"func=600,test=900","nworst":10,"batch_threads":2}"#,
            true,
        ),
        (
            "paths-scenario",
            r#"{"op":"paths","circuit":"c17","scenario":"typ/func","limit":5,"schema_version":2}"#,
            true,
        ),
        (
            "verify-scenario",
            r#"{"op":"verify","circuit":"c17","scenario":"typ/func"}"#,
            true,
        ),
        (
            "future-version",
            r#"{"op":"status","schema_version":3}"#,
            false,
        ),
        ("audit-one", r#"{"op":"audit","circuit":"c17"}"#, true),
        ("audit-all", r#"{"op":"audit"}"#, true),
        ("status", r#"{"op":"status"}"#, true),
        ("shutdown", r#"{"op":"shutdown"}"#, true),
        ("missing-op", r#"{"circuit":"c17"}"#, false),
        ("unknown-op", r#"{"op":"fly"}"#, false),
        (
            "unknown-tech",
            r#"{"op":"load","circuit":"c17","tech":"45nm"}"#,
            false,
        ),
        (
            "unknown-field",
            r#"{"op":"load","circuit":"c17","bogus":1}"#,
            false,
        ),
        (
            "zero-limit",
            r#"{"op":"paths","circuit":"c17","limit":0}"#,
            false,
        ),
    ];
    sta_lint::ProtocolSpec {
        ops: ops.iter().map(|s| s.to_string()).collect(),
        kinds: kinds.iter().map(|s| s.to_string()).collect(),
        techs: techs.iter().map(|s| s.to_string()).collect(),
        fields: fields.iter().map(|s| s.to_string()).collect(),
        exemplars: exemplars
            .iter()
            .map(|&(desc, line, schema_ok)| sta_lint::ProtocolExemplar {
                description: desc.to_string(),
                line: line.to_string(),
                parser_accepts: parse_request(line).is_ok(),
                schema_should_accept: schema_ok,
            })
            .collect(),
    }
}

/// Fault injector: removes one property from a parsed schema document so
/// the SRV002 field-universe comparison fires. Returns `false` when the
/// schema has no such property.
pub fn drift_schema_field(schema: &mut Value, field: &str) -> bool {
    let Value::Map(entries) = schema else {
        return false;
    };
    let Some(Value::Map(props)) = entries
        .iter_mut()
        .find(|(k, _)| k == "properties")
        .map(|(_, v)| v)
    else {
        return false;
    };
    let before = props.len();
    props.retain(|(k, _)| k != field);
    props.len() != before
}

/// Fault injector: drops the last entry of a property's string enum
/// (e.g. an op or tech name) so the SRV002 enum-set comparison fires —
/// and, for `op`, so exemplars of the dropped op flip to
/// schema-rejected, which SRV001 reports as a parser/schema
/// disagreement. Returns `false` when the property has no enum to
/// shrink.
pub fn drift_schema_enum(schema: &mut Value, prop: &str) -> bool {
    let Value::Map(entries) = schema else {
        return false;
    };
    let Some(Value::Map(props)) = entries
        .iter_mut()
        .find(|(k, _)| k == "properties")
        .map(|(_, v)| v)
    else {
        return false;
    };
    let Some(Value::Map(p)) = props.iter_mut().find(|(k, _)| k == prop).map(|(_, v)| v) else {
        return false;
    };
    let Some(Value::Seq(en)) = p.iter_mut().find(|(k, _)| k == "enum").map(|(_, v)| v) else {
        return false;
    };
    en.pop().is_some()
}

/// Builds a JSON object value from string keys (insertion-ordered).
pub(crate) fn jmap(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Shorthand for a JSON string value.
pub(crate) fn jstr(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op_with_defaults() {
        let (req, id) = parse_request(r#"{"op":"load","circuit":"c17"}"#).unwrap();
        assert_eq!(
            req,
            Request::Load {
                circuit: "c17".to_string(),
                tech: "90nm".to_string(),
                n_worst: None,
                threads: 1,
            }
        );
        assert!(id.is_none());

        let (req, id) = parse_request(
            r#"{"id":7,"op":"edit","circuit":"c17","kind":"rewire","instance":"g1","pin":0,"net":"a"}"#,
        )
        .unwrap();
        assert_eq!(id, Some(Value::Int(7)));
        assert!(matches!(
            req,
            Request::Edit {
                kind: EditKind::Rewire { pin: 0, .. },
                ..
            }
        ));

        let (req, _) = parse_request(r#"{"op":"paths","circuit":"c17","limit":3}"#).unwrap();
        assert_eq!(
            req,
            Request::Paths {
                circuit: "c17".to_string(),
                limit: 3,
                scenario: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"status"}"#).unwrap().0,
            Request::Status
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap().0,
            Request::Shutdown
        );
    }

    #[test]
    fn schema_version_gates_the_v2_surface() {
        // No version pinned = current version: the MCMM surface parses.
        let (req, _) =
            parse_request(r#"{"op":"analyze_batch","circuit":"c17","corners":"typ,slow"}"#)
                .unwrap();
        assert_eq!(
            req,
            Request::AnalyzeBatch {
                circuit: "c17".to_string(),
                corners: Some("typ,slow".to_string()),
                modes: None,
                n_worst: None,
                batch_threads: 1,
            }
        );
        let (req, _) =
            parse_request(r#"{"op":"paths","circuit":"c17","scenario":"typ/func"}"#).unwrap();
        assert!(matches!(req, Request::Paths { scenario: Some(s), .. } if s == "typ/func"));

        // Pinning v1 keeps the v1 surface working…
        assert!(parse_request(r#"{"op":"paths","circuit":"c17","schema_version":1}"#).is_ok());
        assert!(parse_request(r#"{"op":"verify","circuit":"c17","schema_version":1}"#).is_ok());
        // …and rejects v2-only constructs with the version named.
        let err = parse_request(r#"{"op":"analyze_batch","circuit":"c17","schema_version":1}"#)
            .unwrap_err();
        assert!(err.contains("schema_version 2"), "{err}");
        let err = parse_request(
            r#"{"op":"paths","circuit":"c17","scenario":"typ/func","schema_version":1}"#,
        )
        .unwrap_err();
        assert!(err.contains("schema_version 2"), "{err}");

        // Versions this daemon does not speak are rejected outright.
        let err = parse_request(r#"{"op":"status","schema_version":3}"#).unwrap_err();
        assert!(err.contains("unsupported schema_version 3"), "{err}");
        let err = parse_request(r#"{"op":"status","schema_version":0}"#).unwrap_err();
        assert!(err.contains("unsupported schema_version 0"), "{err}");
    }

    #[test]
    fn malformed_requests_are_described() {
        assert!(parse_request("nonsense")
            .unwrap_err()
            .contains("invalid JSON"));
        assert!(parse_request("[1,2]").unwrap_err().contains("object"));
        assert!(parse_request(r#"{"circuit":"c17"}"#)
            .unwrap_err()
            .contains("\"op\""));
        assert!(parse_request(r#"{"op":"fly"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(
            parse_request(r#"{"op":"edit","circuit":"c17","kind":"resize"}"#)
                .unwrap_err()
                .contains("instance")
        );
        assert!(parse_request(r#"{"op":"load","circuit":17}"#)
            .unwrap_err()
            .contains("string"));
    }
}
