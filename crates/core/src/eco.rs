//! Incremental ECO re-analysis: dirty cones and the per-source path cache.
//!
//! After an engineering change order (a gate swap, resize, or net rewire —
//! see `sta_circuits::transforms`), re-enumerating the whole circuit throws
//! away everything the previous run proved about sources whose paths cannot
//! have changed. This module makes the reuse *sound*:
//!
//! 1. **Dirty cone.** For a *delay-only* edit (a resize, or a swap between
//!    cells with the same truth table), vector lists and justification
//!    outcomes are unchanged everywhere — only arc delays through the edited
//!    gate move. A path's timing changes iff it traverses one of the edited
//!    gate's pins, i.e. contains a net in `D0 = ins(G) ∪ {out(G)}`, and a
//!    source can launch such a path iff it lies in the transitive fanin of
//!    `D0`. [`dirty_sources`] computes exactly that set. For a
//!    *function-changing* edit (swap to a different truth table, or a
//!    rewire) the structural rule is unsound — justification and conflict
//!    chains couple sources through side inputs far outside any cone — so
//!    every source is conservatively dirtied and the saving reduces to the
//!    resident compiled state (kernel table, characterization).
//!
//! 2. **Per-source cache.** [`SourceCache`] stores, per primary input, the
//!    canonical `n_worst` paths launched from that input, computed with
//!    [`EnumerationConfig::per_source_n_worst`] threshold isolation so each
//!    list is independent of which other sources ran. An incremental update
//!    re-runs only the dirty sources (via
//!    [`EnumerationConfig::source_filter`]) and [`SourceCache::splice`]
//!    rebuilds the global answer: concatenate, sort by
//!    [`TruePath::canonical_cmp`], truncate to `n_worst`.
//!
//! **Splice identity proof.** If a path `p` from source `s` is among the
//! global N worst, then fewer than N paths precede it in the canonical
//! order, so in particular fewer than N paths *from `s`* do: `p` is in
//! `s`'s per-source top N. Hence the union of per-source top-N lists
//! contains the global top N, and sorting the union canonically and
//! truncating to N reproduces the cold run's result byte for byte. The
//! guarantee requires untruncated searches
//! ([`EnumerationStats::truncated`] false on both sides) — decision and
//! path budgets bite at run-dependent points.

use std::collections::HashMap;

use sta_circuits::GateEdit;
use sta_netlist::{NetId, Netlist};

use crate::enumerate::{EnumerationStats, PathEnumerator};
use crate::path::TruePath;

#[cfg(doc)]
use crate::enumerate::EnumerationConfig;

/// Transitive fanin: every net from which some seed net is structurally
/// reachable (seeds included). Returned as a mask indexed by
/// [`NetId::index`].
pub fn fanin_cone(nl: &Netlist, seeds: &[NetId]) -> Vec<bool> {
    let mut mask = vec![false; nl.num_nets()];
    let mut work: Vec<NetId> = Vec::new();
    for &s in seeds {
        if !mask[s.index()] {
            mask[s.index()] = true;
            work.push(s);
        }
    }
    while let Some(net) = work.pop() {
        if let Some(g) = nl.net(net).driver() {
            for &inp in nl.gate(g).inputs() {
                if !mask[inp.index()] {
                    mask[inp.index()] = true;
                    work.push(inp);
                }
            }
        }
    }
    mask
}

/// Transitive fanout: every net structurally reachable from some seed net
/// (seeds included). Returned as a mask indexed by [`NetId::index`].
pub fn fanout_cone(nl: &Netlist, seeds: &[NetId]) -> Vec<bool> {
    let mut mask = vec![false; nl.num_nets()];
    let mut work: Vec<NetId> = Vec::new();
    for &s in seeds {
        if !mask[s.index()] {
            mask[s.index()] = true;
            work.push(s);
        }
    }
    while let Some(net) = work.pop() {
        for pin in nl.net(net).fanout() {
            let out = nl.gate(pin.gate).output();
            if !mask[out.index()] {
                mask[out.index()] = true;
                work.push(out);
            }
        }
    }
    mask
}

/// The sources whose cached paths an edit may invalidate, as a mask
/// indexed like [`Netlist::inputs`] (the [`EnumerationConfig::source_filter`]
/// convention).
///
/// Delay-only edits (`edit.function_changed == false`) dirty exactly the
/// primary inputs in the transitive fanin of the edited gate's touched
/// nets; function-changing edits dirty every source (see the module
/// documentation for why the structural rule is unsound there).
pub fn dirty_sources(nl: &Netlist, edit: &GateEdit) -> Vec<bool> {
    if edit.function_changed {
        return vec![true; nl.inputs().len()];
    }
    let cone = fanin_cone(nl, &edit.touched);
    nl.inputs().iter().map(|&pi| cone[pi.index()]).collect()
}

/// Per-source top-N path cache backing incremental ECO re-analysis.
///
/// Indexed by primary-input *position* (like [`Netlist::inputs`]); each
/// slot holds that source's canonically ordered worst paths, truncated to
/// the run's `n_worst` (or complete in full-enumeration mode). Built and
/// updated only from enumerations configured with
/// [`EnumerationConfig::per_source_n_worst`], which is what makes the
/// per-source lists independent of each other and the splice sound.
#[derive(Clone, Debug)]
pub struct SourceCache {
    n_worst: Option<usize>,
    per_source: Vec<Vec<TruePath>>,
}

fn pi_positions(nl: &Netlist) -> HashMap<NetId, usize> {
    nl.inputs()
        .iter()
        .enumerate()
        .map(|(i, &pi)| (pi, i))
        .collect()
}

impl SourceCache {
    /// Runs a full per-source enumeration and caches every source's list.
    ///
    /// # Panics
    ///
    /// Panics unless the enumerator's configuration has
    /// [`EnumerationConfig::per_source_n_worst`] set and no
    /// [`EnumerationConfig::source_filter`] (a build must cover all
    /// sources).
    pub fn build(enumr: &PathEnumerator) -> (SourceCache, EnumerationStats) {
        assert!(
            enumr.cfg.per_source_n_worst,
            "SourceCache requires per-source threshold isolation"
        );
        assert!(
            enumr.cfg.source_filter.is_none(),
            "SourceCache::build must enumerate every source"
        );
        let mut cache = SourceCache {
            n_worst: enumr.cfg.n_worst,
            per_source: vec![Vec::new(); enumr.nl.inputs().len()],
        };
        let pos = pi_positions(enumr.nl);
        let stats = enumr.run_with(|p| cache.per_source[pos[&p.source]].push(p));
        for i in 0..cache.per_source.len() {
            cache.normalize(i);
        }
        (cache, stats)
    }

    /// Re-enumerates the sources selected by the enumerator's
    /// [`EnumerationConfig::source_filter`] (the dirty mask from
    /// [`dirty_sources`]) over the *edited* netlist and replaces their
    /// cached lists; clean sources keep their previous lists.
    ///
    /// # Panics
    ///
    /// Panics unless the configuration has both
    /// [`EnumerationConfig::per_source_n_worst`] and a source filter, or
    /// when the enumerator's input count or `n_worst` disagrees with the
    /// cache (an ECO edit never adds or removes primary inputs).
    pub fn update(&mut self, enumr: &PathEnumerator) -> EnumerationStats {
        assert!(
            enumr.cfg.per_source_n_worst,
            "SourceCache requires per-source threshold isolation"
        );
        let filter = enumr
            .cfg
            .source_filter
            .clone()
            .expect("SourceCache::update requires a source filter");
        assert_eq!(
            filter.len(),
            self.per_source.len(),
            "edited netlist changed the primary-input count"
        );
        assert_eq!(
            enumr.cfg.n_worst, self.n_worst,
            "incremental update must keep the cache's n_worst"
        );
        for (i, &dirty) in filter.iter().enumerate() {
            if dirty {
                self.per_source[i].clear();
            }
        }
        let pos = pi_positions(enumr.nl);
        let stats = enumr.run_with(|p| self.per_source[pos[&p.source]].push(p));
        for (i, &dirty) in filter.iter().enumerate() {
            if dirty {
                self.normalize(i);
            }
        }
        stats
    }

    fn normalize(&mut self, i: usize) {
        self.per_source[i].sort_by(TruePath::canonical_cmp);
        if let Some(n) = self.n_worst {
            self.per_source[i].truncate(n);
        }
    }

    /// The global answer: all cached lists concatenated, canonically
    /// sorted, and truncated to `n_worst` — byte-identical to a cold
    /// [`PathEnumerator::run`] over the same netlist when neither side
    /// truncated its search (see the module documentation).
    pub fn splice(&self) -> Vec<TruePath> {
        let mut all: Vec<TruePath> = self.per_source.iter().flatten().cloned().collect();
        all.sort_by(TruePath::canonical_cmp);
        if let Some(n) = self.n_worst {
            all.truncate(n);
        }
        all
    }

    /// Number of source slots (the netlist's primary-input count).
    pub fn num_sources(&self) -> usize {
        self.per_source.len()
    }

    /// Total cached paths across all sources.
    pub fn num_cached_paths(&self) -> usize {
        self.per_source.iter().map(Vec::len).sum()
    }

    /// The per-path truncation threshold the cache was built with.
    pub fn n_worst(&self) -> Option<usize> {
        self.n_worst
    }

    /// The cached canonical path list of one source slot (read-only —
    /// the audit layer checks the structural invariants over it).
    pub fn source_paths(&self, i: usize) -> &[TruePath] {
        &self.per_source[i]
    }
}

/// Which [`SourceCache`] structural invariant [`corrupt_source_cache`]
/// violates. Each mode maps to one clause of the ECO002 audit in
/// `sta-lint`, mirroring the fault-injector discipline of the netlist
/// and library lint rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheCorruption {
    /// Move a path into another source's slot (source membership).
    Misfile,
    /// Swap two adjacent paths out of canonical order (sort order).
    Unsort,
    /// Duplicate a path past the `n_worst` truncation limit (overfill).
    Overfill,
}

/// Fault injector: break exactly one structural invariant of a built
/// cache so the ECO002 audit rule can be pinned to it. Returns `false`
/// (cache untouched) when the cache has no slot shaped so the chosen
/// corruption is observable — e.g. `Unsort` needs a slot with two
/// strictly-ordered paths, `Misfile` needs at least two source slots
/// with one non-empty.
pub fn corrupt_source_cache(cache: &mut SourceCache, mode: CacheCorruption) -> bool {
    match mode {
        CacheCorruption::Misfile => {
            if cache.per_source.len() < 2 {
                return false;
            }
            let from = match cache.per_source.iter().position(|s| !s.is_empty()) {
                Some(i) => i,
                None => return false,
            };
            let to = if from == 0 { 1 } else { 0 };
            let path = cache.per_source[from].remove(0);
            cache.per_source[to].insert(0, path);
            true
        }
        CacheCorruption::Unsort => {
            for slot in &mut cache.per_source {
                for i in 0..slot.len().saturating_sub(1) {
                    if TruePath::canonical_cmp(&slot[i], &slot[i + 1]).is_lt() {
                        slot.swap(i, i + 1);
                        return true;
                    }
                }
            }
            false
        }
        CacheCorruption::Overfill => {
            let n = match cache.n_worst {
                Some(n) => n,
                None => return false,
            };
            for slot in &mut cache.per_source {
                if slot.len() == n {
                    let dup = slot[slot.len() - 1].clone();
                    slot.push(dup);
                    return true;
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::EnumerationConfig;
    use sta_cells::{Corner, Library, Technology};
    use sta_charlib::{characterize_cached, CharConfig, TimingLibrary};
    use sta_circuits::{catalog, resize_gate, rewire_net, swap_gate};
    use std::sync::Arc;

    fn setup() -> (Library, TimingLibrary, Corner) {
        let tech = Technology::n90();
        let lib = Library::standard();
        let tlib = characterize_cached(
            &lib,
            &tech,
            &CharConfig::fast(),
            &std::env::temp_dir().join("sta-eco-test-cache"),
        )
        .unwrap();
        let corner = Corner::nominal(&tech);
        (lib, tlib, corner)
    }

    #[test]
    fn cones_are_transitive_and_include_seeds() {
        let lib = Library::standard();
        let nl = catalog::mapped("c17", &lib).unwrap().unwrap();
        let out = nl.outputs()[0];
        let fi = fanin_cone(&nl, &[out]);
        assert!(fi[out.index()]);
        // Every PO of c17 depends on at least one PI.
        assert!(nl.inputs().iter().any(|&pi| fi[pi.index()]));
        let pi = nl.inputs()[0];
        let fo = fanout_cone(&nl, &[pi]);
        assert!(fo[pi.index()]);
        assert!(nl.outputs().iter().any(|&po| fo[po.index()]));
        // Duality: pi ∈ fanin(out) ⇔ out ∈ fanout(pi).
        for &o in nl.outputs() {
            assert_eq!(fanin_cone(&nl, &[o])[pi.index()], fo[o.index()]);
        }
    }

    #[test]
    fn delay_only_edits_dirty_only_the_fanin_cone() {
        let lib = Library::standard();
        let mut nl = catalog::mapped("c432", &lib).unwrap().unwrap();
        let inst = nl.net_label(nl.gate(sta_netlist::GateId::from_index(0)).output());
        let edit = resize_gate(&mut nl, &lib, &inst).unwrap();
        assert!(!edit.function_changed);
        let dirty = dirty_sources(&nl, &edit);
        let n_dirty = dirty.iter().filter(|&&d| d).count();
        assert!(n_dirty >= 1, "an edited gate has at least one PI above it");
        assert!(
            n_dirty < dirty.len(),
            "a single near-input gate of c432 must not dirty every source"
        );
        // Rewires are function-changing: everything is dirty.
        let inst2 = nl.net_label(nl.gate(sta_netlist::GateId::from_index(1)).output());
        let pi_name = nl.net_label(nl.inputs()[0]);
        let edit2 = rewire_net(&mut nl, &inst2, 0, &pi_name).unwrap();
        assert!(dirty_sources(&nl, &edit2).iter().all(|&d| d));
    }

    #[test]
    fn spliced_cache_matches_cold_run_after_resize() {
        let (lib, tlib, corner) = setup();
        let mut nl = catalog::mapped("c17", &lib).unwrap().unwrap();
        let cfg = EnumerationConfig::new(corner).with_n_worst(10);
        let per_src = cfg.clone().with_per_source_n_worst(true);

        let enumr = PathEnumerator::new(&nl, &lib, &tlib, per_src.clone());
        let (mut cache, stats) = SourceCache::build(&enumr);
        assert!(!stats.truncated);
        let kernel = enumr.kernel_arc();
        drop(enumr);

        // Splice before any edit already reproduces the cold run.
        let (cold, _) = PathEnumerator::new(&nl, &lib, &tlib, cfg.clone()).run();
        assert_eq!(cache.splice(), cold);

        // Swap one NAND2 for its drive variant and update incrementally.
        let inst = nl.net_label(nl.gate(sta_netlist::GateId::from_index(2)).output());
        let edit = swap_gate(&mut nl, &lib, &inst, "NAND2_X2").unwrap();
        assert!(!edit.function_changed);
        let dirty = dirty_sources(&nl, &edit);
        let filtered = per_src.clone().with_source_filter(Arc::new(dirty));
        let upd = PathEnumerator::with_prebuilt(&nl, &lib, &tlib, filtered, kernel, None);
        let stats = cache.update(&upd);
        assert!(!stats.truncated);

        let (cold_edited, _) = PathEnumerator::new(&nl, &lib, &tlib, cfg).run();
        assert_eq!(cache.splice(), cold_edited);
        assert_ne!(cold, cold_edited, "the resize must actually move delays");
    }
}
